"""E16 -- online detection serving: throughput and latency vs concurrency.

The serving claim: multiplexing N concurrent ``repro-events/1`` streams
into one ``repro serve`` process (sharded worker pool, credit-based
backpressure) sustains aggregate detection throughput that the
single-stream ``repro watch`` cost model only reaches by running N
sequential processes -- and sharding changes *nothing* semantically:
per-tenant verdict event sequences are byte-identical at every worker
count (the events are deliberately timestamp-free, so this is exact
string equality, asserted every run).

Measurements, swept over worker counts x concurrent stream counts:

* **aggregate throughput** -- stream records applied per second across
  all sessions (wall clock from first connection to last final verdict);
* **verdict latency** -- per stream, EOF-to-final-event: how long after
  a stream finishes does its tenant hold the final verdict.  p50/p99
  across streams;
* **baseline** -- the same workload pushed through the bare
  ``IncrementalDetector`` loop sequentially (what ``repro watch`` pays,
  no server, no IPC).

Honesty note on scaling: worker processes can only buy wall-clock
speedup when there are cores to run them.  The >=2x multi-worker
assertion is therefore gated on ``cpus >= 4``; on smaller boxes (CI
containers, the 1-CPU dev box this was grown on) the sweep still runs,
still asserts byte-identical verdicts, and records ``cpu_limited: true``
in ``BENCH_E16_SERVING.json`` so the numbers are never read as a
parallelism claim they cannot support.
"""

import asyncio
import io
import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.detection.incremental import IncrementalDetector
from repro.serve import ReproServer, ServeConfig, dumps_event
from repro.serve.client import open_connection
from repro.serve.server import SERVE_FORMAT
from repro.trace.io import write_event_stream
from repro.workloads import availability_predicate, random_deposet

TINY = bool(os.environ.get("E16_TINY"))
PREDICATE = "at-least-one:up"
#: concurrent streams per server run
STREAMS = [1, 2] if TINY else [1, 8, 32, 64]
#: worker-pool sizes (0 = inline: the no-IPC reference point)
WORKERS = [0, 2] if TINY else [0, 1, 2, 4]
#: per-process events in each generated stream
EVENTS_PER_PROC = 6 if TINY else 30
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E16_SERVING.json"

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-linux
    CPUS = os.cpu_count() or 1


def make_streams(count):
    """``count`` independent random streams: (key, doc_lines, n_records)."""
    out = []
    for i in range(count):
        dep = random_deposet(
            seed=1600 + i, n=3, events_per_proc=EVENTS_PER_PROC,
            message_rate=0.3, flip_rate=0.3,
        )
        buf = io.StringIO()
        write_event_stream(dep, buf)
        doc = buf.getvalue().splitlines()
        out.append((f"t{i % 4}/run-{i}", doc, len(doc) - 1))
    return out


async def timed_stream(sock, tenant, session, doc):
    """Stream one doc; returns (events, eof_to_final_seconds)."""
    reader, writer = await open_connection(f"unix:{sock}")
    hello = {"format": SERVE_FORMAT, "t": "hello", "tenant": tenant,
             "session": session, "predicate": PREDICATE}
    writer.write((dumps_event(hello) + "\n").encode())
    for start in range(0, len(doc), 256):
        writer.write(("\n".join(doc[start:start + 256]) + "\n").encode())
        await writer.drain()
    writer.write_eof()
    t_eof = time.perf_counter()
    events, latency = [], None
    while True:
        raw = await reader.readline()
        if raw == b"":
            break
        ev = json.loads(raw)
        events.append(ev)
        if ev.get("e") == "final":
            latency = time.perf_counter() - t_eof
        if ev.get("e") == "closed":
            break
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return events, latency


def serve_run(streams, workers, tmp):
    """One server run; returns (wall_s, latencies, events_by_key)."""
    sock = os.path.join(tmp, f"e16-{workers}-{len(streams)}.sock")

    async def scenario():
        server = ReproServer(ServeConfig(unix=sock, workers=workers,
                                         batch=32))
        await server.start()
        try:
            t0 = time.perf_counter()
            results = await asyncio.gather(*[
                timed_stream(sock, *key.split("/", 1), doc)
                for key, doc, _records in streams
            ])
            wall = time.perf_counter() - t0
        finally:
            await server.drain()
        return wall, results

    wall, results = asyncio.run(scenario())
    latencies = [lat for _evs, lat in results if lat is not None]
    by_key = {
        key: [dumps_event(e) for e in evs]
        for (key, _doc, _r), (evs, _lat) in zip(streams, results)
    }
    return wall, latencies, by_key


def watch_baseline(streams):
    """The no-server cost model: bare incremental detection, sequential."""
    from repro.serve.session import DetectionSession

    t0 = time.perf_counter()
    finals = {}
    for key, doc, _records in streams:
        tenant, session = key.split("/", 1)
        sess = DetectionSession(tenant, session, json.loads(doc[0]),
                               PREDICATE)
        sess.feed(doc[1:], base_lineno=2)
        finals[key] = [dumps_event(e) for e in sess.finalize()]
    return time.perf_counter() - t0, finals


def percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def test_e16_serving_throughput_and_latency(benchmark, tmp_path):
    def run():
        sweep = Sweep("E16: repro serve -- throughput/latency vs streams x workers")
        reference = {}  # streams-count -> inline event lines per key
        for n_streams in STREAMS:
            streams = make_streams(n_streams)
            total_records = sum(r for _k, _d, r in streams)
            base_s, base_finals = watch_baseline(streams)
            for workers in WORKERS:
                wall, latencies, by_key = serve_run(
                    streams, workers, str(tmp_path)
                )
                # byte-identical verdicts across every worker count, and
                # the servers' finals == the bare watch loop's finals
                public = {
                    k: [ln for ln in v if '"_ack"' not in ln]
                    for k, v in by_key.items()
                }
                finals = {
                    k: [ln for ln in v if '"e":"final"' in ln or
                        '"e":"shed"' in ln]
                    for k, v in public.items()
                }
                assert finals == base_finals, (
                    f"serve finals diverged from watch at "
                    f"workers={workers} streams={n_streams}"
                )
                ref = reference.setdefault(n_streams, public)
                assert public == ref, (
                    f"verdict events changed with workers={workers} "
                    f"at streams={n_streams}"
                )
                sweep.add(
                    streams=n_streams,
                    workers=workers,
                    records=total_records,
                    wall_ms=round(wall * 1e3, 1),
                    events_per_sec=round(total_records / max(wall, 1e-9)),
                    p50_verdict_ms=round(percentile(latencies, 0.50) * 1e3, 2),
                    p99_verdict_ms=round(percentile(latencies, 0.99) * 1e3, 2),
                    watch_baseline_ms=round(base_s * 1e3, 1),
                    identical=True,
                )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    print(f"[e16] cpus={CPUS} cpu_limited={CPUS < 4}")
    benchmark.extra_info["table"] = sweep.rows

    rows = sweep.rows
    # The parallel-scaling claim is only physical with cores to scale on.
    if CPUS >= 4 and not TINY:
        def tput(workers, streams):
            return next(
                r["events_per_sec"] for r in rows
                if r["workers"] == workers and r["streams"] == streams
            )

        wide = max(s for s in STREAMS if s >= 8)
        assert tput(4, wide) >= 2 * tput(1, wide), (
            f"4 workers must give >=2x single-worker throughput on "
            f"{wide} streams with {CPUS} cpus: "
            f"{tput(4, wide)} vs {tput(1, wide)} events/sec"
        )
    _write_json(rows)


def _write_json(rows):
    JSON_PATH.write_text(json.dumps(
        {
            "experiment": "E16",
            "title": "multi-tenant online detection serving",
            "tiny": TINY,
            "cpus": CPUS,
            "cpu_limited": CPUS < 4,
            "scaling_asserted": CPUS >= 4 and not TINY,
            "unit": {
                "events_per_sec": "stream records applied per wall second, "
                                  "aggregated over all sessions",
                "p50_verdict_ms": "median stream-EOF to final-verdict",
                "p99_verdict_ms": "p99 stream-EOF to final-verdict",
                "watch_baseline_ms": "same workload through the bare "
                                     "incremental detector, sequentially",
            },
            "note": "verdict event sequences are asserted byte-identical "
                    "across every worker count before any number is "
                    "recorded; on cpu_limited boxes the multi-worker rows "
                    "measure IPC overhead, not parallelism",
            "rows": rows,
        }, indent=2) + "\n")
