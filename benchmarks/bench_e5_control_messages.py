"""E5 -- Section 5 evaluation: control-message complexity.

Claims reproduced:

* the control relation has at most one arrow per outer-loop iteration, so
  ``|C| <= total false-intervals <= n*p`` -- measured across sweeps;
* two-process mutual exclusion: at most one control message per critical
  section, "in the worst case (which is unlikely)" -- we measure both the
  bound and how far below it typical traces fall;
* each control message is a one-way two-process synchronisation (the
  concurrency argument): arrows touch exactly two processes each.
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.core import control_disjunctive
from repro.errors import NoControllerExistsError
from repro.predicates import false_intervals
from repro.workloads import (
    availability_predicate,
    mutex_predicate,
    mutex_trace,
    random_server_trace,
)


def test_e5_chain_length_bounded_by_intervals(benchmark):
    def run():
        sweep = Sweep("E5: |C| vs the n*p bound (random server traces)")
        for n in (2, 4, 8):
            for outages in (4, 8, 16):
                total_arrows = total_intervals = runs = 0
                for seed in range(10):
                    dep = random_server_trace(n, outages_per_server=outages, seed=seed)
                    pred = availability_predicate(n)
                    intervals = sum(len(iv) for iv in false_intervals(dep, pred))
                    try:
                        res = control_disjunctive(dep, pred, seed=seed)
                    except NoControllerExistsError:
                        continue
                    assert len(res.control) <= max(intervals, 1)
                    for src, dst in res.control:
                        assert src.proc != dst.proc  # 2-process syncs only
                    total_arrows += len(res.control)
                    total_intervals += intervals
                    runs += 1
                if runs:
                    sweep.add(
                        n=n, p=outages, runs=runs,
                        arrows=total_arrows, intervals=total_intervals,
                        np_bound=runs * n * outages,
                        fill=round(total_arrows / (runs * n * outages), 3),
                    )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        assert row["arrows"] <= row["np_bound"]


def test_e5_two_process_mutex_one_message_per_cs(benchmark):
    def run():
        sweep = Sweep("E5: 2-process mutex, control messages per critical section")
        for p in (5, 10, 20, 40):
            worst = 0.0
            total = 0
            for seed in range(10):
                dep = mutex_trace(cs_per_proc=p, n=2, seed=seed)
                res = control_disjunctive(dep, mutex_predicate(2), seed=seed)
                per_cs = len(res.control) / (2 * p)
                worst = max(worst, per_cs)
                total += len(res.control)
            sweep.add(
                cs_per_proc=p, seeds=10,
                mean_msgs_per_cs=round(total / (10 * 2 * p), 3),
                worst_msgs_per_cs=round(worst, 3),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        # the paper's bound: one message per critical section, worst case
        assert row["worst_msgs_per_cs"] <= 1.0
