"""E8 -- Section 6 discussion: anti-token vs k-mutex algorithms at k = n-1.

The paper argues its strategy "is simpler and more efficient than existing
solutions to the k-mutual exclusion problem when specialized to the
k = n-1 case": k-mutex algorithms pay per *entry* (the coordinator 3
messages, permission-based 2(n-1)), while the anti-token pays only per
*scapegoat handoff* (~2 messages per n entries).

Claims reproduced:

* message ordering: antitoken << central << raymond, with the gap to
  raymond growing linearly in n;
* all algorithms safe (never n processes inside) and deadlock-free;
* response times: the baselines pay ~2T on *every* contested entry, the
  anti-token only on the rare handoff.
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.mutex import run_mutex_workload


def _compare(n: int, seed: int = 7):
    rows = []
    for algorithm in ("antitoken", "central", "raymond"):
        report = run_mutex_workload(
            algorithm, n=n, cs_per_proc=25, think_time=4.0, cs_time=1.0,
            mean_delay=1.0, seed=seed,
        )
        assert report.safe and not report.deadlocked
        rows.append(report)
    return rows


def test_e8_message_comparison(benchmark):
    def run():
        sweep = Sweep("E8: messages per CS entry at k = n-1")
        for n in (3, 6, 12, 24):
            for report in _compare(n):
                sweep.add(
                    algorithm=report.algorithm, n=n,
                    msgs_per_entry=round(report.messages_per_entry, 3),
                    mean_resp=round(report.mean_response, 3),
                    max_in_cs=report.max_concurrent_cs,
                )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows

    by_key = {(r["algorithm"], r["n"]): r for r in sweep.rows}
    for n in (3, 6, 12, 24):
        anti = by_key[("antitoken", n)]["msgs_per_entry"]
        central = by_key[("central", n)]["msgs_per_entry"]
        raymond = by_key[("raymond", n)]["msgs_per_entry"]
        # who wins, and by what shape:
        assert anti < central < raymond
        assert raymond >= 2 * (n - 1) * 0.95         # ~2(n-1) per entry
        assert central <= 3.0                         # <= 3 per entry
        assert anti <= 2.0 / n * 4                    # ~2/n per entry
    # the anti-token's advantage grows with n
    gaps = [
        by_key[("raymond", n)]["msgs_per_entry"]
        / max(by_key[("antitoken", n)]["msgs_per_entry"], 1e-9)
        for n in (3, 6, 12, 24)
    ]
    assert gaps == sorted(gaps)


def test_e8_wall_clock_antitoken(benchmark):
    benchmark(
        lambda: run_mutex_workload(
            "antitoken", n=8, cs_per_proc=20, think_time=3.0, cs_time=1.0,
            seed=3,
        )
    )


def test_e8_wall_clock_raymond(benchmark):
    benchmark(
        lambda: run_mutex_workload(
            "raymond", n=8, cs_per_proc=20, think_time=3.0, cs_time=1.0,
            seed=3,
        )
    )
