"""E15 -- incremental CausalIndex vs per-round batch rebuilds.

The layered trace architecture's performance claim: a consumer that needs
fresh causal clocks while a trace *grows* (streaming ingestion, the
recorder, a controller's build-verify loop) should pay per-event work,
not a full Kahn pass per refresh.  Two measurements:

* **Growing trace** -- ingest a trace event by event.  The incremental
  index extends clocks in O(n) per append; the batch baseline rebuilds
  :class:`CausalOrder` from scratch every ``CHUNK`` events (the cheapest
  honest refresh policy available before this PR).  Work is compared via
  deterministic counters (events processed), wall clock as the headline.
* **Controller arrows** -- replay an off-line controller's build-verify
  loop: verify after each control arrow.  The batch baseline pays
  ``base.extended(arrows[:k])`` (full rebuild) per round; the index
  inserts each arrow with a downstream-cone recompute.

Both paths must produce byte-identical clock matrices, and the controller
must derive the *same control relation* from a store-grown snapshot as
from the batch-built deposet.  Results land in
``BENCH_E15_INCREMENTAL.json`` at the repo root; CI runs the tiny sweep
(``E15_TINY=1``) where the deterministic work ratio is asserted instead
of wall time.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.causality.relations import CausalOrder
from repro.core.offline import control_disjunctive
from repro.errors import NoControllerExistsError
from repro.detection.conjunctive import possibly_bad
from repro.obs import METRICS
from repro.store import CausalIndex, TraceStore, iter_delivery_events
from repro.workloads import availability_predicate, random_deposet

TINY = bool(os.environ.get("E15_TINY"))
#: (processes, events per process)
SIZES = [(3, 12), (3, 24)] if TINY else [(4, 50), (4, 100), (4, 150)]
#: batch baseline refreshes its clocks every CHUNK appended events
CHUNK = 4 if TINY else 25
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E15_INCREMENTAL.json"


def workload(n, events):
    dep = random_deposet(
        n=n, events_per_proc=events, message_rate=0.3, flip_rate=0.3,
        seed=n * 1000 + events,
    )
    return dep, availability_predicate(n, "up")


def event_program(dep):
    """``dep`` linearised into (proc, sources) appends."""
    return [
        (proc, [msg.src] if msg is not None else [])
        for proc, _entered, msg, _ctls in iter_delivery_events(dep)
    ]


def run_incremental(dep, program):
    """Maintain a live index across the whole growth; O(n) per event."""
    idx = CausalIndex([1] * dep.n)
    for proc, sources in program:
        idx.append_event(proc, sources)
    return idx


def run_chunked_rebuild(dep, program):
    """Refresh by full rebuild every CHUNK events; returns the final order
    and the deterministic work (events processed across all rebuilds)."""
    counts = [1] * dep.n
    arrows = []
    work = 0
    order = None
    for step, (proc, sources) in enumerate(program, start=1):
        for src in sources:
            arrows.append((src, (proc, counts[proc])))
        counts[proc] += 1
        if step % CHUNK == 0 or step == len(program):
            order = CausalOrder(counts, arrows)
            work += sum(counts) - dep.n  # events the Kahn pass visits
    return order, work


def test_e15_growing_trace_incremental_vs_rebuild(benchmark):
    def run():
        sweep = Sweep("E15: growing trace -- incremental index vs chunked rebuild")
        for n, events in SIZES:
            dep, _pred = workload(n, events)
            program = event_program(dep)
            with METRICS.scoped() as scope:
                t0 = time.perf_counter()
                idx = run_incremental(dep, program)
                inc_ms = (time.perf_counter() - t0) * 1e3
            inc_work = scope.counter("index.appends") + scope.counter(
                "index.cone_events"
            )
            t0 = time.perf_counter()
            rebuilt, rebuild_work = run_chunked_rebuild(dep, program)
            rebuild_ms = (time.perf_counter() - t0) * 1e3
            # identical clocks: the incremental index IS the batch order
            for i in range(dep.n):
                assert np.array_equal(
                    idx.clock_matrix(i), rebuilt.clock_matrix(i)
                ), f"clock mismatch on process {i} (n={n}, events={events})"
            sweep.add(
                n=n,
                events=len(program),
                chunk=CHUNK,
                incremental_work=inc_work,
                rebuild_work=rebuild_work,
                work_ratio=round(rebuild_work / max(1, inc_work), 1),
                incremental_ms=round(inc_ms, 2),
                rebuild_ms=round(rebuild_ms, 2),
                speedup=round(rebuild_ms / max(1e-9, inc_ms), 1),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows

    # Deterministic claim (holds at any size): the rebuild policy touches
    # many times more events than the incremental index.
    assert sweep.column("work_ratio")[-1] >= (2 if TINY else 5), sweep.rows[-1]
    if not TINY:
        assert sweep.column("speedup")[-1] >= 5, (
            f"incremental index must beat chunked full rebuilds >=5x on the "
            f"largest trace; got {sweep.column('speedup')[-1]}x"
        )
    _write_json("growing", sweep.rows)


def test_e15_controller_arrows_incremental_vs_extended(benchmark):
    def run():
        sweep = Sweep("E15: build-verify loop -- cone inserts vs full extended()")
        for n, events in SIZES:
            dep, pred = workload(n, events)
            try:
                arrows = list(control_disjunctive(dep, pred).control)
            except NoControllerExistsError:
                arrows = []
            if not arrows:
                continue
            base = dep.base_order

            t0 = time.perf_counter()
            batch = None
            for k in range(1, len(arrows) + 1):
                batch = base.extended(arrows[:k])  # full Kahn per round
            batch_ms = (time.perf_counter() - t0) * 1e3

            t0 = time.perf_counter()
            idx = CausalIndex.from_order(base)
            for arrow in arrows:
                idx.insert_arrows([arrow])  # downstream cone only
            inc_ms = (time.perf_counter() - t0) * 1e3

            for i in range(dep.n):
                assert np.array_equal(
                    idx.clock_matrix(i), batch.clock_matrix(i)
                ), f"clock mismatch on process {i} (n={n}, events={events})"
            sweep.add(
                n=n,
                events=dep.num_states - dep.n,
                arrows=len(arrows),
                extended_ms=round(batch_ms, 2),
                incremental_ms=round(inc_ms, 2),
                speedup=round(batch_ms / max(1e-9, inc_ms), 1),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    assert sweep.rows, "no workload produced control arrows"
    _write_json("controller", sweep.rows)


def test_e15_controller_output_identical_through_store(benchmark):
    """The whole point of the refactor: growing the trace through the
    store changes *nothing* semantically.  The controller derives the
    identical control relation from a store-grown snapshot, and detection
    verdicts agree before and after control."""

    def run():
        results = []
        for n, events in SIZES:
            dep, pred = workload(n, events)
            dep2 = TraceStore.from_deposet(dep).snapshot()
            try:
                r1 = control_disjunctive(dep, pred, seed=0)
            except NoControllerExistsError:
                continue
            r2 = control_disjunctive(dep2, pred, seed=0)
            assert list(r1.control) == list(r2.control)
            c1 = dep.with_control(list(r1.control))
            c2 = dep2.with_control(list(r2.control))
            assert possibly_bad(c1, pred) == possibly_bad(c2, pred) is None
            results.append(
                {"n": n, "events": dep.num_states - dep.n,
                 "arrows": len(list(r1.control))}
            )
        return results

    results = run_once(benchmark, run)
    print(f"\nE15: controller output identical through the store: {results}")
    benchmark.extra_info["table"] = results


def _write_json(section, rows):
    payload = {}
    if JSON_PATH.exists():
        try:
            payload = json.loads(JSON_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(
        {
            "experiment": "E15",
            "title": "incremental causal index vs batch rebuilds",
            "tiny": TINY,
            "unit": {
                "work": "events visited by clock recomputation",
                "ms": "wall clock",
            },
        }
    )
    payload.setdefault("sections", {})[section] = rows
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
