"""E3 -- Figure 2 / Theorem 2: the off-line algorithm, sound and complete.

Claims reproduced:

* on every workload family the algorithm either emits a verified control
  relation (no consistent violating cut in the controlled deposet, checked
  exactly by weak-conjunctive detection) or proves infeasibility;
* on small traces, feasibility agrees with exhaustive single-step SGSD;
* controlled relations replay without deadlock and the replayed trace
  satisfies the predicate.
"""

from benchmarks.conftest import run_once
from repro import Or, possibly_bad, replay, sgsd_feasible
from repro.bench import Sweep
from repro.core import control_disjunctive, verify_control
from repro.errors import NoControllerExistsError
from repro.workloads import (
    availability_predicate,
    mutex_predicate,
    mutex_trace,
    philosophers_trace,
    random_deposet,
    random_server_trace,
    thinking_predicate,
)


def _families():
    yield "random", lambda seed: (
        random_deposet(n=4, events_per_proc=10, message_rate=0.3, seed=seed),
        availability_predicate(4, var="up"),
    )
    yield "servers", lambda seed: (
        random_server_trace(4, outages_per_server=3, seed=seed),
        availability_predicate(4),
    )
    yield "mutex", lambda seed: (
        mutex_trace(cs_per_proc=6, n=3, seed=seed),
        mutex_predicate(3),
    )
    yield "philosophers", lambda seed: (
        philosophers_trace(4, meals_per_philosopher=3, seed=seed),
        thinking_predicate(4),
    )


def test_e3_soundness_across_workload_families(benchmark):
    def run():
        sweep = Sweep("E3: off-line control across workload families (30 seeds each)")
        for name, make in _families():
            feasible = infeasible = arrows = bug_found = 0
            for seed in range(30):
                dep, pred = make(seed)
                if possibly_bad(dep, pred) is not None:
                    bug_found += 1
                try:
                    res = control_disjunctive(dep, pred, seed=seed)
                except NoControllerExistsError:
                    infeasible += 1
                    continue
                verify_control(dep, pred, res.control)  # exact, raises on bug
                feasible += 1
                arrows += len(res.control)
            sweep.add(
                family=name, seeds=30, bug_possible=bug_found,
                controlled=feasible, infeasible=infeasible,
                arrows_total=arrows,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        assert row["controlled"] + row["infeasible"] == row["seeds"]
    # the mutex/philosopher families are always controllable
    by_family = {row["family"]: row for row in sweep.rows}
    assert by_family["mutex"]["infeasible"] == 0
    assert by_family["philosophers"]["infeasible"] == 0


def test_e3_completeness_vs_exhaustive(benchmark):
    def run():
        agree = feasible = 0
        trials = 60
        for seed in range(trials):
            dep = random_deposet(
                n=3, events_per_proc=4, message_rate=0.4, flip_rate=0.5,
                seed=seed, start_true_prob=0.6,
            )
            pred = availability_predicate(3, var="up")
            try:
                control_disjunctive(dep, pred)
                algo = True
            except NoControllerExistsError:
                algo = False
            truth = sgsd_feasible(
                dep, Or(*pred.locals_by_proc.values()), moves="single"
            )
            agree += algo == truth
            feasible += truth
        return trials, agree, feasible

    trials, agree, feasible = run_once(benchmark, run)
    print(f"\nE3: feasibility agreement with exhaustive SGSD: "
          f"{agree}/{trials} (of which feasible: {feasible})")
    assert agree == trials
    assert 0 < feasible < trials  # both outcomes exercised


def test_e3_controlled_replay_round_trip(benchmark):
    def run():
        replayed = 0
        for seed in range(15):
            dep = random_deposet(n=4, events_per_proc=8, message_rate=0.3, seed=seed)
            pred = availability_predicate(4, var="up")
            try:
                res = control_disjunctive(dep, pred)
            except NoControllerExistsError:
                continue
            out = replay(dep, res.control, jitter=0.4, seed=seed)
            assert out.deposet.without_control() == dep
            assert possibly_bad(out.deposet, pred) is None
            replayed += 1
        return replayed

    replayed = run_once(benchmark, run)
    print(f"\nE3: {replayed} controlled replays, all verified")
    assert replayed > 5
