"""Extension experiments: the Conclusions' application directions, measured.

Not figures of the paper itself, but the applications its Conclusions
sketch -- included so the extension subsystems get the same measured
treatment as the core claims:

* **recovery** -- domino-effect severity vs checkpoint period on
  message-heavy traces, and the cost of recovery + controlled re-execution;
* **deadlock avoidance** -- CNF control of AB/BA lock hazards across
  process counts;
* **live detection** -- the on-line violation monitor agrees with
  post-mortem detection across seeds, under control and without it.
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.core.online import OnlineDisjunctiveControl
from repro.core.separated import control_cnf
from repro.detection import possibly_bad
from repro.detection.online import ViolationMonitor
from repro.recovery import periodic_checkpoints, recovery_line
from repro.sim import System
from repro.workloads import (
    availability_predicate,
    deadlock_hazard_clauses,
    opposed_transactions_trace,
    random_deposet,
)


def test_ext_domino_vs_checkpoint_period(benchmark):
    def run():
        sweep = Sweep("EXT: domino-effect severity vs checkpoint period")
        for every in (1, 2, 4, 8):
            lost = domino = 0
            for seed in range(10):
                dep = random_deposet(
                    n=4, events_per_proc=12, message_rate=0.5, seed=seed
                )
                plan = periodic_checkpoints(dep, every=every)
                analysis = recovery_line(dep, plan)
                lost += analysis.lost_states
                domino += sum(analysis.domino_steps)
            sweep.add(
                period=every, runs=10,
                rollback_cascades=domino,
                states_lost=lost,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    lost = sweep.column("states_lost")
    assert lost[0] <= lost[-1]  # denser checkpoints lose less work


def test_ext_deadlock_avoidance_scales(benchmark):
    def run():
        sweep = Sweep("EXT: CNF control of AB/BA lock hazards")
        for n in (2, 3, 4):
            dep = opposed_transactions_trace(rounds=2, n=n, seed=n)
            clauses = deadlock_hazard_clauses(range(n), "a", "b", n=n)
            relation = control_cnf(dep, clauses, seed=0, max_attempts=20)
            controlled = relation.apply(dep)
            ok = all(
                possibly_bad(controlled, clause) is None for clause in clauses
            )
            sweep.add(
                n=n, clauses=len(clauses), arrows=len(relation), verified=ok
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    assert all(row["verified"] for row in sweep.rows)


def test_ext_live_detection_agrees(benchmark):
    def updown(ctx):
        for _ in range(5):
            yield ctx.compute(float(ctx.rng.uniform(1.0, 3.0)))
            yield ctx.set(up=False)
            yield ctx.compute(float(ctx.rng.uniform(0.5, 1.5)))
            yield ctx.set(up=True)

    def run():
        agree = found = silent_under_control = 0
        trials = 12
        for seed in range(trials):
            conditions = [lambda v: bool(v.get("up", False))] * 3
            monitor = ViolationMonitor(conditions)
            result = System(
                [updown] * 3, start_vars=[{"up": True}] * 3,
                observers=[monitor], seed=seed, jitter=0.4,
            ).run()
            offline = possibly_bad(result.deposet, availability_predicate(3, var="up"))
            agree += monitor.first == offline
            found += offline is not None

            guarded_monitor = ViolationMonitor(conditions)
            System(
                [updown] * 3, start_vars=[{"up": True}] * 3,
                observers=[guarded_monitor],
                guard=OnlineDisjunctiveControl(conditions),
                seed=seed, jitter=0.4,
            ).run()
            silent_under_control += not guarded_monitor.violations
        return trials, agree, found, silent_under_control

    trials, agree, found, silent = run_once(benchmark, run)
    print(f"\nEXT: live-vs-postmortem agreement {agree}/{trials} "
          f"(violations found in {found}); silent under control: "
          f"{silent}/{trials}")
    assert agree == trials
    assert silent == trials
    assert found > 0
