"""E4 -- Section 5 evaluation: O(n^2 p) optimized vs O(n^3 p) naive.

The work measure is ``pair_checks`` -- the number of ``crossable``
evaluations -- which is exactly what the paper's complexity argument
counts: the naive variant recomputes ValidPairs (O(n^2)) on each of the
O(np) iterations; the optimized variant re-examines only pairs whose
next-interval changed (O(n) per consumed interval).

Claims reproduced:

* with p fixed, optimized work grows ~ n^2 while naive grows ~ n^3
  (scaling exponents fitted on log-log sweeps);
* with n fixed, both grow ~ p (linear);
* both variants emit equivalent results (same iterations; both verify).
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep, geometric_fit
from repro.core import control_disjunctive
from repro.workloads import mutex_predicate, mutex_trace


def _work(n: int, p: int, variant: str, seed: int = 0):
    dep = mutex_trace(cs_per_proc=p, n=n, seed=seed)
    pred = mutex_predicate(n)
    # Random pair selection spreads the crossings over all processes, so the
    # outer loop runs the paper's worst-case Theta(np) iterations (the
    # deterministic first-pair selector would exhaust a single process after
    # only p iterations and finish early -- a legitimate but uninteresting
    # best case).  Both variants draw the same selection sequence.
    return control_disjunctive(dep, pred, variant=variant, seed=seed + 1)


def test_e4_scaling_in_n(benchmark):
    ns = (4, 8, 16, 32)
    p = 12

    def run():
        sweep = Sweep(f"E4: pair-check work vs n (p={p} critical sections/process)")
        for n in ns:
            opt = _work(n, p, "optimized")
            naive = _work(n, p, "naive")
            assert opt.iterations == naive.iterations
            sweep.add(
                n=n, p=p,
                optimized_checks=opt.pair_checks,
                naive_checks=naive.pair_checks,
                ratio=round(naive.pair_checks / opt.pair_checks, 2),
                iterations=opt.iterations,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    exp_opt = geometric_fit(list(ns), sweep.column("optimized_checks"))
    exp_naive = geometric_fit(list(ns), sweep.column("naive_checks"))
    print(f"fitted exponents: optimized n^{exp_opt:.2f} (claim: 2), "
          f"naive n^{exp_naive:.2f} (claim: 3)")
    assert 1.5 <= exp_opt <= 2.5
    assert 2.5 <= exp_naive <= 3.5
    assert exp_naive - exp_opt > 0.5  # the ablation's whole point


def test_e4_scaling_in_p(benchmark):
    n = 6
    ps = (8, 16, 32, 64)

    def run():
        sweep = Sweep(f"E4: pair-check work vs p (n={n} processes)")
        for p in ps:
            opt = _work(n, p, "optimized")
            naive = _work(n, p, "naive")
            sweep.add(
                n=n, p=p,
                optimized_checks=opt.pair_checks,
                naive_checks=naive.pair_checks,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for col in ("optimized_checks", "naive_checks"):
        exp = geometric_fit(list(ps), sweep.column(col))
        print(f"fitted exponent for {col}: p^{exp:.2f} (claim: 1)")
        assert 0.7 <= exp <= 1.3


def test_e4_wall_clock_optimized(benchmark):
    """Wall-clock of the optimized algorithm on the biggest sweep point."""
    dep = mutex_trace(cs_per_proc=32, n=16, seed=1)
    pred = mutex_predicate(16)
    result = benchmark(lambda: control_disjunctive(dep, pred, variant="optimized"))
    assert len(result.control) > 0
