"""E12 -- the Section 3 substrate: detection and lattice machinery at scale.

Supporting measurements for the model everything else stands on:

* weak-conjunctive *possibly* detection is near-linear in trace size
  (candidate elimination advances each pointer at most once);
* the detector agrees with exhaustive lattice enumeration on small traces
  (the enumeration being exponential is the reason the detector exists);
* consistent-cut counts collapse as message density rises (the lattice
  thins -- the structural fact predicate control exploits).
"""

import time

from benchmarks.conftest import run_once
from repro.bench import Sweep, geometric_fit
from repro.detection import possibly_bad, possibly_exhaustive
from repro.trace import CutLattice
from repro.workloads import availability_predicate, random_deposet


def test_e12_wcp_detection_scales(benchmark):
    def run():
        sweep = Sweep("E12: weak-conjunctive detection runtime vs trace size")
        for events in (100, 400, 1600, 6400):
            dep = random_deposet(
                n=6, events_per_proc=events // 6, message_rate=0.25,
                flip_rate=0.3, seed=events,
            )
            pred = availability_predicate(6, var="up")
            t0 = time.perf_counter()
            witness = possibly_bad(dep, pred)
            dt = time.perf_counter() - t0
            sweep.add(
                states=dep.num_states, witness=witness is not None,
                detect_ms=round(dt * 1e3, 3),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    exponent = geometric_fit(sweep.column("states"), sweep.column("detect_ms"))
    print(f"fitted exponent: states^{exponent:.2f} (claim: ~1, certainly << 2)")
    assert exponent < 1.8


def test_e12_wcp_agrees_with_exhaustive(benchmark):
    def run():
        agree = 0
        trials = 40
        for seed in range(trials):
            dep = random_deposet(
                n=3, events_per_proc=5, message_rate=0.4, flip_rate=0.4, seed=seed
            )
            pred = availability_predicate(3, var="up")
            fast = possibly_bad(dep, pred)
            slow = possibly_exhaustive(dep, pred.negated())
            agree += (fast is None) == (slow is None)
        return trials, agree

    trials, agree = run_once(benchmark, run)
    print(f"\nE12: detector vs exhaustive agreement: {agree}/{trials}")
    assert agree == trials


def test_e12_messages_thin_the_lattice(benchmark):
    def run():
        sweep = Sweep("E12: consistent cuts vs message density (n=3, 6 events each)")
        for rate in (0.0, 0.2, 0.4, 0.6):
            counts = []
            for seed in range(8):
                dep = random_deposet(
                    n=3, events_per_proc=6, message_rate=rate, seed=seed
                )
                counts.append(CutLattice(dep).count_consistent_cuts())
            grid = 1
            for m in dep.state_counts:
                grid *= m
            sweep.add(
                message_rate=rate,
                mean_cuts=round(sum(counts) / len(counts), 1),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    cuts = sweep.column("mean_cuts")
    assert cuts[0] > cuts[-1]  # more messages -> fewer consistent cuts
