"""E10 -- Conclusions: control beyond one disjunction.

The paper's follow-up direction: predicates whose false-intervals are
mutually separated generalise disjunctive predicates (deadlock avoidance,
richer mutual exclusions).  We implement conjunctions of disjunctive
clauses by layering the Figure-2 algorithm clause by clause.

Claims reproduced:

* on mutually-separated workloads (two-lock mutual exclusion with idle
  gaps) the layered controller succeeds and verifies on the first order;
* runtime stays polynomial (roughly one Figure-2 run per clause).
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.core.separated import clauses_mutually_separated, control_cnf
from repro.detection import possibly_bad
from repro.errors import NoControllerExistsError
from repro.predicates import DisjunctivePredicate, LocalPredicate
from repro.trace import ComputationBuilder


def two_lock_trace(n, rounds, seed=0):
    """``n`` processes contending on two locks with idle gaps."""
    import numpy as np

    rng = np.random.default_rng(seed)
    b = ComputationBuilder(n, start_vars=[{"a": False, "b": False}] * n)
    for _ in range(rounds):
        for i in range(n):
            for _ in range(int(rng.integers(1, 3))):
                b.local(i)
            b.local(i, a=True)
            b.local(i, a=False)
            for _ in range(int(rng.integers(1, 3))):
                b.local(i)
            b.local(i, b=True)
            b.local(i, b=False)
    return b.build()


def lock_clause(lock, n):
    return DisjunctivePredicate(
        [LocalPredicate.var_false(i, lock) for i in range(n)], n=n
    )


def test_e10_two_lock_control(benchmark):
    def run():
        sweep = Sweep("E10: layered control of two simultaneous lock invariants")
        for n in (2, 3, 4):
            for rounds in (2, 4):
                dep = two_lock_trace(n, rounds, seed=n * 10 + rounds)
                clauses = [lock_clause("a", n), lock_clause("b", n)]
                separated = clauses_mutually_separated(dep, clauses)
                try:
                    relation = control_cnf(dep, clauses, seed=1)
                except NoControllerExistsError:
                    sweep.add(n=n, rounds=rounds, separated=separated,
                              controlled=False, arrows=None)
                    continue
                controlled = relation.apply(dep)
                for clause in clauses:
                    assert possibly_bad(controlled, clause) is None
                sweep.add(
                    n=n, rounds=rounds, separated=separated,
                    controlled=True, arrows=len(relation),
                )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    assert all(row["separated"] for row in sweep.rows)
    assert all(row["controlled"] for row in sweep.rows)


def test_e10_wall_clock(benchmark):
    dep = two_lock_trace(4, 6, seed=9)
    clauses = [lock_clause("a", 4), lock_clause("b", 4)]
    relation = benchmark(lambda: control_cnf(dep, clauses, seed=1))
    assert len(relation) > 0
