"""E18 -- multi-core parallel slicing: correctness-gated speedup measurement.

PR 8 replaced the silently-wrong process-pool path of ``engine=parallel``
(closure mutation that never reached the parent) with a chunk protocol
whose workers *return* ``(proc, start, stop, bits)``, plus a picklable
expression IR so compiled conjuncts evaluate as vectorised numpy kernels
-- serially and across real processes over shared-memory columns.

This experiment pins the two claims that matter:

* **correctness first** -- at every worker count and for both predicate
  shapes (compiled IR and opaque closures) the truth tables are asserted
  bitwise identical to the serial ``regular_form(pred).truth_tables``
  before any number is recorded, and end-to-end possibly/definitely
  verdicts match the serial slicing engine;
* **the work is real** -- the vectorised serial kernel beats the
  per-state python loop (the E14-era baseline), and on hardware with
  >= 2 cores the fork backend beats the python loop by > 1.5x on the
  largest trace.  On cpu-limited boxes that assertion is gated off and
  the JSON records ``cpu_limited: true`` -- the multi-worker rows there
  measure dispatch overhead, not parallelism, and say so.

Results land in ``BENCH_E18_PARALLEL.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.predicates import And, LocalPredicate, Not
from repro.slicing import (
    definitely_parallel,
    definitely_slice,
    possibly_parallel,
    possibly_slice,
)
from repro.slicing.parallel import parallel_truth_tables
from repro.slicing.regular import regular_form
from repro.workloads import availability_predicate, random_deposet

TINY = bool(os.environ.get("E18_TINY"))
CPUS = os.cpu_count() or 1
#: (processes, events per process); the large case is where chunking pays
SIZES = [(3, 40)] if TINY else [(4, 400), (6, 1200)]
WORKERS = [1, 2] if TINY else sorted({1, 2, min(4, max(2, CPUS))})
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E18_PARALLEL.json"


def workload(n, events):
    dep = random_deposet(
        n=n, events_per_proc=events, message_rate=0.15, flip_rate=0.2,
        start_true_prob=0.95, seed=n * 1000 + events,
    )
    compiled = availability_predicate(n, "up").negated()
    opaque = And(
        *(
            Not(LocalPredicate.from_vars(i, lambda v: bool(v.get("up", False))))
            for i in range(n)
        )
    )
    assert regular_form(compiled).compiled() is not None
    assert regular_form(opaque).compiled() is None
    return dep, compiled, opaque


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1e3


def _identical(expected, got):
    return len(expected) == len(got) and all(
        np.array_equal(a, b) for a, b in zip(expected, got)
    )


def test_e18_parallel_tables_speedup(benchmark):
    def run():
        sweep = Sweep("E18: parallel truth tables (verdicts gated first)")
        for n, events in SIZES:
            dep, compiled, opaque = workload(n, events)

            # Baselines.  The opaque form evaluates through per-state
            # closures -- the E14-era python loop; the compiled form runs
            # the vectorised IR kernel.  Both must agree bitwise.
            loop_tables, loop_ms = _timed(
                lambda: regular_form(opaque).truth_tables(dep)
            )
            ref, vector_ms = _timed(
                lambda: regular_form(compiled).truth_tables(dep)
            )
            assert _identical(loop_tables, ref), (
                f"vectorised kernel diverges from the python loop at n={n}"
            )

            for w in WORKERS:
                par_c, par_c_ms = _timed(
                    lambda: parallel_truth_tables(
                        dep, compiled, max_workers=w, chunk_states=512
                    )
                )
                par_o, par_o_ms = _timed(
                    lambda: parallel_truth_tables(
                        dep, opaque, max_workers=w, chunk_states=512
                    )
                )
                # Correctness gate: bitwise identity at *every* worker
                # count before a single number is recorded.
                assert _identical(ref, par_c), (
                    f"compiled parallel tables diverge at n={n} workers={w}"
                )
                assert _identical(ref, par_o), (
                    f"opaque parallel tables diverge at n={n} workers={w}"
                )
                sweep.add(
                    n=n,
                    states=dep.num_states,
                    workers=w,
                    loop_ms=round(loop_ms, 2),
                    vector_ms=round(vector_ms, 2),
                    par_compiled_ms=round(par_c_ms, 2),
                    par_opaque_ms=round(par_o_ms, 2),
                    vector_speedup=round(loop_ms / max(vector_ms, 1e-6), 1),
                    fork_speedup=round(loop_ms / max(par_o_ms, 1e-6), 1),
                    identical=True,
                )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    print(f"[e18] cpus={CPUS} cpu_limited={CPUS < 2}")
    benchmark.extra_info["table"] = sweep.rows

    rows = sweep.rows
    if not TINY:
        # Vectorisation is a single-core claim: no gating needed.
        last = [r for r in rows if r["n"] == SIZES[-1][0]][0]
        assert last["vector_ms"] < last["loop_ms"], (
            f"vectorised kernel must beat the python loop on the largest "
            f"trace: {last['vector_ms']} vs {last['loop_ms']} ms"
        )
    # The multi-core claim is only physical with cores to scale on.
    if CPUS >= 2 and not TINY:
        best = max(
            r["fork_speedup"] for r in rows
            if r["n"] == SIZES[-1][0] and r["workers"] >= 2
        )
        assert best > 1.5, (
            f"fork backend must beat the python loop by >1.5x on the "
            f"largest trace with {CPUS} cpus; got {best}x"
        )
    _write_json(rows)


def test_e18_verdicts_identical_across_engines(benchmark):
    # End-to-end gate: the parallel engine's possibly/definitely verdicts
    # match the serial slicing engine at every worker count.
    def run():
        n, events = SIZES[0]
        dep, compiled, opaque = workload(n, min(events, 60))
        for pred in (compiled, opaque):
            base = (possibly_slice(dep, pred), definitely_slice(dep, pred))
            for w in WORKERS:
                got = (
                    possibly_parallel(
                        dep, pred, max_workers=w, chunk_states=64
                    ),
                    definitely_parallel(
                        dep, pred, max_workers=w, chunk_states=64
                    ),
                )
                assert got == base, (
                    f"verdicts diverge at workers={w}: {got} vs {base}"
                )
        return base

    run_once(benchmark, run)


def _write_json(rows):
    JSON_PATH.write_text(json.dumps(
        {
            "experiment": "E18",
            "title": "multi-core parallel slicing kernels",
            "tiny": TINY,
            "cpus": CPUS,
            "cpu_limited": CPUS < 2,
            "scaling_asserted": CPUS >= 2 and not TINY,
            "unit": {
                "loop_ms": "serial per-state python-loop tables (E14 baseline)",
                "vector_ms": "serial vectorised IR kernel tables",
                "par_compiled_ms": "parallel driver, compiled IR, auto backend",
                "par_opaque_ms": "parallel driver, opaque closures, auto backend",
            },
            "note": "truth tables are asserted bitwise identical to the "
                    "serial engine at every worker count, and end-to-end "
                    "verdicts match the serial slicing engine, before any "
                    "number is recorded; on cpu_limited boxes the "
                    "multi-worker rows measure dispatch overhead, not "
                    "parallelism",
            "rows": rows,
        }, indent=2) + "\n")
