"""E7/E11 -- Theorem 4 and the Section 6 evaluation of on-line control.

Claims reproduced (E7, unicast scapegoat):

* safety: never all ``n`` processes in the CS, at every simulated instant,
  and no deadlocks, across sweeps of n, delay T, and CS length E_max;
* message overhead: 2 control messages per ``n`` critical-section entries;
* response time: handoffs complete within ``[2T, 2T + E_max]`` when the
  asked peer answers directly (the pending-chain tail beyond the bound is
  measured and reported);
* recorded traces verify: no *consistent* all-in-CS global state either.

E11 (the broadcast option): lower response time at higher message cost,
with anti-tokens multiplying -- the trade-off the paper sketches.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.mutex import run_mutex_workload


def test_e7_message_overhead_two_per_n_entries(benchmark):
    def run():
        sweep = Sweep("E7: anti-token message overhead (paper: 2 messages / n entries)")
        for n in (2, 4, 8, 16):
            report = run_mutex_workload(
                "antitoken", n=n, cs_per_proc=30, think_time=4.0, cs_time=1.0,
                mean_delay=1.0, seed=21,
            )
            assert report.safe and not report.deadlocked
            msgs_per_n_entries = report.control_messages / (report.entries / n)
            sweep.add(
                n=n, entries=report.entries,
                control_msgs=report.control_messages,
                msgs_per_n_entries=round(msgs_per_n_entries, 2),
                paper_claim=2,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        assert row["msgs_per_n_entries"] <= 4.0  # same order as the claim


def test_e7_response_time_bounds(benchmark):
    def run():
        sweep = Sweep("E7: handoff response times vs the [2T, 2T+E_max] bound")
        for T in (0.5, 1.0, 2.0):
            for e_max in (0.5, 2.0):
                report = run_mutex_workload(
                    "antitoken", n=5, cs_per_proc=40, think_time=4.0,
                    cs_time=e_max, mean_delay=T, seed=17,
                )
                assert report.safe
                paid = [r for r in report.response_times if r > 0]
                lo, hi = 2 * T, 2 * T + e_max
                in_bound = sum(1 for r in paid if lo - 1e-9 <= r <= hi + 1e-9)
                sweep.add(
                    T=T, E_max=e_max, handoffs=len(paid),
                    min_resp=round(min(paid), 3), max_resp=round(max(paid), 3),
                    bound_lo=lo, bound_hi=hi,
                    within=f"{in_bound}/{len(paid)}",
                )
                assert min(paid) >= lo - 1e-9          # never faster than 2T
                assert in_bound / len(paid) >= 0.85    # bulk inside the bound
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows


def test_e7_recorded_traces_verify(benchmark):
    def run():
        checked = 0
        for seed in range(5):
            report = run_mutex_workload(
                "antitoken", n=4, cs_per_proc=10, think_time=3.0, cs_time=1.0,
                seed=seed,
            )
            assert report.safe
            checked += 1
        return checked

    checked = run_once(benchmark, run)
    print(f"\nE7: {checked} runs safe at every instant")
    assert checked == 5


def test_e11_broadcast_ablation(benchmark):
    def run():
        sweep = Sweep("E11: unicast vs broadcast scapegoat (contended workload)")
        for n in (4, 8):
            for algorithm in ("antitoken", "antitoken-broadcast"):
                report = run_mutex_workload(
                    algorithm, n=n, cs_per_proc=25, think_time=1.0,
                    cs_time=2.0, mean_delay=1.0, seed=31,
                )
                assert report.safe and not report.deadlocked
                paid = [r for r in report.response_times if r > 0]
                sweep.add(
                    algorithm=algorithm, n=n,
                    msgs_per_entry=round(report.messages_per_entry, 3),
                    handoffs=len(paid),
                    mean_handoff_resp=round(float(np.mean(paid)), 3) if paid else 0,
                )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    # shape: broadcast pays more messages
    by_key = {(r["algorithm"], r["n"]): r for r in sweep.rows}
    for n in (4, 8):
        uni = by_key[("antitoken", n)]
        bc = by_key[("antitoken-broadcast", n)]
        assert bc["msgs_per_entry"] > uni["msgs_per_entry"]
