"""E9 -- Figure 4 / Section 7: the active-debugging cycle, measured.

Claims reproduced:

* the exact Figure 4 narrative: C1 has precisely the two violating cuts G
  and H; availability control (C2) removes them; "e before f" control on
  C1 (C4) removes them too, identifying bug2 as the root cause;
* the full observe -> control -> replay cycle runs at debugger-interactive
  speed on realistically-sized traces (hundreds of states).
"""

from benchmarks.conftest import run_once
from repro import DebugSession, at_least_one, happens_before
from repro.bench import Sweep
from repro.errors import NoControllerExistsError
from repro.workloads import random_server_trace
from repro.workloads.servers import figure4_c1


def test_e9_figure4_walkthrough(benchmark):
    def run():
        dep, labels = figure4_c1()
        avail = at_least_one(3, "avail")
        c1 = DebugSession(dep, "C1")
        gh = c1.detect(avail, exhaustive=True)
        c2, ctl_avail = c1.control(avail, name="C2")
        e, f = labels["e"], labels["f"]
        c4, ctl_ef = c1.control(happens_before(e, f, n=3), name="C4")
        return gh, c2, ctl_avail, c4, ctl_ef

    gh, c2, ctl_avail, c4, ctl_ef = run_once(benchmark, run)
    avail = at_least_one(3, "avail")
    print(f"\nE9: violating cuts of C1 (the figure's G, H): {gh}")
    print(f"C2 control: {ctl_avail.arrows}; bug1 in C2: {c2.bug_possible(avail)}")
    print(f"C4 control: {ctl_ef.arrows}; bug1 in C4: {c4.bug_possible(avail)}")
    assert gh == [(1, 1, 1), (2, 1, 1)]
    assert not c2.bug_possible(avail)
    assert not c4.bug_possible(avail)  # fixing bug2 fixed bug1


def test_e9_debug_cycle_scales(benchmark):
    def run():
        sweep = Sweep("E9: observe->control->replay wall time on larger traces")
        import time

        for n, outages in ((3, 10), (5, 20), (8, 40)):
            dep = random_server_trace(n, outages_per_server=outages, seed=5)
            avail = at_least_one(n, "avail")
            session = DebugSession(dep)
            t0 = time.perf_counter()
            witness = session.detect(avail)
            detect_s = time.perf_counter() - t0
            controlled = False
            t0 = time.perf_counter()
            try:
                session.control(avail)
                controlled = True
            except NoControllerExistsError:
                pass
            control_s = time.perf_counter() - t0
            sweep.add(
                n=n, states=dep.num_states, bug=witness is not None,
                controlled=controlled,
                detect_ms=round(detect_s * 1e3, 2),
                control_and_replay_ms=round(control_s * 1e3, 2),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        assert row["control_and_replay_ms"] < 5_000  # interactive
