"""E13 -- fault injection and the fault-tolerant control plane.

The paper's Theorem 4 analysis assumes reliable channels and non-crashing
processes.  E13 measures what survives when both assumptions fall:

* the **unhardened** scapegoat controller deadlocks once a handoff req or
  ack is dropped (the scapegoat blocks forever waiting for a message that
  will never come) -- demonstrated at 20% control-message loss plus one
  injected fail-stop crash;
* the **hardened** controller (ack/retransmit channel + suspected-peer
  re-routing + lease-regenerated anti-tokens) completes the same workloads
  with zero safety violations, confirmed by the exact off-line WCP check
  (``possibly_bad``) over the recorded deposet;
* the price is graceful: message overhead and handoff response grow with
  the loss rate, against the paper's fault-free ``[2T, 2T + E_max]``
  response bound as baseline.

Every run is seed-deterministic (same seed => identical fault schedule and
obs event stream), so the tables regenerate exactly.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench import Sweep, fault_columns
from repro.core.verify import possibly_bad
from repro.debug.properties import mutual_exclusion
from repro.faults import FaultPlan
from repro.mutex import run_mutex_workload

N = 5
ENTRIES = 8
THINK = 2.0
CS = 1.0
T = 1.0  # mean delay: the paper's T


def _plan(loss: float, seed: int, crash: bool) -> FaultPlan:
    return FaultPlan.lossy(
        loss, seed=seed, scope="control",
        crashes={1: 20.0} if crash else None,
    )


def _run(loss: float, seed: int, crash: bool, hardened: bool):
    kwargs = dict(reliable=True, lease_timeout=20.0) if hardened else {}
    return run_mutex_workload(
        "antitoken", n=N, cs_per_proc=ENTRIES, think_time=THINK,
        cs_time=CS, mean_delay=T, seed=seed,
        faults=_plan(loss, seed, crash), **kwargs,
    )


def test_e13_hardened_survives_what_unhardened_cannot(benchmark):
    """20% control loss + one crash: unhardened fails, hardened is exact-safe."""
    pred = mutual_exclusion(N, "cs")

    def run():
        sweep = Sweep(
            "E13: 20% control loss + 1 crash, unhardened vs hardened"
        )
        for seed in (2, 3, 4):
            for hardened in (False, True):
                rep = _run(0.2, seed, crash=True, hardened=hardened)
                exact = possibly_bad(rep.deposet, pred)
                row = {
                    "seed": seed,
                    "config": "hardened" if hardened else "unhardened",
                    "outcome": "DEADLOCK" if rep.deadlocked else "completed",
                    "entries": rep.entries,
                    "violations": len(rep.violations),
                    "exact_wcp": "VIOLATED" if exact is not None else "ok",
                    "regens": rep.lease_regens,
                }
                row.update(fault_columns(rep.faults, rep.channel))
                sweep.add(**row)
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        if row["config"] == "unhardened":
            # the paper's controller cannot survive a lossy control plane
            assert row["outcome"] == "DEADLOCK" or row["violations"] > 0
        else:
            assert row["outcome"] == "completed"
            assert row["violations"] == 0
            assert row["exact_wcp"] == "ok"


def test_e13_loss_crash_sweep_graceful_degradation(benchmark):
    """Hardened controller across loss x crash: always safe, paying messages."""
    pred = mutual_exclusion(N, "cs")
    lo, hi = 2 * T, 2 * T + CS  # the paper's fault-free response bound

    def run():
        sweep = Sweep(
            "E13: hardened anti-token under loss x crash "
            f"(fault-free handoff bound [{lo}, {hi}])"
        )
        for loss in (0.0, 0.1, 0.2, 0.3):
            for crash in (False, True):
                rep = _run(loss, seed=2, crash=crash, hardened=True)
                assert not rep.deadlocked
                assert not rep.violations
                assert possibly_bad(rep.deposet, pred) is None
                paid = [r for r in rep.response_times if r > 0]
                in_bound = sum(1 for r in paid if lo - 1e-9 <= r <= hi + 1e-9)
                row = {
                    "loss": loss,
                    "crashes": len(rep.crashed),
                    "entries": rep.entries,
                    "msgs/entry": round(rep.messages_per_entry, 3),
                    "mean_resp": round(float(np.mean(paid)), 3) if paid else 0,
                    "in_bound": f"{in_bound}/{len(paid)}",
                    "regens": rep.lease_regens,
                }
                row.update(fault_columns(rep.faults, rep.channel))
                sweep.add(**row)
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    by_key = {(r["loss"], r["crashes"]): r for r in sweep.rows}
    # fault-free: reliable-mode handoffs still respect the paper's bound
    base = by_key[(0.0, 0)]
    got, total = base["in_bound"].split("/")
    assert int(total) == 0 or int(got) / int(total) >= 0.85
    assert base["retransmits"] == 0
    # lossy runs pay for survival in retransmissions, not in safety
    assert by_key[(0.3, 0)]["retransmits"] > 0


def test_e13_fault_schedule_is_seed_deterministic(benchmark):
    """Same seed => identical fault counts, entries, and handoff history."""

    def run():
        a = _run(0.25, seed=5, crash=True, hardened=True)
        b = _run(0.25, seed=5, crash=True, hardened=True)
        return a, b

    a, b = run_once(benchmark, run)
    assert a.faults == b.faults
    assert a.channel == b.channel
    assert a.entries == b.entries
    assert a.crashed == b.crashed
    assert a.response_times == b.response_times
    print(f"\nE13: deterministic fault schedule {a.faults} "
          f"channel {a.channel}")
