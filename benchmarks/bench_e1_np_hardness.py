"""E1/E2 -- Lemma 1, Theorem 1, Figure 1: SAT <-> SGSD.

Claims reproduced:

* the reduction is correct: SGSD on the reduced deposet agrees with DPLL
  on random 3-SAT at the phase transition (and witness sequences decode to
  satisfying assignments);
* general predicate control is exponential: SGSD search time grows
  super-polynomially with the number of variables, while the disjunctive
  algorithm on comparable instance sizes stays flat (Theorem 2's contrast);
* sequence -> strategy: every witness sequence converts to a control
  relation whose controlled deposet satisfies B in every consistent cut.
"""

import time

from benchmarks.conftest import run_once
from repro import (
    control_general,
    decode_assignment,
    dpll_solve,
    random_ksat,
    sat_to_sgsd,
    sgsd,
)
from repro.bench import Sweep
from repro.core import control_disjunctive
from repro.errors import NoControllerExistsError
from repro.trace import CutLattice
from repro.workloads import availability_predicate, random_deposet


def _reduction_agreement(num_vars: int, trials: int) -> dict:
    agree = sat_count = 0
    for seed in range(trials):
        cnf = random_ksat(num_vars, int(4.26 * num_vars), k=3, seed=seed)
        inst = sat_to_sgsd(cnf)
        seq = sgsd(inst.deposet, inst.predicate)
        model = dpll_solve(cnf)
        if (seq is None) == (model is None):
            agree += 1
        if seq is not None:
            sat_count += 1
            assignment = decode_assignment(inst, seq)
            assert cnf.evaluate(assignment)
    return {"vars": num_vars, "trials": trials, "agree": agree, "sat": sat_count}


def test_e1_reduction_correct_at_phase_transition(benchmark):
    rows = run_once(
        benchmark, lambda: [_reduction_agreement(m, 12) for m in (3, 4, 5, 6)]
    )
    table = Sweep("E1: SAT <-> SGSD agreement on random 3-SAT (m/n = 4.26)")
    for row in rows:
        table.add(**row)
        assert row["agree"] == row["trials"]
    print("\n" + table.render())
    benchmark.extra_info["table"] = table.rows


def test_e1_sgsd_exponential_vs_disjunctive_flat(benchmark):
    def measure():
        sweep = Sweep("E1: general SGSD vs disjunctive control runtime (s)")
        for m in (6, 9, 12, 15):
            # UNSAT-leaning instances force full exploration; single-move
            # SGSD (the control-relevant variant) keeps per-node cost flat,
            # so the measured blow-up is purely the 2^m cut space.
            cnf = random_ksat(m, int(5.5 * m), k=3, seed=1)
            inst = sat_to_sgsd(cnf)
            t0 = time.perf_counter()
            sgsd(inst.deposet, inst.predicate, moves="single")
            general_s = time.perf_counter() - t0

            dep = random_deposet(n=m, events_per_proc=10, seed=m)
            pred = availability_predicate(m, var="up")
            t0 = time.perf_counter()
            try:
                control_disjunctive(dep, pred)
            except NoControllerExistsError:
                pass
            disj_s = time.perf_counter() - t0
            sweep.add(size=m, general_s=general_s, disjunctive_s=disj_s)
        return sweep

    sweep = run_once(benchmark, measure)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    general = sweep.column("general_s")
    # shape: the general path blows up (>= 30x from smallest to largest
    # size), the disjunctive path does not
    assert general[-1] / max(general[0], 1e-9) > 30
    disj = sweep.column("disjunctive_s")
    assert disj[-1] / max(disj[0], 1e-9) < 30


def test_e2_sequence_to_strategy(benchmark):
    def run():
        rows = []
        for seed in range(10):
            cnf = random_ksat(4, 12, k=2, seed=seed)
            inst = sat_to_sgsd(cnf)
            try:
                control = control_general(inst.deposet, inst.predicate)
            except NoControllerExistsError:
                rows.append({"seed": seed, "sat": False, "arrows": None, "cuts": None})
                continue
            controlled = control.apply(inst.deposet)
            lat = CutLattice(controlled)
            cuts = lat.consistent_cuts()
            assert all(inst.predicate.evaluate(controlled, c) for c in cuts)
            rows.append(
                {"seed": seed, "sat": True, "arrows": len(control), "cuts": len(cuts)}
            )
        return rows

    rows = run_once(benchmark, run)
    table = Sweep("E2: witness sequence -> control strategy (verified)")
    for row in rows:
        table.add(**row)
    print("\n" + table.render())
    assert any(r["sat"] for r in rows) and any(not r["sat"] for r in rows)
