"""E14 -- slicing engine vs exhaustive lattice walk: states visited and time.

The detection engines must agree on verdicts while living in different
complexity classes: the exhaustive walk touches a lattice exponential in
processes, the slicing engine does polynomial work in *local* states
(truth tables + candidate elimination + a box-pruned search).  This
experiment records both engines' work on a common sweep and pins the gap:

* identical possibly/definitely verdicts on every workload, all engines;
* on the largest workload the slice engine visits >= 10x fewer states
  (in CI tiny mode -- ``E14_TINY=1`` -- strictly fewer on every row);
* a tracing on/off measurement of the exhaustive walk, recording that the
  disabled-tracing hot path stays within noise (the no-allocation
  contract itself is pinned by ``tests/detection/test_walk_counters.py``).

Results also land in ``BENCH_E14_SLICING.json`` at the repo root, so the
states/time trajectory is tracked in-tree across performance PRs.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.detection import definitely, possibly, violating_cuts
from repro.obs import METRICS, TRACER
from repro.workloads import availability_predicate, random_deposet

TINY = bool(os.environ.get("E14_TINY"))
#: (processes, events per process); tiny mode keeps CI in the sub-second range
SIZES = [(3, 2), (3, 3)] if TINY else [(3, 3), (4, 4), (4, 6), (5, 6)]
ENGINES = ("exhaustive", "slice", "parallel")
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E14_SLICING.json"


def workload(n, events):
    # High start-true probability and low flip rate make the conjunctive
    # bug ("all servers down at once") rare, so exhaustive *possibly* has
    # no early witness to stop at -- the regime slicing is for.
    dep = random_deposet(
        n=n, events_per_proc=events, message_rate=0.15, flip_rate=0.2,
        start_true_prob=0.95, seed=n * 100 + events,
    )
    return dep, availability_predicate(n, "up").negated()


def detect_with(engine, dep, pred):
    """(possibly, definitely, states visited, wall ms) for one engine."""
    with METRICS.scoped() as scope:
        t0 = time.perf_counter()
        witness = possibly(dep, pred, engine=engine)
        dfn = definitely(dep, pred, engine=engine)
        dt = time.perf_counter() - t0
    states = scope.counter("detection.lattice_states") + scope.counter(
        "detection.slice.states"
    )
    return witness is not None, dfn, states, dt * 1e3


def test_e14_slice_vs_exhaustive_scaling(benchmark):
    def run():
        sweep = Sweep("E14: slice vs exhaustive (possibly+definitely per row)")
        for n, events in SIZES:
            dep, pred = workload(n, events)
            per_engine = {e: detect_with(e, dep, pred) for e in ENGINES}
            # hard requirement: verdicts identical across engines
            verdicts = {(p, d) for p, d, _, _ in per_engine.values()}
            assert len(verdicts) == 1, f"engines disagree on n={n}: {per_engine}"
            ex, sl = per_engine["exhaustive"], per_engine["slice"]
            sweep.add(
                n=n,
                states=dep.num_states,
                possibly=ex[0],
                definitely=ex[1],
                exhaustive_states=ex[2],
                slice_states=sl[2],
                ratio=round(ex[2] / max(1, sl[2]), 1),
                exhaustive_ms=round(ex[3], 2),
                slice_ms=round(sl[3], 2),
                parallel_ms=round(per_engine["parallel"][3], 2),
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    _write_json(sweep.rows)

    ratios = sweep.column("ratio")
    if TINY:
        # strict improvement on every row, even trivially small inputs
        for row in sweep.rows:
            assert row["slice_states"] < row["exhaustive_states"], row
    else:
        assert ratios[-1] >= 10, (
            f"slice engine must visit >=10x fewer states than exhaustive on "
            f"the largest workload; got {ratios[-1]}x"
        )


def test_e14_tracing_overhead_on_hot_path(benchmark):
    def run():
        n, events = SIZES[-1]
        dep, pred = workload(n, events)
        # same walk, tracing off vs on; take best-of-3 to cut scheduler noise
        off = min(
            _timed(lambda: violating_cuts(dep, pred)) for _ in range(3)
        )
        with TRACER.recording():
            on = min(
                _timed(lambda: violating_cuts(dep, pred)) for _ in range(3)
            )
            recorded = len(TRACER.drain())
        return off, on, recorded

    off, on, recorded = run_once(benchmark, run)
    print(
        f"\nE14: exhaustive walk wall time -- tracing off {off:.2f} ms, "
        f"on {on:.2f} ms ({recorded} events recorded)"
    )
    benchmark.extra_info["table"] = [
        {"tracing_off_ms": round(off, 3), "tracing_on_ms": round(on, 3),
         "events_recorded": recorded}
    ]
    assert recorded > 0  # enabled tracing really recorded the walk


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) * 1e3


def _write_json(rows):
    payload = {
        "experiment": "E14",
        "title": "slicing engine vs exhaustive lattice walk",
        "tiny": TINY,
        "unit": {"states": "distinct cuts / work units", "ms": "wall clock"},
        "rows": rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
