"""E6 -- Theorem 3: on-line control is impossible without A1/A2.

The scenario (reconstructed from the theorem statement; the proof's
counterexample lives in the unavailable technical report): a non-scapegoat
process goes false and then blocks, while false, waiting for a message its
peer will only send *after* going false itself.  Any strategy must either
let the peer go false (violating the disjunction) or block it forever
(deadlock).  The benchmark runs the scapegoat strategy on a family of such
scenarios and shows it always takes the deadlock horn -- never the
violation -- while the A1-respecting variant of the same communication
shape always terminates.
"""

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.core.online import OnlineDisjunctiveControl
from repro.sim import System


def scenario(block_while_false: bool, extra_peers: int, seed: int):
    """P0 blocks on a receive (while false iff ``block_while_false``);
    P1 wants to go false before sending; extra peers cycle innocently."""

    def blocker(ctx):
        yield ctx.set(up=False)
        if not block_while_false:
            yield ctx.set(up=True)
        yield ctx.receive()
        yield ctx.set(up=True)

    def sender(ctx):
        yield ctx.compute(5.0)
        yield ctx.set(up=False)
        yield ctx.send(0, "wake")
        yield ctx.set(up=True)

    def bystander(ctx):
        for _ in range(3):
            yield ctx.compute(2.0)
            yield ctx.set(up=False)
            yield ctx.compute(1.0)
            yield ctx.set(up=True)

    programs = [blocker, sender] + [bystander] * extra_peers
    n = len(programs)
    guard = OnlineDisjunctiveControl(
        [lambda v: bool(v.get("up", False)) for _ in range(n)]
    )
    start = [{"up": False}] + [{"up": True}] * (n - 1)
    system = System(programs, start_vars=start, guard=guard, seed=seed)
    result = system.run(max_events=100_000)
    return guard, result


def test_e6_dilemma(benchmark):
    def run():
        sweep = Sweep("E6: the Theorem-3 dilemma under the scapegoat strategy")
        for extra in (0, 1, 3):
            for seed in range(3):
                guard, result = scenario(True, extra, seed)
                sweep.add(
                    n=2 + extra, seed=seed, a1_violated=True,
                    predicate_violated=bool(guard.violations),
                    deadlocked=result.deadlocked,
                )
        for extra in (0, 1, 3):
            guard, result = scenario(False, extra, seed=0)
            sweep.add(
                n=2 + extra, seed=0, a1_violated=False,
                predicate_violated=bool(guard.violations),
                deadlocked=result.deadlocked,
            )
        return sweep

    sweep = run_once(benchmark, run)
    print("\n" + sweep.render())
    benchmark.extra_info["table"] = sweep.rows
    for row in sweep.rows:
        # the strategy NEVER violates the predicate...
        assert not row["predicate_violated"]
        # ...and pays with deadlock exactly when A1 is violated
        assert row["deadlocked"] == row["a1_violated"]
