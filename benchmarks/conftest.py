"""Shared settings for the experiment suite.

Every benchmark prints its experiment table (visible with ``-s``; also
attached to the benchmark's ``extra_info`` so it lands in
``--benchmark-json`` output), and asserts the *shape* claims from the
paper -- who wins, by roughly what factor, where the bounds hold.

``run_once`` additionally snapshots the :mod:`repro.obs` metrics registry
around each experiment and prints the per-experiment delta, so the tables
captured into ``bench_tables.txt`` carry a metrics baseline (kernel
events, control messages, handoffs, lattice expansions, ...) that future
performance PRs can diff against.
"""

import pytest

from repro.obs import METRICS
from repro.obs.metrics import MetricsRegistry
from repro.bench.harness import format_metrics_snapshot


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single warm round (experiments are heavy and
    deterministic; statistical repetition adds nothing).

    Metrics activity during the round is diffed and attached to the
    benchmark's ``extra_info["metrics"]`` and printed alongside the table.
    """
    before = METRICS.snapshot()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    delta = MetricsRegistry.diff(before, METRICS.snapshot())
    benchmark.extra_info["metrics"] = delta
    line = format_metrics_snapshot(delta)
    if line:
        print(f"\n[obs metrics] {line}")
    return result
