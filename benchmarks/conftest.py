"""Shared settings for the experiment suite.

Every benchmark prints its experiment table (visible with ``-s``; also
attached to the benchmark's ``extra_info`` so it lands in
``--benchmark-json`` output), and asserts the *shape* claims from the
paper -- who wins, by roughly what factor, where the bounds hold.

``run_once`` additionally wraps each experiment in a
:meth:`~repro.obs.metrics.MetricsRegistry.scoped` metrics scope and prints
the per-experiment delta, so the tables captured into ``bench_tables.txt``
carry a metrics baseline (kernel events, control messages, handoffs,
lattice expansions, ...) that future performance PRs can diff against.
The scope freezes its delta on exit, so several experiments running in
one pytest process each report only their own activity -- cumulative
process-global counters never bleed between rows.
"""

import pytest

from repro.obs import METRICS
from repro.bench.harness import format_metrics_snapshot


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single warm round (experiments are heavy and
    deterministic; statistical repetition adds nothing).

    Metrics activity during the round is isolated with ``METRICS.scoped()``
    (per-run delta, frozen at scope exit), attached to the benchmark's
    ``extra_info["metrics"]`` and printed alongside the table.
    """
    with METRICS.scoped() as scope:
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
    delta = scope.delta()
    benchmark.extra_info["metrics"] = delta
    line = format_metrics_snapshot(delta)
    if line:
        print(f"\n[obs metrics] {line}")
    return result
