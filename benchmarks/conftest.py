"""Shared settings for the experiment suite.

Every benchmark prints its experiment table (visible with ``-s``; also
attached to the benchmark's ``extra_info`` so it lands in
``--benchmark-json`` output), and asserts the *shape* claims from the
paper -- who wins, by roughly what factor, where the bounds hold.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single warm round (experiments are heavy and
    deterministic; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
