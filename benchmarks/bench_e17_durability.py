"""E17 -- crash-safe serving: WAL overhead and recovery time.

Two costs of durability, measured honestly:

* **WAL overhead** -- the same stream served with no durability, then
  with the per-session WAL at each fsync policy (``never``, ``batch``,
  ``always``).  Verdict events are asserted byte-identical across all
  four runs before any number is recorded, so the overhead columns are
  prices for the *same* answer.  ``always`` pays one fsync per flushed
  batch and is expected to be dramatically slower on real disks -- that
  is the point of recording it.

* **recovery time vs checkpoint interval** -- a session crashes at the
  end of its stream; recovery restores the last checkpoint and replays
  the WAL tail.  Small intervals leave short tails (fast recovery, more
  checkpoint writes during normal operation); ``interval=inf`` means no
  checkpoint was ever taken and recovery replays the whole stream
  through the detector.  Both the tail length and the wall time are
  recorded per interval, and every recovered final verdict is asserted
  equal to the uninterrupted one.

Timing-honesty note: the absolute milliseconds here come from whatever
box ran the suite (CI containers included) and the streams are small
enough that constant costs dominate; the *shape* -- recovery cost grows
with the replayed tail, fsync=always >= fsync=batch >= no-WAL -- is the
claim, and only the monotone tail-length relation is asserted.
"""

import asyncio
import io
import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.serve import (
    Backoff,
    ReproServer,
    ServeConfig,
    dumps_event,
    stream_events,
    stream_events_durable,
)
from repro.serve.session import DetectionSession
from repro.trace.io import write_event_stream
from repro.workloads import random_deposet

TINY = bool(os.environ.get("E17_TINY"))
PREDICATE = "at-least-one:up"
#: per-process events in the overhead stream
EVENTS_PER_PROC = 8 if TINY else 40
#: checkpoint intervals for the recovery sweep (None = never checkpoint)
INTERVALS = [4, None] if TINY else [8, 32, 128, None]
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E17_DURABILITY.json"


def make_doc(seed, events_per_proc=EVENTS_PER_PROC, n=3):
    dep = random_deposet(seed=seed, n=n, events_per_proc=events_per_proc,
                         message_rate=0.3, flip_rate=0.3)
    buf = io.StringIO()
    write_event_stream(dep, buf)
    return buf.getvalue().splitlines()


def canon(events):
    return [dumps_event(e) for e in events
            if e.get("e") not in ("closed",)]


async def _serve_once(doc, tmp, *, durable, fsync="batch"):
    cfg = ServeConfig(
        tcp=("127.0.0.1", 0), workers=0, supervise=False, batch=32,
        durable_dir=(str(tmp) if durable else None), fsync=fsync,
        checkpoint_every=64,
    )
    srv = ReproServer(cfg)
    await srv.start()
    port = srv._servers[0].sockets[0].getsockname()[1]
    connect = f"127.0.0.1:{port}"
    t0 = time.perf_counter()
    if durable:
        evs = await stream_events_durable(
            connect, "t", "s", PREDICATE, doc,
            backoff=Backoff(base=0.01, seed=1), timeout=60.0)
    else:
        evs = await stream_events(connect, "t", "s", PREDICATE, doc)
    wall = time.perf_counter() - t0
    await srv.drain()
    return wall, evs


def wal_overhead_rows(sweep):
    import tempfile

    doc = make_doc(1700)
    records = len(doc) - 1
    modes = [("memory", False, None), ("wal-never", True, "never"),
             ("wal-batch", True, "batch"), ("wal-always", True, "always")]
    # warm up imports / event-loop / socket setup so the first timed mode
    # does not pay one-time costs the later modes skip
    asyncio.run(_serve_once(doc, None, durable=False))
    reference = None
    base_wall = None
    rows = []
    for name, durable, fsync in modes:
        walls = []
        for _rep in range(3):  # best-of-3: scheduler noise dominates once
            with tempfile.TemporaryDirectory() as tmp:
                wall, evs = asyncio.run(_serve_once(
                    doc, tmp, durable=durable, fsync=fsync or "batch"))
            walls.append(wall)
            lines = canon(evs)
            if reference is None:
                reference = lines
            assert lines == reference, f"{name}: verdicts diverged"
        wall = min(walls)
        if base_wall is None:
            base_wall = wall
        row = dict(
            mode=name, records=records, wall_ms=round(wall * 1e3, 2),
            events_per_sec=round(records / max(wall, 1e-9)),
            overhead_x=round(wall / max(base_wall, 1e-9), 2),
            identical=True,
        )
        rows.append(row)
        sweep.add(**row)
    return rows


def _prepare_crashed_session(root, doc, interval):
    """Write the durable state a server would hold after crashing at the
    very end of ``doc``: last checkpoint at the largest multiple of
    ``interval``, WAL tail covering the rest, end marker logged."""
    from repro.serve.durability import Checkpoint, DurabilityManager

    header = json.loads(doc[0])
    records = [l for l in doc[1:] if l.strip()]
    mgr = DurabilityManager(root)
    dur = mgr.open_session("t", "s")
    dur.log_header(header, {"predicate": PREDICATE})
    ckpt_at = 0 if interval is None else (len(records) // interval) * interval
    if ckpt_at:
        sess = DetectionSession("t", "s", header, PREDICATE)
        sess.open_event()
        sess.feed(records[:ckpt_at], base_lineno=2)
        for seq, line in enumerate(records[:ckpt_at], start=1):
            dur.log_record(seq, line)
        dur.commit_checkpoint(Checkpoint(
            tenant="t", session="s", seq=ckpt_at, gen=dur.wal.gen,
            header=header, snapshot=sess.snapshot(),
            opts={"predicate": PREDICATE},
        ))
    for seq, line in enumerate(records[ckpt_at:], start=ckpt_at + 1):
        dur.log_record(seq, line)
    dur.log_end()
    dur.flush()
    dur.close()
    return len(records) - ckpt_at


async def _recover_once(root):
    """Start a server over the crashed state and wait for the recovered
    final verdict; returns (wall_s, final_event)."""
    cfg = ServeConfig(tcp=("127.0.0.1", 0), workers=0, supervise=False,
                      durable_dir=root)
    t0 = time.perf_counter()
    srv = ReproServer(cfg)
    await srv.start()
    [entry] = srv._entries.values()
    final = await asyncio.wait_for(entry.final, 60.0)
    wall = time.perf_counter() - t0
    await srv.drain()
    return wall, final


def recovery_rows(sweep):
    import tempfile

    doc = make_doc(1701, events_per_proc=(10 if TINY else 75), n=4)
    records = len(doc) - 1

    # the uninterrupted answer the recovered sessions must reproduce
    header = json.loads(doc[0])
    sess = DetectionSession("t", "s", header, PREDICATE)
    sess.open_event()
    sess.feed(doc[1:], base_lineno=2)
    expected_final = dumps_event(sess.finalize()[-1])

    rows = []
    for interval in INTERVALS:
        with tempfile.TemporaryDirectory() as root:
            tail = _prepare_crashed_session(root, doc, interval)
            wall, final = asyncio.run(_recover_once(root))
        assert dumps_event(final) == expected_final, (
            f"interval={interval}: recovered final diverged")
        row = dict(
            checkpoint_every=(interval if interval is not None else "inf"),
            records=records, replayed_tail=tail,
            recovery_ms=round(wall * 1e3, 2), identical=True,
        )
        rows.append(row)
        sweep.add(**row)
    # shape claim: no checkpoint replays everything; checkpoints shrink
    # the tail monotonically as the interval shrinks
    tails = [r["replayed_tail"] for r in rows]
    assert tails[-1] == records  # interval=inf -> full replay
    assert all(a <= b for a, b in zip(tails, tails[1:])), tails
    return rows


def test_e17_durability_overhead_and_recovery(benchmark):
    def run():
        s1 = Sweep("E17a: WAL overhead vs in-memory serving")
        s2 = Sweep("E17b: recovery time vs checkpoint interval")
        overhead = wal_overhead_rows(s1)
        recovery = recovery_rows(s2)
        return s1, s2, overhead, recovery

    s1, s2, overhead, recovery = run_once(benchmark, run)
    print("\n" + s1.render())
    print("\n" + s2.render())
    benchmark.extra_info["table"] = s1.rows + s2.rows
    _write_json(overhead, recovery)


def _write_json(overhead, recovery):
    JSON_PATH.write_text(json.dumps(
        {
            "experiment": "E17",
            "title": "crash-safe serving: WAL overhead and recovery time",
            "tiny": TINY,
            "unit": {
                "wall_ms": "stream-start to last verdict, one session, "
                           "inline worker",
                "overhead_x": "wall time relative to the no-durability run "
                              "of the identical stream; durable runs pay "
                              "for the resumable wire protocol (per-record "
                              "frames, acks) plus the WAL itself, so "
                              "wal-never isolates the protocol cost and "
                              "the fsync column on top of it is the disk "
                              "cost",
                "recovery_ms": "server start to recovered final verdict "
                               "(checkpoint restore + WAL tail replay)",
                "replayed_tail": "stream records re-applied through the "
                                 "detector during recovery",
            },
            "note": "verdict events are asserted byte-identical across "
                    "all fsync modes and all checkpoint intervals before "
                    "any number is recorded; absolute times are "
                    "box-dependent -- the asserted claim is the shape "
                    "(tail length grows as the checkpoint interval "
                    "grows, interval=inf replays the full stream)",
            "wal_overhead": overhead,
            "recovery": recovery,
        },
        indent=1,
    ) + "\n")
