"""E19 -- durable trace storage: what the commit chain costs and saves.

Four claims about the SQLite backend, each asserted for identity before
any number is recorded (a fast wrong answer is worthless):

* **ingest throughput** -- the same event stream appended record by
  record into the in-memory columns, into SQLite with a single commit,
  and into SQLite committing every 64 records.  Snapshots are asserted
  value-equal across all three before timing is reported.

* **detect wall-time** -- every engine's verdict on the sqlite-backed
  snapshot vs the in-memory one, asserted identical, then the slice
  engine timed on both.  Detection runs on snapshots, so the only
  honest difference is page-fault latency while materialising them.

* **branch vs full copy** -- ``store.branch()`` on the chain is one
  branch row (every ancestor commit and page is shared); the
  alternative it replaces is replaying the whole trace into a second
  store.  Both are timed, and the COW claim is asserted structurally:
  the ``pages`` table does not grow when a branch is created.

* **larger-than-cache** -- the same detection with the page cache
  capped far below the trace size; verdicts must not change while the
  eviction counter proves the cache actually thrashed.

Timing-honesty note: absolute milliseconds come from whatever box ran
the suite; the asserted claims are identity (same snapshots, same
verdicts) and shape (branching beats full copy by orders of magnitude,
zero page rows written per branch, evictions > 0 under the cap).
"""

import io
import json
import os
import sqlite3
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.bench import Sweep
from repro.detection import definitely, possibly
from repro.obs import METRICS
from repro.store import TraceStore
from repro.trace.io import apply_stream_record, write_event_stream
from repro.workloads import availability_predicate, random_deposet

TINY = bool(os.environ.get("E19_TINY"))
N = 3 if TINY else 4
EVENTS_PER_PROC = 8 if TINY else 150
#: page cache cap for the thrash run (pages of 32 states each)
THRASH = dict(page_size=8, cache_pages=2) if TINY else \
    dict(page_size=32, cache_pages=4)
BRANCH_REPS = 3 if TINY else 10
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_E19_STORAGE.json"


def make_records(seed):
    dep = random_deposet(seed=seed, n=N, events_per_proc=EVENTS_PER_PROC,
                         message_rate=0.3, flip_rate=0.3)
    buf = io.StringIO()
    write_event_stream(dep, buf)
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def shape_of(header):
    return dict(
        n=len(header["start"]),
        start_vars=header["start"],
        proc_names=header.get("proc_names"),
        start_times=header.get("start_times"),
    )


def bad_predicate(n):
    return availability_predicate(n, "up").negated()


def feed(store, records, *, commit_every=None):
    t0 = time.perf_counter()
    for i, rec in enumerate(records[1:], start=1):
        apply_stream_record(store, rec, f"bench:{i}")
        if commit_every and i % commit_every == 0:
            store.commit()
    store.commit()
    return time.perf_counter() - t0


def ingest_rows(sweep, records, tmp):
    recs = len(records) - 1
    shape = shape_of(records[0])
    modes = [
        ("memory", "memory", {}),
        ("sqlite", f"sqlite:{tmp / 'ingest.db'}", {}),
        ("sqlite-64", f"sqlite:{tmp / 'ingest64.db'}",
         {"commit_every": 64}),
    ]
    stores, rows = {}, []
    base_wall = None
    for name, target, kw in modes:
        store = TraceStore.open(target, **shape)
        wall = feed(store, records, **kw)
        stores[name] = store
        if base_wall is None:
            base_wall = wall
        rows.append(dict(
            mode=name, records=recs, wall_ms=round(wall * 1e3, 2),
            records_per_sec=round(recs / max(wall, 1e-9)),
            overhead_x=round(wall / max(base_wall, 1e-9), 2),
        ))
    reference = stores["memory"].snapshot()
    for name, store in stores.items():
        assert store.snapshot() == reference, f"{name}: snapshot diverged"
    for row in rows:
        row["identical"] = True
        sweep.add(**row)
    return rows, stores


def detect_rows(sweep, stores):
    pred = bad_predicate(stores["memory"].n)
    verdicts = {}
    rows = []
    for name in ("memory", "sqlite"):
        dep = stores[name].snapshot()
        t0 = time.perf_counter()
        verdicts[name] = (possibly(dep, pred, engine="slice"),
                          definitely(dep, pred, engine="slice"))
        wall = time.perf_counter() - t0
        rows.append(dict(mode=name, states=sum(dep.state_counts),
                         wall_ms=round(wall * 1e3, 2)))
    assert verdicts["sqlite"] == verdicts["memory"], "verdicts diverged"
    for row in rows:
        row["identical"] = True
        sweep.add(**row)
    return rows


def branch_rows(sweep, stores, records, tmp):
    sql = stores["sqlite"]
    dep = sql.snapshot()
    path = sql.backend.path
    conn = sqlite3.connect(path)
    pages_before = conn.execute("SELECT COUNT(*) FROM pages").fetchone()[0]
    conn.close()

    t0 = time.perf_counter()
    forks = [sql.branch(f"bench-{i}") for i in range(BRANCH_REPS)]
    branch_wall = (time.perf_counter() - t0) / BRANCH_REPS
    assert forks[0].snapshot() == dep, "fork != parent at creation"
    for fork in forks:
        fork.close()

    conn = sqlite3.connect(path)
    pages_after = conn.execute("SELECT COUNT(*) FROM pages").fetchone()[0]
    conn.close()
    # the COW claim, structurally: a branch writes no page rows at all
    assert pages_after == pages_before, (pages_before, pages_after)

    # the alternative branching replaces: replay everything into a
    # fresh store (what `freeze()`+`restore()` checkpointing did)
    shape = shape_of(records[0])
    t0 = time.perf_counter()
    copy = TraceStore.open(f"sqlite:{tmp / 'copy.db'}", **shape)
    feed(copy, records)
    copy_wall = time.perf_counter() - t0
    assert copy.snapshot() == dep
    copy.close()

    rows = [
        dict(mode="branch (COW)", wall_ms=round(branch_wall * 1e3, 3),
             pages_written=pages_after - pages_before, identical=True),
        dict(mode="full copy", wall_ms=round(copy_wall * 1e3, 3),
             pages_written=pages_after, identical=True),
    ]
    for row in rows:
        sweep.add(**row)
    # shape claim: a branch costs one fsynced transaction regardless of
    # trace size, while the copy replays every record (tiny inputs are
    # too small for the wall-time gap, so only assert it full-size)
    if not TINY:
        assert branch_wall < copy_wall, (branch_wall, copy_wall)
    return rows


def thrash_rows(sweep, stores, records, tmp):
    reference = stores["memory"].snapshot()
    pred = bad_predicate(reference.n)
    expected = (possibly(reference, pred, engine="slice"),
                definitely(reference, pred, engine="slice"))
    # page size is fixed at creation (it shapes the stored rows), so the
    # thrash run gets its own small-paged database of the same trace
    shape = shape_of(records[0])
    src = tmp / "thrash.db"
    seed_store = TraceStore.open(f"sqlite:{src}", **shape,
                                 page_size=THRASH["page_size"])
    feed(seed_store, records)
    seed_store.close()
    with METRICS.scoped() as scope:
        store = TraceStore.open(f"sqlite:{src}",
                                cache_pages=THRASH["cache_pages"])
        try:
            t0 = time.perf_counter()
            dep = store.snapshot()
            got = (possibly(dep, pred, engine="slice"),
                   definitely(dep, pred, engine="slice"))
            wall = time.perf_counter() - t0
        finally:
            store.close()
    assert dep == reference, "capped-cache snapshot diverged"
    assert got == expected, "capped-cache verdicts diverged"
    evictions = scope.counter("store.sqlite.page_evictions")
    misses = scope.counter("store.sqlite.page_misses")
    hits = scope.counter("store.sqlite.page_hits")
    # the cap must actually bite or this row measures nothing
    assert evictions > 0, "trace fits the capped cache; grow the trace"
    row = dict(
        mode=f"cache={THRASH['cache_pages']}x{THRASH['page_size']}",
        states=sum(reference.state_counts), wall_ms=round(wall * 1e3, 2),
        page_misses=misses, page_hits=hits, page_evictions=evictions,
        identical=True,
    )
    sweep.add(**row)
    return [row]


def test_e19_storage_costs(benchmark):
    def run():
        with tempfile.TemporaryDirectory(prefix="repro-e19-") as td:
            tmp = Path(td)
            records = make_records(1900)
            s1 = Sweep("E19a: ingest throughput, memory vs commit chain")
            s2 = Sweep("E19b: detect wall-time on backend snapshots")
            s3 = Sweep("E19c: COW branch vs full copy")
            s4 = Sweep("E19d: detection under a capped page cache")
            ingest, stores = ingest_rows(s1, records, tmp)
            try:
                detect = detect_rows(s2, stores)
                branch = branch_rows(s3, stores, records, tmp)
                thrash = thrash_rows(s4, stores, records, tmp)
            finally:
                for store in stores.values():
                    store.close()
            return (s1, s2, s3, s4), dict(
                ingest=ingest, detect=detect, branch=branch, thrash=thrash,
            )

    sweeps, sections = run_once(benchmark, run)
    for sweep in sweeps:
        print("\n" + sweep.render())
    benchmark.extra_info["table"] = [r for s in sweeps for r in s.rows]
    _write_json(sections)


def _write_json(sections):
    JSON_PATH.write_text(json.dumps(
        {
            "experiment": "E19",
            "title": "durable trace storage: commit-chain costs and savings",
            "tiny": TINY,
            "unit": {
                "wall_ms": "wall time on the box that ran the suite",
                "records_per_sec": "stream records appended per second "
                                   "(header excluded)",
                "overhead_x": "ingest wall time relative to the in-memory "
                              "columns for the identical stream",
                "pages_written": "rows added to the pages table by the "
                                 "operation (0 = pure COW)",
                "page_evictions": "LRU evictions during the capped-cache "
                                  "detection run",
            },
            "note": "snapshots and verdicts are asserted identical across "
                    "backends, branch forks, and the capped-cache run "
                    "before any number is recorded; asserted shapes: a "
                    "COW branch writes zero page rows (its cost is one "
                    "fsynced transaction, independent of trace size) and "
                    "undercuts a full replay at full size, and the capped "
                    "cache must actually evict",
            **sections,
        },
        indent=1,
    ) + "\n")
