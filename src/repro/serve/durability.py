"""Durable session state: per-session write-ahead logs and checkpoints.

``repro serve`` (PR 6) kept every tenant's :class:`TraceStore` +
:class:`IncrementalDetector` purely in memory, so a worker crash or a
server restart silently lost all in-flight sessions -- exactly the
failure an *online* detector must tolerate.  This module gives each
session a crash-safe on-disk shape:

``<root>/<tenant>/<session>/``
    ``wal.<gen>.log``
        Append-only write-ahead log of accepted ``repro-events/1``
        records.  Each line is ``"%08x %s" % (crc32(payload), payload)``
        where payload is a compact JSON object -- kind ``hdr`` (the
        stream header), ``rec`` (one accepted record with its durable
        ``seq``), or ``end`` (clean end-of-stream).  A torn tail (a
        partially-written last line after a crash) fails its CRC and is
        ignored on recovery, then truncated away when the segment is
        re-opened for append -- so the restarted server's next append
        starts on a fresh line instead of merging with the partial one.
        Anything *before* a corrupt line survives.
    ``ckpt.json``
        The latest checkpoint: ``TraceStore.freeze()`` +
        ``IncrementalDetector.snapshot()`` + the session's public
        verdict-event log, written to a temp file and published with
        ``os.replace`` (atomic on POSIX) followed by a directory fsync.
        A crash mid-checkpoint leaves the previous checkpoint intact.

After a checkpoint commits, the WAL rolls to a new generation
(``gen + 1``) and older segments whose records all sit at or below the
checkpoint watermark are unlinked -- segments holding newer records (the
WAL runs ahead of checkpoints because the server logs before it feeds)
survive until a later watermark passes them.  Recovery cost is bounded
by the checkpoint interval plus the worker's apply lag, not the stream
length.  Recovery =
checkpoint (if any) + replay of WAL records with ``seq`` greater than
the checkpoint's watermark, across all surviving generations in order.

Fsync policy (:class:`FsyncPolicy`) trades durability for throughput:
``always`` fsyncs every appended record, ``batch`` fsyncs on checkpoint
and explicit flushes only (the default -- an OS crash may lose the
in-page tail, a *process* crash loses nothing), ``never`` leaves it to
the OS entirely (benchmarks only).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import METRICS

__all__ = [
    "FsyncPolicy",
    "WalCorruptError",
    "SessionWal",
    "Checkpoint",
    "SessionDurability",
    "DurabilityManager",
    "RecoveredSession",
]

_WAL_APPENDS = METRICS.counter("serve.wal.appends")
_WAL_FSYNCS = METRICS.counter("serve.wal.fsyncs")
_WAL_TORN = METRICS.counter("serve.wal.torn_tails")
_CKPTS = METRICS.counter("serve.ckpt.written")
_CKPT_BYTES = METRICS.counter("serve.ckpt.bytes")
_RECOVERED = METRICS.counter("serve.recovered_sessions")
_CORRUPT = METRICS.counter("serve.wal.corrupt_sessions")


class WalCorruptError(ReproError):
    """A WAL line failed its CRC *before* the tail.

    A bad final line is expected after a crash (torn write) and is
    silently dropped; a bad line with valid lines after it means the
    file was damaged at rest and recovery refuses to guess.
    """


class FsyncPolicy:
    """When appends hit the platter.  See module docstring."""

    ALWAYS = "always"
    BATCH = "batch"
    NEVER = "never"

    CHOICES = (ALWAYS, BATCH, NEVER)

    @classmethod
    def validate(cls, value: str) -> str:
        if value not in cls.CHOICES:
            raise ValueError(
                "fsync policy must be one of %s, got %r"
                % ("/".join(cls.CHOICES), value)
            )
        return value


def _frame(payload: Dict[str, Any]) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "%08x %s" % (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, body)


def _unframe(line: str) -> Optional[Dict[str, Any]]:
    """The payload, or ``None`` if the line fails CRC / doesn't parse."""
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        want = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != want:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SessionWal:
    """One session's write-ahead log, segmented by checkpoint generation.

    Appends go to ``wal.<gen>.log``; :meth:`roll` (called after a
    checkpoint commits) opens ``gen + 1`` and unlinks older segments
    once the checkpoint watermark covers their highest record seq.
    Not thread-safe -- the serving loop owns it.
    """

    def __init__(self, directory: str, *, fsync: str = FsyncPolicy.BATCH,
                 gen: int = 0):
        self.directory = directory
        self.fsync = FsyncPolicy.validate(fsync)
        self.gen = gen
        #: highest record seq written to the *current* segment
        self.max_seq = 0
        self._ended = False
        #: gen -> max record seq, for older segments still on disk
        self._retained: Dict[int, int] = {}
        os.makedirs(directory, exist_ok=True)
        self._scan_existing(gen)
        self._fh = open(self._segment_path(gen), "a", encoding="utf-8")

    def _scan_existing(self, current_gen: int) -> None:
        """After a recovery re-open, repair each surviving segment's torn
        tail and learn its max seq so later rolls know when it becomes
        garbage."""
        for path in SessionWal.segments(self.directory):
            name = os.path.basename(path)
            try:
                g = int(name[4:-4])
            except ValueError:
                continue
            top = self._repair_segment(path)
            if g == current_gen:
                self.max_seq = top
            else:
                self._retained[g] = top

    def _repair_segment(self, path: str) -> int:
        """Truncate ``path``'s torn tail so the next append starts on a
        fresh line, and return the max record seq among its valid lines.

        A crash mid-append leaves a partial final line; appending onto it
        after a re-open would merge the two into a CRC-failing line
        *mid-file*, which a later recovery must refuse
        (:class:`WalCorruptError`) -- so the partial line is chopped here,
        before the segment is opened for append.  A final line that is
        CRC-valid but lost its newline is already durable, so it keeps
        its bytes and gets the newline back.  A CRC failure anywhere
        *else* is damage at rest and is left untouched for
        :meth:`replay` to refuse loudly."""
        top = 0
        with open(path, "r+b") as fh:
            data = fh.read()
            chunks: List[Tuple[int, Optional[Dict[str, Any]], bool]] = []
            pos = 0
            while pos < len(data):
                nl = data.find(b"\n", pos)
                end = len(data) if nl < 0 else nl
                if end > pos:
                    payload = _unframe(
                        data[pos:end].decode("utf-8", "replace"))
                    chunks.append((pos, payload, nl >= 0))
                pos = end if nl < 0 else end + 1
            for _, payload, _ in chunks:
                if payload is None:
                    continue
                if payload.get("t") == "rec":
                    top = max(top, int(payload.get("seq", 0)))
                elif payload.get("t") == "end":
                    self._ended = True
            if chunks:
                start, payload, complete = chunks[-1]
                intact_prefix = all(p is not None for _, p, _ in chunks[:-1])
                repaired = False
                if payload is None and intact_prefix:
                    _WAL_TORN.inc()
                    fh.truncate(start)
                    repaired = True
                elif payload is not None and not complete:
                    fh.write(b"\n")  # position is at EOF after the read
                    repaired = True
                if repaired:
                    fh.flush()
                    if self.fsync != FsyncPolicy.NEVER:
                        os.fsync(fh.fileno())
        return top

    def _segment_path(self, gen: int) -> str:
        return os.path.join(self.directory, "wal.%06d.log" % gen)

    # -- writing -------------------------------------------------------------

    def append(self, payload: Dict[str, Any]) -> None:
        self._fh.write(_frame(payload) + "\n")
        _WAL_APPENDS.inc()
        if self.fsync == FsyncPolicy.ALWAYS:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            _WAL_FSYNCS.inc()

    def append_header(self, header: Dict[str, Any],
                      opts: Optional[Dict[str, Any]] = None) -> None:
        self.append({"t": "hdr", "header": header, "opts": opts or {}})

    def append_record(self, seq: int, line: str) -> None:
        self.append({"t": "rec", "seq": seq, "line": line})
        if seq > self.max_seq:
            self.max_seq = seq

    def append_end(self) -> None:
        self.append({"t": "end"})
        self._ended = True
        self.flush()

    def flush(self) -> None:
        self._fh.flush()
        if self.fsync != FsyncPolicy.NEVER:
            os.fsync(self._fh.fileno())
            _WAL_FSYNCS.inc()

    def roll(self, watermark: int) -> None:
        """Start generation ``gen + 1``; drop every older segment whose
        records all sit at or below the checkpoint ``watermark``.

        The WAL runs *ahead* of checkpoints (the server logs before it
        feeds, and workers apply asynchronously), so the segment being
        closed may hold records the checkpoint does not cover yet --
        those segments are retained until a later checkpoint's watermark
        passes their top seq.
        """
        self.flush()
        self._fh.close()
        self._retained[self.gen] = self.max_seq
        self.gen += 1
        self.max_seq = 0
        self._fh = open(self._segment_path(self.gen), "a", encoding="utf-8")
        if self._ended:
            # keep the clean-end marker visible in the live generation even
            # after the segment that first recorded it is truncated away
            self.append({"t": "end"})
        self.flush()  # segment exists on disk before old ones vanish
        for g, top in list(self._retained.items()):
            if top <= watermark:
                del self._retained[g]
                try:
                    os.unlink(self._segment_path(g))
                except FileNotFoundError:
                    pass
        if self.fsync != FsyncPolicy.NEVER:
            _fsync_dir(self.directory)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    # -- reading -------------------------------------------------------------

    @staticmethod
    def segments(directory: str) -> List[str]:
        """Surviving segment paths, oldest generation first."""
        try:
            names = sorted(
                n for n in os.listdir(directory)
                if n.startswith("wal.") and n.endswith(".log")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(directory, n) for n in names]

    @staticmethod
    def replay(directory: str) -> Iterator[Dict[str, Any]]:
        """Yield surviving payloads across all segments, oldest first.

        A CRC-failing *last* line of the *last* segment is a torn tail
        and is dropped; a failure anywhere else raises
        :class:`WalCorruptError`.
        """
        paths = SessionWal.segments(directory)
        for p_idx, path in enumerate(paths):
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
            for l_idx, line in enumerate(lines):
                if not line:
                    continue
                payload = _unframe(line)
                if payload is None:
                    is_tail = (p_idx == len(paths) - 1
                               and l_idx == len(lines) - 1)
                    if is_tail:
                        _WAL_TORN.inc()
                        return
                    raise WalCorruptError(
                        "corrupt WAL line %d in %s (not the tail)"
                        % (l_idx + 1, path)
                    )
                yield payload


@dataclass
class Checkpoint:
    """A committed point-in-time image of one session.

    ``seq`` is the durable watermark in *lines*: every accepted stream
    line numbered ``<= seq`` is reflected in ``snapshot`` (a
    :meth:`DetectionSession.snapshot` payload -- frozen store, detector
    elimination state, and the session's public event log); recovery
    replays only WAL lines above it.
    """

    tenant: str
    session: str
    seq: int
    gen: int
    header: Dict[str, Any]
    snapshot: Dict[str, Any]
    opts: Dict[str, Any] = field(default_factory=dict)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The public event log captured at the watermark."""
        return list(self.snapshot.get("events", ()))

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": 1,
            "tenant": self.tenant,
            "session": self.session,
            "seq": self.seq,
            "gen": self.gen,
            "header": self.header,
            "snapshot": self.snapshot,
            "opts": self.opts,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Checkpoint":
        if data.get("v") != 1:
            raise WalCorruptError("unknown checkpoint version %r" % data.get("v"))
        return cls(
            tenant=data["tenant"], session=data["session"],
            seq=int(data["seq"]), gen=int(data.get("gen", 0)),
            header=data["header"], snapshot=data["snapshot"],
            opts=dict(data.get("opts", {})),
        )


class SessionDurability:
    """The WAL + checkpoint pair for one live session."""

    CKPT_NAME = "ckpt.json"

    def __init__(self, root: str, tenant: str, session: str, *,
                 fsync: str = FsyncPolicy.BATCH, gen: int = 0):
        self.tenant = tenant
        self.session = session
        self.directory = session_dir(root, tenant, session)
        self.wal = SessionWal(self.directory, fsync=fsync, gen=gen)

    def log_header(self, header: Dict[str, Any],
                   opts: Optional[Dict[str, Any]] = None) -> None:
        self.wal.append_header(header, opts)

    def log_record(self, seq: int, line: str) -> None:
        self.wal.append_record(seq, line)

    def log_end(self) -> None:
        self.wal.append_end()

    def flush(self) -> None:
        """Force buffered appends down per the fsync policy."""
        self.wal.flush()

    def commit_checkpoint(self, ckpt: Checkpoint) -> None:
        """Atomically publish ``ckpt`` and truncate the WAL behind it."""
        ckpt.gen = self.wal.gen + 1  # records after this live in the new gen
        path = os.path.join(self.directory, self.CKPT_NAME)
        tmp = path + ".tmp"
        body = json.dumps(ckpt.to_json(), separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self.wal.fsync != FsyncPolicy.NEVER:
            _fsync_dir(self.directory)
        _CKPTS.inc()
        _CKPT_BYTES.inc(len(body))
        self.wal.roll(ckpt.seq)

    def destroy(self) -> None:
        """Remove all on-disk state (session closed cleanly)."""
        self.wal.close()
        try:
            for name in os.listdir(self.directory):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except FileNotFoundError:
                    pass
            os.rmdir(self.directory)
            # tenant dir is shared; leave it (rmdir would race siblings)
        except FileNotFoundError:
            pass

    def close(self) -> None:
        self.wal.close()


@dataclass
class RecoveredSession:
    """What :meth:`DurabilityManager.recover_all` found for one session.

    ``checkpoint`` is ``None`` when the session crashed before its first
    checkpoint; ``records`` is the replayable WAL tail -- ``(seq, rec)``
    pairs strictly above the checkpoint watermark, in order;
    ``header`` is always present (from the checkpoint or the WAL);
    ``ended`` means a clean ``end`` marker survived, so the stream needs
    finalizing, not more input.
    """

    tenant: str
    session: str
    header: Dict[str, Any]
    checkpoint: Optional[Checkpoint]
    #: replayable WAL tail: ``(seq, raw line)`` above the ckpt watermark
    records: List[Tuple[int, str]]
    ended: bool
    gen: int
    opts: Dict[str, Any] = field(default_factory=dict)

    @property
    def seq(self) -> int:
        """Highest durable seq recovered (watermark for client resume)."""
        if self.records:
            return self.records[-1][0]
        return self.checkpoint.seq if self.checkpoint else 0


def session_dir(root: str, tenant: str, session: str) -> str:
    safe = lambda s: "".join(
        c if (c.isalnum() or c in "-_.") else "_" for c in s
    )
    return os.path.join(root, safe(tenant), safe(session))


class DurabilityManager:
    """Factory + recovery scanner for a server's durability root."""

    def __init__(self, root: str, *, fsync: str = FsyncPolicy.BATCH):
        self.root = root
        self.fsync = FsyncPolicy.validate(fsync)
        os.makedirs(root, exist_ok=True)

    def open_session(self, tenant: str, session: str, *,
                     gen: int = 0) -> SessionDurability:
        return SessionDurability(
            self.root, tenant, session, fsync=self.fsync, gen=gen
        )

    # -- recovery ------------------------------------------------------------

    def recover_session(self, directory: str) -> Optional[RecoveredSession]:
        ckpt: Optional[Checkpoint] = None
        ckpt_path = os.path.join(directory, SessionDurability.CKPT_NAME)
        try:
            with open(ckpt_path, "r", encoding="utf-8") as fh:
                ckpt = Checkpoint.from_json(json.load(fh))
        except FileNotFoundError:
            pass
        except (ValueError, KeyError):
            # Unreadable checkpoint: the tmp/replace protocol makes this
            # unreachable for crashes; treat damage-at-rest as absent and
            # fall back to full WAL replay if gen 0 survives.
            ckpt = None

        header = ckpt.header if ckpt else None
        opts = dict(ckpt.opts) if ckpt else {}
        watermark = ckpt.seq if ckpt else 0
        records: List[Tuple[int, str]] = []
        ended = False
        gen = ckpt.gen if ckpt else 0
        for payload in SessionWal.replay(directory):
            kind = payload.get("t")
            if kind == "hdr":
                if header is None:
                    header = payload.get("header")
                if not opts:
                    opts = dict(payload.get("opts") or {})
            elif kind == "rec":
                seq = int(payload.get("seq", 0))
                if seq > watermark:
                    records.append((seq, payload.get("line", "")))
            elif kind == "end":
                ended = True
        if header is None:
            return None  # nothing usable survived
        for path in SessionWal.segments(directory):
            name = os.path.basename(path)
            try:
                gen = max(gen, int(name[4:-4]))
            except ValueError:
                pass
        tenant = ckpt.tenant if ckpt else None
        session = ckpt.session if ckpt else None
        if tenant is None or session is None:
            # fall back to directory names (sanitised but stable)
            session = os.path.basename(directory)
            tenant = os.path.basename(os.path.dirname(directory))
        _RECOVERED.inc()
        return RecoveredSession(
            tenant=tenant, session=session, header=header,
            checkpoint=ckpt, records=records, ended=ended, gen=gen,
            opts=opts,
        )

    def recover_all(self) -> List[RecoveredSession]:
        """Scan the root for crashed sessions, oldest-path order.

        One session's WAL being damaged at rest must not keep every
        *other* session (or the server itself) from coming back: the
        damaged session is skipped, its files left in place for
        forensics, and a later durable hello for its key discards them.
        """
        out: List[RecoveredSession] = []
        try:
            tenants = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return out
        for t in tenants:
            tdir = os.path.join(self.root, t)
            if not os.path.isdir(tdir):
                continue
            for s in sorted(os.listdir(tdir)):
                sdir = os.path.join(tdir, s)
                if not os.path.isdir(sdir):
                    continue
                try:
                    rec = self.recover_session(sdir)
                except WalCorruptError:
                    _CORRUPT.inc()
                    continue
                if rec is not None:
                    out.append(rec)
        return out

    def discard(self, tenant: str, session: str) -> None:
        """Drop any on-disk state for a (recovered) session."""
        sdir = session_dir(self.root, tenant, session)
        try:
            for name in os.listdir(sdir):
                try:
                    os.unlink(os.path.join(sdir, name))
                except FileNotFoundError:
                    pass
            os.rmdir(sdir)
        except FileNotFoundError:
            pass
