"""The ``repro-verdicts/1`` event schema and its one serializer.

Every online detection surface -- ``repro serve`` pushing to subscribers,
``repro tail`` printing what the server pushed, ``repro watch --format
json`` running the same detector in-process -- emits the *same*
line-delimited JSON events, produced by the helpers here and nowhere
else.  The schema (documented in ``docs/SERVING.md``) is deliberately
timestamp-free: the event sequence of a session is a pure function of its
input stream, so two runs of the same stream are **byte-identical** no
matter how the work was sharded -- the property the E16 benchmark and the
multi-tenant tests pin.

Event kinds (every event carries ``e``, ``tenant``, ``session``, ``seq``
where ``seq`` is the number of stream records applied when it fired):

``open``
    Session accepted: carries ``format`` (the schema name), ``n``
    (process count) and the predicate spec.
``witness``
    The violation frontier moved: ``status`` is ``"found"`` (a consistent
    cut violating the predicate exists; ``cut`` names the least one) or
    ``"withdrawn"`` (a late arrow ordered the previous witness away).
``final``
    End of stream: the last word on the session.  ``witness`` is the
    final least violating cut or ``null``; ``definitely`` upgrades it
    with the batch *definitely* modality when computed; ``pending`` lists
    processes whose disjunct never went false; ``degraded`` is true when
    backpressure shed records (the verdict covers only the applied
    prefix).
``shed``
    The slow-consumer policy dropped ``dropped`` records (tail-shedding:
    nothing after the marker was applied).
``error``
    The session died: ``code`` (``malformed``, ``quota``, ``protocol``)
    plus a human message and, when known, a ``where`` location.
``closed``
    The server finished with the session (always the last event).

Internal events start with ``_`` and are never published to
subscribers: ``_ack`` carries flow-control credit grants from detection
workers back to the server, ``_ckpt`` ships a session snapshot home for
the durability layer, ``_restored`` reports a session rebuilt from
checkpoint + WAL tail, ``_metrics`` ships a worker registry snapshot at
shutdown.  Two internal events *do* cross the wire, but only on durable
``repro-serve/1`` stream connections (never to subscribers):
``_resume`` (the server's durable watermark at [re]connect) and
``_durable`` (watermark advance acks; see ``docs/SERVING.md``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.detection.incremental import WatchResult

__all__ = [
    "VERDICT_FORMAT",
    "FINDINGS_FORMAT",
    "dumps_event",
    "event_open",
    "event_witness",
    "event_final",
    "event_shed",
    "event_error",
    "event_closed",
    "event_finding",
    "event_lint_summary",
    "ack_event",
    "ckpt_event",
    "restored_event",
    "resume_event",
    "durable_event",
    "is_internal",
    "describe_event",
    "events_to_lines",
    "VerdictTracker",
]

VERDICT_FORMAT = "repro-verdicts/1"
#: Schema name of the online-lint finding events a ``--lint`` session
#: interleaves with its verdicts (documented in docs/ANALYSIS.md).
FINDINGS_FORMAT = "repro-findings/1"

Cut = Tuple[int, ...]


def dumps_event(event: Dict[str, Any]) -> str:
    """The canonical wire form (sorted keys, no whitespace, no newline)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def _base(kind: str, tenant: str, session: str, seq: int) -> Dict[str, Any]:
    return {"e": kind, "tenant": tenant, "session": session, "seq": seq}


def event_open(
    tenant: str, session: str, n: int, predicate: str
) -> Dict[str, Any]:
    ev = _base("open", tenant, session, 0)
    ev["format"] = VERDICT_FORMAT
    ev["n"] = n
    ev["predicate"] = predicate
    return ev


def event_witness(
    tenant: str, session: str, seq: int, status: str, cut: Cut
) -> Dict[str, Any]:
    ev = _base("witness", tenant, session, seq)
    ev["status"] = status
    ev["cut"] = list(cut)
    return ev


def event_final(
    tenant: str,
    session: str,
    seq: int,
    result: WatchResult,
    *,
    degraded: bool = False,
) -> Dict[str, Any]:
    ev = _base("final", tenant, session, seq)
    ev["witness"] = list(result.witness) if result.witness is not None else None
    ev["definitely"] = result.definitely
    ev["pending"] = list(result.pending)
    ev["degraded"] = degraded
    return ev


def event_shed(
    tenant: str, session: str, seq: int, dropped: int
) -> Dict[str, Any]:
    ev = _base("shed", tenant, session, seq)
    ev["dropped"] = dropped
    return ev


def event_error(
    tenant: str,
    session: str,
    seq: int,
    code: str,
    message: str,
    where: Optional[str] = None,
) -> Dict[str, Any]:
    ev = _base("error", tenant, session, seq)
    ev["code"] = code
    ev["message"] = message
    if where is not None:
        ev["where"] = where
    return ev


def event_closed(tenant: str, session: str, seq: int) -> Dict[str, Any]:
    return _base("closed", tenant, session, seq)


def event_finding(
    tenant: str, session: str, seq: int, finding: Dict[str, Any]
) -> Dict[str, Any]:
    """A ``repro-findings/1`` event: one lint finding, the moment its
    record arrived.  ``finding`` is a ``Finding.to_dict()`` payload; the
    headline fields (``rule``/``severity``/``fp``) are lifted so
    subscribers can filter without parsing the body."""
    from repro.analysis.findings import Finding
    from repro.analysis.fingerprint import fingerprint

    ev = _base("finding", tenant, session, seq)
    ev["format"] = FINDINGS_FORMAT
    ev["rule"] = finding.get("rule")
    ev["severity"] = finding.get("severity")
    ev["fp"] = fingerprint(Finding.from_dict(finding))
    ev["finding"] = finding
    return ev


def event_lint_summary(
    tenant: str,
    session: str,
    seq: int,
    *,
    findings: int,
    errors: int,
    warnings: int,
    dirty: bool,
    dirty_reason: Optional[str] = None,
) -> Dict[str, Any]:
    """End-of-stream lint roll-up for a ``--lint`` session."""
    ev = _base("lint", tenant, session, seq)
    ev["format"] = FINDINGS_FORMAT
    ev["findings"] = findings
    ev["errors"] = errors
    ev["warnings"] = warnings
    ev["dirty"] = dirty
    if dirty_reason is not None:
        ev["dirty_reason"] = dirty_reason
    return ev


def ack_event(session_key: str, applied: int, seq: int) -> Dict[str, Any]:
    """Internal: a worker granting ``applied`` flow-control credits back."""
    return {"e": "_ack", "key": session_key, "applied": applied, "seq": seq}


def ckpt_event(session_key: str, seq: int,
               snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Internal: a worker shipping a session snapshot covering the first
    ``seq`` forwarded lines back to the server's durability layer."""
    return {"e": "_ckpt", "key": session_key, "seq": seq,
            "snapshot": snapshot}


def restored_event(session_key: str, seq: int, events: int) -> Dict[str, Any]:
    """Internal: a worker finished rebuilding a session from checkpoint +
    WAL tail; ``seq`` lines applied, ``events`` public events in its log."""
    return {"e": "_restored", "key": session_key, "seq": seq,
            "events": events}


def resume_event(seq: int, events: int) -> Dict[str, Any]:
    """Wire (durable streams only): the server's watermark at [re]connect.
    The client must send record ``seq + 1`` next and already holds the
    first ``events`` events of the session's verdict log."""
    return {"e": "_resume", "seq": seq, "events": events}


def durable_event(seq: int) -> Dict[str, Any]:
    """Wire (durable streams only): records up to ``seq`` hit the WAL."""
    return {"e": "_durable", "seq": seq}


def is_internal(event: Dict[str, Any]) -> bool:
    return str(event.get("e", "")).startswith("_")


def describe_event(event: Dict[str, Any]) -> str:
    """One human line per event (``repro tail --format text``)."""
    kind = event.get("e")
    who = f"{event.get('tenant')}/{event.get('session')}"
    seq = event.get("seq")
    if kind == "open":
        return (f"[{who}] open: n={event.get('n')} "
                f"predicate={event.get('predicate')}")
    if kind == "witness":
        verb = ("violation possible at" if event.get("status") == "found"
                else "witness withdrawn from")
        return f"[{who}] record {seq}: {verb} {tuple(event.get('cut', ()))}"
    if kind == "final":
        w = event.get("witness")
        base = (f"[{who}] final after {seq} record(s): "
                + ("predicate holds in every consistent global state"
                   if w is None
                   else f"violation possible at {tuple(w)}"
                   + (" and DEFINITELY occurs" if event.get("definitely")
                      else "")))
        if event.get("degraded"):
            base += " (DEGRADED: backpressure shed records)"
        return base
    if kind == "shed":
        return (f"[{who}] record {seq}: slow consumer -- shed "
                f"{event.get('dropped')} record(s)")
    if kind == "error":
        where = f" at {event['where']}" if event.get("where") else ""
        return f"[{who}] error ({event.get('code')}){where}: {event.get('message')}"
    if kind == "finding":
        f = event.get("finding", {})
        where = f" at {f['location']}" if f.get("location") else ""
        return (f"[{who}] record {seq}: lint {event.get('rule')} "
                f"[{event.get('severity')}]{where}: {f.get('message')}")
    if kind == "lint":
        base = (f"[{who}] lint after {seq} record(s): "
                f"{event.get('findings')} finding(s), "
                f"{event.get('errors')} error(s), "
                f"{event.get('warnings')} warning(s)")
        if event.get("dirty"):
            base += f" (DEGRADED: {event.get('dirty_reason')})"
        return base
    if kind == "closed":
        return f"[{who}] closed"
    return f"[{who}] {kind}: {dumps_event(event)}"


class VerdictTracker:
    """Turns a stream of polls into witness found/withdrawn transitions.

    Feed it ``observe(seq, witness)`` after every applied record; it
    remembers the previous poll and emits events only on change (a moved
    witness after an epoch reset emits withdrawn *then* found, so a
    subscriber replaying the events always knows the current frontier).
    Shared by the serving sessions and ``repro watch --format json`` so
    the two surfaces cannot drift.
    """

    def __init__(self, tenant: str, session: str):
        self.tenant = tenant
        self.session = session
        self._witness: Optional[Cut] = None

    @property
    def witness(self) -> Optional[Cut]:
        return self._witness

    def observe(self, seq: int, witness: Optional[Cut]) -> List[Dict[str, Any]]:
        if witness == self._witness:
            return []
        events: List[Dict[str, Any]] = []
        if self._witness is not None:
            events.append(
                event_witness(self.tenant, self.session, seq,
                              "withdrawn", self._witness)
            )
        if witness is not None:
            events.append(
                event_witness(self.tenant, self.session, seq,
                              "found", tuple(witness))
            )
        self._witness = tuple(witness) if witness is not None else None
        return events

    def finalized(
        self, seq: int, result: WatchResult, *, degraded: bool = False
    ) -> Dict[str, Any]:
        return event_final(self.tenant, self.session, seq, result,
                           degraded=degraded)


def events_to_lines(events: Sequence[Dict[str, Any]]) -> str:
    """Public events only, one canonical line each (trailing newline)."""
    lines = [dumps_event(ev) for ev in events if not is_internal(ev)]
    return "".join(line + "\n" for line in lines)
