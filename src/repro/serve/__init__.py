"""Online detection as a service (``repro serve`` / ``repro tail``).

The serving subsystem turns the PR 4/5 streaming substrate -- per-stream
:class:`~repro.store.TraceStore` + incremental conjunctive detection --
into a long-running multi-tenant server: many concurrent
``repro-events/1`` streams over TCP/unix sockets (or tailed from files),
each multiplexed into its own detection session on a sharded worker
pool, with per-tenant quotas, credit-based backpressure, and live
``repro-verdicts/1`` push to subscribers.  See ``docs/SERVING.md``.

Layers (each its own module, importable without starting a server):

:mod:`~repro.serve.protocol`
    The ``repro-verdicts/1`` event schema, its single serializer, and
    the :class:`VerdictTracker` shared with ``repro watch --format json``.
:mod:`~repro.serve.session`
    One stream's detection state (store + incremental detector).
:mod:`~repro.serve.registry`
    Tenant quotas, admission control, subscriber fan-out.
:mod:`~repro.serve.workers`
    The sharded CPU plane: inline or multiprocessing detector pools.
:mod:`~repro.serve.server`
    The asyncio I/O plane: listeners, backpressure policies, drain.
:mod:`~repro.serve.client`
    Dial/stream/subscribe helpers (the only client implementation).
:mod:`~repro.serve.durability`
    Per-session write-ahead log + checkpoints (crash-safe sessions).
:mod:`~repro.serve.supervisor`
    Worker heartbeats, restart-with-backoff, checkpoint replay.
:mod:`~repro.serve.faulty`
    Deterministic transport-level fault injection for chaos tests.
"""

from repro.serve.client import (
    Backoff,
    StreamLostError,
    open_connection,
    parse_connect,
    stream_events,
    stream_events_durable,
    subscribe,
)
from repro.serve.faulty import FaultyTransport
from repro.serve.durability import (
    Checkpoint,
    DurabilityManager,
    FsyncPolicy,
    SessionDurability,
    SessionWal,
    WalCorruptError,
)
from repro.serve.protocol import (
    VERDICT_FORMAT,
    VerdictTracker,
    describe_event,
    dumps_event,
    events_to_lines,
    is_internal,
)
from repro.serve.registry import (
    QuotaExceededError,
    SessionRegistry,
    SessionState,
    TenantQuota,
)
from repro.serve.server import SERVE_FORMAT, ReproServer, ServeConfig, run_server
from repro.serve.session import DetectionSession, session_key
from repro.serve.supervisor import WorkerSupervisor
from repro.serve.workers import DetectorPool, InlinePool, ProcessPool, make_pool

__all__ = [
    "VERDICT_FORMAT",
    "SERVE_FORMAT",
    "VerdictTracker",
    "describe_event",
    "dumps_event",
    "events_to_lines",
    "is_internal",
    "DetectionSession",
    "session_key",
    "TenantQuota",
    "QuotaExceededError",
    "SessionRegistry",
    "SessionState",
    "DetectorPool",
    "InlinePool",
    "ProcessPool",
    "make_pool",
    "ServeConfig",
    "ReproServer",
    "run_server",
    "parse_connect",
    "open_connection",
    "stream_events",
    "stream_events_durable",
    "subscribe",
    "Backoff",
    "StreamLostError",
    "FsyncPolicy",
    "WalCorruptError",
    "SessionWal",
    "Checkpoint",
    "SessionDurability",
    "DurabilityManager",
    "WorkerSupervisor",
    "FaultyTransport",
]
