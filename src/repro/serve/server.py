"""`repro serve`: the asyncio control plane of the online detection service.

One process runs the **I/O plane** (this module): asyncio listeners on
TCP and/or a unix socket accept many concurrent ``repro-serve/1``
connections, a file-tail mode follows a growing stream on disk, and a
:class:`~repro.serve.registry.SessionRegistry` admits sessions against
per-tenant quotas.  The **CPU plane** is the sharded
:mod:`~repro.serve.workers` pool: the server forwards raw stream lines in
batches to the shard owning each session and receives verdict events plus
flow-control acks back on the loop thread.

Wire protocol (line-delimited JSON both ways):

.. code-block:: text

    C: {"format": "repro-serve/1", "t": "hello", "tenant": "acme",
        "session": "run-7", "predicate": "at-least-one:up"}
    C: {"format": "repro-events/1", "proc_names": [...], "start": [...]}
    C: {"t": "ev", "p": 0, "u": {"up": false}}          # ... the stream
    C: <EOF>
    S: {"e": "open",    ...}                            # pushed as they fire
    S: {"e": "witness", "status": "found", "cut": [1,2], ...}
    S: {"e": "final",   "witness": [1,2], "definitely": true, ...}
    S: {"e": "closed",  ...}

A ``{"t": "subscribe", "tenant": "acme"}`` hello instead attaches the
connection as a read-only subscriber to every verdict event of that
tenant.

**Backpressure.**  Each session holds ``max_buffered_events`` credits;
forwarding a line spends one, a worker ack refunds what it applied.  When
a stream outruns its detector the configured slow-consumer policy
engages: ``pause`` stops reading the socket until credits return (TCP
pushback propagates to the producer), ``shed`` tail-drops everything
after the budget and marks the final verdict degraded, ``disconnect``
cuts the connection after an error event.  Policies are per-server,
quotas per-tenant; one tenant tripping its policy never touches another
tenant's session (pinned by tests/serve/test_backpressure.py).

**Drain.**  ``drain()`` stops the listeners, cancels readers, flushes
every admitted session's buffered lines, finalizes all sessions (final
verdicts still reach their connections and subscribers), stops the
worker pool, and merges worker metrics into the live registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TruncatedStreamError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.serve.protocol import dumps_event, event_closed, event_error
from repro.serve.registry import (
    QuotaExceededError,
    SessionRegistry,
    SessionState,
    TenantQuota,
)
from repro.serve.session import session_key
from repro.serve.workers import make_pool

__all__ = ["ServeConfig", "ReproServer", "SERVE_FORMAT"]

SERVE_FORMAT = "repro-serve/1"
#: readline() limit: one stream record per line, generously capped
_LINE_LIMIT = 1 << 20

_CONNS = METRICS.counter("serve.connections")
_LINES = METRICS.counter("serve.lines_read")
_SHED = METRICS.counter("serve.shed_records")
_DISCONNECTS = METRICS.counter("serve.disconnects")
_PAUSES = METRICS.counter("serve.pauses")
_ACK_LAT = METRICS.histogram("serve.ack_latency")
_VERDICT_LAT = METRICS.histogram("serve.verdict_latency")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to run (see ``docs/SERVING.md``)."""

    tcp: Optional[Tuple[str, int]] = None
    unix: Optional[str] = None
    #: detection worker processes; 0 = inline (detection on the loop thread)
    workers: int = 2
    #: slow-consumer policy: ``pause`` | ``shed`` | ``disconnect``
    policy: str = "pause"
    quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: per-tenant session opts (e.g. ``{"slow": {"delay_per_record": 0.01}}``)
    tenant_opts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: lines per worker batch (flush threshold)
    batch: int = 64
    #: batch engine for the final *definitely* upgrade
    engine: str = "auto"
    #: skip the batch *definitely* pass for stores above this many states
    definitely_limit: int = 50_000
    #: seconds to wait for final verdicts during drain
    drain_timeout: float = 30.0

    def __post_init__(self):
        if self.policy not in ("pause", "shed", "disconnect"):
            raise ValueError(f"unknown slow-consumer policy {self.policy!r}")
        if self.batch <= 0:
            raise ValueError("batch must be positive")


class _Entry:
    """Loop-thread state for one admitted session."""

    __slots__ = (
        "state", "writer", "push", "credit", "final", "error",
        "buffer", "lineno", "last_flush", "finalizing",
    )

    def __init__(self, state: SessionState, loop: asyncio.AbstractEventLoop,
                 writer: Optional[asyncio.StreamWriter] = None, push=None):
        self.state = state
        self.writer = writer
        self.push = push  # optional callable(event) for tail sessions
        self.credit = asyncio.Event()
        self.credit.set()
        self.final: asyncio.Future = loop.create_future()
        self.error: Optional[Dict[str, Any]] = None
        self.buffer: List[str] = []
        self.lineno = 1  # header consumed the first line
        self.last_flush = time.perf_counter()
        self.finalizing = False


class ReproServer:
    """The long-running multi-tenant online detection service."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.registry = SessionRegistry(config.quota, config.tenant_quotas)
        self.pool = make_pool(config.workers)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._entries: Dict[str, _Entry] = {}
        self._conn_tasks: set = set()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.pool.set_sink(self._sink)
        self.pool.start()
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._servers.append(await asyncio.start_server(
                self._handle_conn, host=host, port=port, limit=_LINE_LIMIT
            ))
        if self.config.unix is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=self.config.unix, limit=_LINE_LIMIT
            ))

    @property
    def endpoints(self) -> List[str]:
        out = []
        for srv in self._servers:
            for sock in srv.sockets:
                out.append(str(sock.getsockname()))
        return out

    async def drain(self) -> Dict[str, Any]:
        """Graceful shutdown; returns the registry's final stats."""
        self._draining = True
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # finalize whatever is still admitted (readers are gone; buffers
        # may still hold un-forwarded lines)
        finals = []
        for key, entry in list(self._entries.items()):
            if not entry.finalizing and entry.error is None:
                self._flush(key, entry, force=True)
                if entry.buffer:  # credits spent: drop + mark degraded
                    _SHED.inc(len(entry.buffer))
                    entry.state.shed += len(entry.buffer)
                    entry.buffer.clear()
                self._finalize(key, entry)
            if not entry.final.done() and entry.error is None:
                finals.append(entry.final)
        if finals:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*finals, return_exceptions=True),
                    timeout=self.config.drain_timeout,
                )
        stats = self.registry.stats()
        for key, entry in list(self._entries.items()):
            self._publish(entry, event_closed(entry.state.tenant,
                                              entry.state.session,
                                              entry.state.acked))
            self._close_entry(key, entry)
        loop = self._loop or asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.stop)
        return stats

    # -- worker events (loop thread) -----------------------------------------

    def _sink(self, key: str, events: List[Dict[str, Any]]) -> None:
        """Pool sink; may fire on a drain thread -> hop to the loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._dispatch(key, events)
        else:
            loop.call_soon_threadsafe(self._dispatch, key, events)

    def _dispatch(self, key: str, events: List[Dict[str, Any]]) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        now = time.perf_counter()
        for ev in events:
            kind = ev.get("e")
            if kind == "_ack":
                applied = int(ev.get("applied", 0))
                entry.state.acked += applied
                entry.state.credits += applied
                _ACK_LAT.observe(now - entry.last_flush)
                METRICS.gauge(
                    f"serve.tenant.{entry.state.tenant}.queue_depth"
                ).set(entry.state.outstanding)
                entry.credit.set()
                continue
            if kind in ("witness", "final"):
                _VERDICT_LAT.observe(now - entry.last_flush)
            if kind == "error":
                entry.error = ev
                entry.credit.set()  # wake a paused reader so it can bail
            self._publish(entry, ev)
            if kind == "final" and not entry.final.done():
                entry.final.set_result(ev)

    def _publish(self, entry: _Entry, event: Dict[str, Any]) -> None:
        line = (dumps_event(event) + "\n").encode()
        if entry.writer is not None:
            with contextlib.suppress(Exception):
                entry.writer.write(line)
        if entry.push is not None:
            entry.push(event)
        self.registry.publish(entry.state.tenant, event)

    # -- feeding helpers (loop thread) ---------------------------------------

    def _admit(self, tenant: str, session: str,
               writer: Optional[asyncio.StreamWriter], push=None) -> _Entry:
        key = session_key(tenant, session)
        shard = self.pool.shard_of(key)
        state = self.registry.open(tenant, session, shard)  # may raise
        entry = _Entry(state, self._loop, writer=writer, push=push)
        self._entries[key] = entry
        return entry

    def _session_opts(self, tenant: str) -> Dict[str, Any]:
        opts = dict(self.config.tenant_opts.get(tenant, ()))
        opts.setdefault("engine", self.config.engine)
        opts.setdefault("max_store_states",
                        self.registry.quota(tenant).max_store_states)
        return opts

    def _flush(self, key: str, entry: _Entry, *, force: bool = False) -> None:
        """Forward buffered lines within the credit budget (shed/disconnect
        overflow handling); ``force`` ignores the batch threshold."""
        state = entry.state
        if not entry.buffer:
            return
        if not force and len(entry.buffer) < self.config.batch:
            return
        if state.tripped and self.config.policy in ("shed", "disconnect"):
            _SHED.inc(len(entry.buffer))
            state.shed += len(entry.buffer)
            entry.buffer.clear()
            return
        sendable = min(len(entry.buffer), state.credits)
        if sendable:
            chunk, entry.buffer = entry.buffer[:sendable], entry.buffer[sendable:]
            state.credits -= len(chunk)
            state.submitted += len(chunk)
            entry.last_flush = time.perf_counter()
            if state.credits <= 0:
                entry.credit.clear()
            self.pool.feed(key, chunk, entry.lineno - len(entry.buffer)
                           - len(chunk) + 1)
        if entry.buffer and self.config.policy == "shed":
            # over budget: tail-shed from here on
            if not state.tripped:
                state.tripped = True
            _SHED.inc(len(entry.buffer))
            state.shed += len(entry.buffer)
            entry.buffer.clear()

    def _finalize(self, key: str, entry: _Entry) -> None:
        entry.finalizing = True
        state = entry.state
        quota_states = state.quota.max_store_states
        with_definitely = (
            quota_states == 0 or quota_states <= self.config.definitely_limit
        )
        self.pool.finalize(key, shed=state.shed,
                           with_definitely=with_definitely)

    def _close_entry(self, key: str, entry: _Entry) -> None:
        self._entries.pop(key, None)
        self.registry.close(key)
        self.pool.close_session(key)
        if entry.writer is not None:
            with contextlib.suppress(Exception):
                entry.writer.close()

    # -- connections ---------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        _CONNS.inc()
        try:
            await self._serve_conn(reader, writer)
        except asyncio.CancelledError:
            pass  # drain() owns session finalisation now
        except Exception:
            with contextlib.suppress(Exception):
                writer.close()
            raise
        finally:
            self._conn_tasks.discard(task)

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        def refuse(code: str, message: str) -> None:
            ev = event_error("?", "?", 0, code, message)
            writer.write((dumps_event(ev) + "\n").encode())

        raw = await reader.readline()
        try:
            hello = json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            hello = None
        if not isinstance(hello, dict) or hello.get("format") != SERVE_FORMAT:
            refuse("protocol", f"expected a {SERVE_FORMAT!r} hello line")
            await _drain_close(writer)
            return
        kind = hello.get("t", "hello")
        tenant = str(hello.get("tenant") or "default")
        if kind == "subscribe":
            await self._serve_subscriber(reader, writer, tenant)
            return
        if kind != "hello":
            refuse("protocol", f"unknown hello type {kind!r}")
            await _drain_close(writer)
            return
        session = str(hello.get("session") or f"conn-{id(writer):x}")
        predicate = hello.get("predicate")
        if not predicate:
            refuse("protocol", "hello needs a 'predicate' spec")
            await _drain_close(writer)
            return
        try:
            entry = self._admit(tenant, session, writer)
        except QuotaExceededError as exc:
            ev = event_error(tenant, session, 0, "quota", str(exc))
            writer.write((dumps_event(ev) + "\n").encode())
            await _drain_close(writer)
            return
        key = entry.state.key
        with TRACER.span("serve.session", tenant=tenant, session=session):
            try:
                await self._serve_stream(reader, entry, predicate)
            except _Disconnect:
                # slow-consumer disconnect: the error event is out; still
                # deliver the degraded final covering the applied prefix
                self._finalize(key, entry)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.shield(entry.final),
                        timeout=self.config.drain_timeout,
                    )
            finally:
                if not self._draining:
                    self._publish(entry, event_closed(tenant, session,
                                                      entry.state.acked))
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    self._close_entry(key, entry)

    async def _serve_stream(self, reader: asyncio.StreamReader,
                            entry: _Entry, predicate: str) -> None:
        key = entry.state.key
        header_raw = await reader.readline()
        try:
            header = json.loads(header_raw.decode())
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            self._publish(entry, event_error(
                entry.state.tenant, entry.state.session, 0, "protocol",
                f"expected a repro-events/1 header line ({exc})",
            ))
            return
        self.pool.open_session(key, entry.state.tenant, entry.state.session,
                               header, predicate,
                               self._session_opts(entry.state.tenant))
        while True:
            if entry.error is not None:
                return
            raw = await reader.readline()
            if raw == b"":
                break
            _LINES.inc()
            entry.lineno += 1
            line = raw.decode().strip()
            if not line:
                continue
            entry.buffer.append(line)
            await self._apply_policy(key, entry)
        await self._drain_buffer(key, entry)
        if entry.error is not None:
            return
        self._finalize(key, entry)
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                asyncio.shield(entry.final), timeout=self.config.drain_timeout
            )

    async def _drain_buffer(self, key: str, entry: _Entry) -> None:
        """End of stream: push every remaining buffered line to the worker,
        waiting for credits when the budget is spent (the shed policy
        instead clears the buffer inside the forced flush)."""
        while entry.error is None:
            self._flush(key, entry, force=True)
            if not entry.buffer:
                return
            entry.credit.clear()
            await entry.credit.wait()

    async def _apply_policy(self, key: str, entry: _Entry) -> None:
        """Flush the buffer; when credits run dry, do what the policy says."""
        state = entry.state
        self._flush(key, entry)
        if not entry.buffer or len(entry.buffer) < self.config.batch:
            return
        # buffer is at the batch threshold and credits are exhausted
        if self.config.policy == "pause":
            _PAUSES.inc()
            while state.credits <= 0 and entry.error is None:
                entry.credit.clear()
                await entry.credit.wait()
            self._flush(key, entry, force=True)
        elif self.config.policy == "shed":
            self._flush(key, entry, force=True)  # trips + sheds the tail
        else:  # disconnect
            state.tripped = True
            _DISCONNECTS.inc()
            dropped = len(entry.buffer)
            state.shed += dropped
            entry.buffer.clear()
            _SHED.inc(dropped)
            self._publish(entry, event_error(
                state.tenant, state.session, state.acked, "slow-consumer",
                f"stream outran detection by more than "
                f"{state.quota.max_buffered_events} buffered event(s); "
                f"disconnecting (verdict will cover the applied prefix)",
            ))
            raise _Disconnect()

    async def _serve_subscriber(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                tenant: str) -> None:
        def push(event: Dict[str, Any]) -> None:
            with contextlib.suppress(Exception):
                writer.write((dumps_event(event) + "\n").encode())

        self.registry.subscribe(tenant, push)
        try:
            while True:  # subscribers only ever half-close
                raw = await reader.readline()
                if raw == b"":
                    break
        finally:
            self.registry.unsubscribe(tenant, push)
            with contextlib.suppress(Exception):
                writer.close()

    # -- file-tail mode ------------------------------------------------------

    async def tail_file(self, path: str, tenant: str, session: str,
                        predicate: str, *, follow: bool = False,
                        poll_interval: float = 0.2, push=None,
                        stop: Optional[asyncio.Event] = None
                        ) -> Optional[Dict[str, Any]]:
        """Follow a ``repro-events/1`` file on disk as a server-side session.

        Reads complete lines only; a truncated final line (the writer is
        mid-record) is retried in ``follow`` mode and reported as a
        ``malformed`` error otherwise.  Returns the final verdict event,
        or ``None`` when the session failed.  Verdict events reach
        ``push`` and any subscribers of ``tenant``.
        """
        entry = self._admit(tenant, session, writer=None, push=push)
        key = entry.state.key
        opened = False
        lineno = 0

        def stopped() -> bool:
            return stop is not None and stop.is_set()

        with open(path) as fh:
            while True:
                pos = fh.tell()
                raw = fh.readline()
                if raw == "":
                    if follow and not stopped():
                        await asyncio.sleep(poll_interval)
                        continue
                    break
                if not raw.endswith("\n"):
                    if follow and not stopped():
                        # the writer is mid-append; re-read the line later
                        fh.seek(pos)
                        await asyncio.sleep(poll_interval)
                        continue
                    # end of input without a newline: accept valid JSON,
                    # surface genuine truncation as the typed error
                    try:
                        json.loads(raw)
                    except json.JSONDecodeError as exc:
                        err = TruncatedStreamError(
                            f"{path}:{lineno + 1}: truncated record at end "
                            f"of stream ({exc})", lineno=lineno + 1,
                        )
                        self._publish(entry, event_error(
                            tenant, session, entry.state.acked, "malformed",
                            str(err), where=f"{path}:{lineno + 1}",
                        ))
                        self._close_entry(key, entry)
                        return None
                lineno += 1
                line = raw.strip()
                if not line:
                    continue
                if not opened:
                    try:
                        header = json.loads(line)
                    except json.JSONDecodeError as exc:
                        self._publish(entry, event_error(
                            tenant, session, 0, "malformed",
                            f"bad stream header ({exc})",
                            where=f"{path}:{lineno}",
                        ))
                        self._close_entry(key, entry)
                        return None
                    self.pool.open_session(key, tenant, session, header,
                                           predicate,
                                           self._session_opts(tenant))
                    opened = True
                    continue
                entry.lineno = lineno
                entry.buffer.append(line)
                self._flush(key, entry)
                while entry.state.credits <= 0 and entry.error is None:
                    entry.credit.clear()  # tail mode always pauses
                    await entry.credit.wait()
                if entry.error is not None:
                    break
        await self._drain_buffer(key, entry)
        final = None
        if entry.error is None and opened:
            self._finalize(key, entry)
            with contextlib.suppress(asyncio.TimeoutError):
                final = await asyncio.wait_for(
                    asyncio.shield(entry.final),
                    timeout=self.config.drain_timeout,
                )
        self._publish(entry, event_closed(tenant, session, entry.state.acked))
        self._close_entry(key, entry)
        return final


class _Disconnect(Exception):
    """Internal: the disconnect policy cut a stream connection."""


async def _drain_close(writer: asyncio.StreamWriter) -> None:
    with contextlib.suppress(Exception):
        await writer.drain()
        writer.close()


async def run_server(config: ServeConfig,
                     stop: Optional[asyncio.Event] = None
                     ) -> Dict[str, Any]:
    """Start a server, run until ``stop`` is set (or forever), then drain."""
    server = ReproServer(config)
    await server.start()
    try:
        if stop is None:
            stop = asyncio.Event()
        await stop.wait()
    finally:
        stats = await server.drain()
    return stats
