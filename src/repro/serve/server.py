"""`repro serve`: the asyncio control plane of the online detection service.

One process runs the **I/O plane** (this module): asyncio listeners on
TCP and/or a unix socket accept many concurrent ``repro-serve/1``
connections, a file-tail mode follows a growing stream on disk, and a
:class:`~repro.serve.registry.SessionRegistry` admits sessions against
per-tenant quotas.  The **CPU plane** is the sharded
:mod:`~repro.serve.workers` pool: the server forwards raw stream lines in
batches to the shard owning each session and receives verdict events plus
flow-control acks back on the loop thread.

Wire protocol (line-delimited JSON both ways):

.. code-block:: text

    C: {"format": "repro-serve/1", "t": "hello", "tenant": "acme",
        "session": "run-7", "predicate": "at-least-one:up"}
    C: {"format": "repro-events/1", "proc_names": [...], "start": [...]}
    C: {"t": "ev", "p": 0, "u": {"up": false}}          # ... the stream
    C: <EOF>
    S: {"e": "open",    ...}                            # pushed as they fire
    S: {"e": "witness", "status": "found", "cut": [1,2], ...}
    S: {"e": "final",   "witness": [1,2], "definitely": true, ...}
    S: {"e": "closed",  ...}

A ``{"t": "subscribe", "tenant": "acme"}`` hello instead attaches the
connection as a read-only subscriber to every verdict event of that
tenant.

**Backpressure.**  Each session holds ``max_buffered_events`` credits;
forwarding a line spends one, a worker ack refunds what it applied.  When
a stream outruns its detector the configured slow-consumer policy
engages: ``pause`` stops reading the socket until credits return (TCP
pushback propagates to the producer), ``shed`` tail-drops everything
after the budget and marks the final verdict degraded, ``disconnect``
cuts the connection after an error event.  Policies are per-server,
quotas per-tenant; one tenant tripping its policy never touches another
tenant's session (pinned by tests/serve/test_backpressure.py).

**Drain.**  ``drain()`` stops the listeners, cancels readers, flushes
every admitted session's buffered lines, finalizes all sessions (final
verdicts still reach their connections and subscribers), stops the
worker pool, and merges worker metrics into the live registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TruncatedStreamError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.serve.durability import (
    Checkpoint,
    DurabilityManager,
    FsyncPolicy,
    RecoveredSession,
    SessionDurability,
    WalCorruptError,
    session_dir,
)
from repro.serve.protocol import (
    dumps_event,
    durable_event,
    event_closed,
    event_error,
    resume_event,
)
from repro.serve.registry import (
    QuotaExceededError,
    SessionRegistry,
    SessionState,
    TenantQuota,
)
from repro.serve.session import session_key
from repro.serve.workers import make_pool

__all__ = ["ServeConfig", "ReproServer", "SERVE_FORMAT"]

SERVE_FORMAT = "repro-serve/1"
#: readline() limit: one stream record per line, generously capped
_LINE_LIMIT = 1 << 20

_CONNS = METRICS.counter("serve.connections")
_LINES = METRICS.counter("serve.lines_read")
_SHED = METRICS.counter("serve.shed_records")
_DISCONNECTS = METRICS.counter("serve.disconnects")
_PAUSES = METRICS.counter("serve.pauses")
_ACK_LAT = METRICS.histogram("serve.ack_latency")
_VERDICT_LAT = METRICS.histogram("serve.verdict_latency")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to run (see ``docs/SERVING.md``)."""

    tcp: Optional[Tuple[str, int]] = None
    unix: Optional[str] = None
    #: detection worker processes; 0 = inline (detection on the loop thread)
    workers: int = 2
    #: slow-consumer policy: ``pause`` | ``shed`` | ``disconnect``
    policy: str = "pause"
    quota: TenantQuota = field(default_factory=TenantQuota)
    tenant_quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: per-tenant session opts (e.g. ``{"slow": {"delay_per_record": 0.01}}``)
    tenant_opts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: lines per worker batch (flush threshold)
    batch: int = 64
    #: batch engine for the final *definitely* upgrade
    engine: str = "auto"
    #: skip the batch *definitely* pass for stores above this many states
    definitely_limit: int = 50_000
    #: seconds to wait for final verdicts during drain
    drain_timeout: float = 30.0
    #: durability root directory; ``None`` = in-memory serving (PR 6 shape)
    durable_dir: Optional[str] = None
    #: commit-chain trace storage directory (``--store sqlite:DIR``);
    #: ``None`` = per-session stores stay in memory
    store_dir: Optional[str] = None
    #: run a per-session :class:`StreamingLinter` and interleave
    #: ``repro-findings/1`` events with the verdict stream
    lint: bool = False
    #: WAL fsync policy: ``always`` | ``batch`` | ``never``
    fsync: str = FsyncPolicy.BATCH
    #: checkpoint a durable session every this many forwarded lines
    checkpoint_every: int = 256
    #: supervise worker processes (restart dead shards); ProcessPool only
    supervise: bool = True
    #: seconds between supervisor heartbeats
    heartbeat_interval: float = 0.5
    #: a worker this stale on pongs (with a live process) is hung
    heartbeat_timeout: float = 10.0
    #: worker restarts per shard before its sessions move to another shard
    restart_budget: int = 3
    #: base / cap for the supervisor's exponential restart backoff
    restart_backoff: float = 0.05
    restart_backoff_max: float = 2.0

    def __post_init__(self):
        if self.policy not in ("pause", "shed", "disconnect"):
            raise ValueError(f"unknown slow-consumer policy {self.policy!r}")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        FsyncPolicy.validate(self.fsync)
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")


class _Entry:
    """Loop-thread state for one admitted session."""

    __slots__ = (
        "state", "writer", "push", "credit", "final", "error",
        "buffer", "lineno", "last_flush", "finalizing",
        # durable-session state
        "durable", "dur", "accepted", "wal_seq", "last_ckpt", "events_log",
        "header", "opts", "predicate", "parked", "ended", "opened",
        "restoring",
    )

    def __init__(self, state: SessionState, loop: asyncio.AbstractEventLoop,
                 writer: Optional[asyncio.StreamWriter] = None, push=None):
        self.state = state
        self.writer = writer
        self.push = push  # optional callable(event) for tail sessions
        self.credit = asyncio.Event()
        self.credit.set()
        self.final: asyncio.Future = loop.create_future()
        self.error: Optional[Dict[str, Any]] = None
        self.buffer: List[str] = []
        self.lineno = 1  # header consumed the first line
        self.last_flush = time.perf_counter()
        self.finalizing = False
        self.durable = False
        self.dur: Optional[SessionDurability] = None
        self.accepted = 0   # non-empty stream lines accepted (dedup seq)
        self.wal_seq = 0    # lines appended to the WAL (durable watermark)
        self.last_ckpt = 0  # wal_seq when the last checkpoint was requested
        self.events_log: List[Dict[str, Any]] = []  # published public events
        self.header: Optional[Dict[str, Any]] = None
        self.opts: Dict[str, Any] = {}
        self.predicate: Optional[str] = None
        self.parked = False     # disconnected mid-stream, awaiting resume
        self.ended = False      # clean end-of-stream marker seen
        self.opened = False     # header reached the worker
        self.restoring = False  # a restore op is in flight for this session


class ReproServer:
    """The long-running multi-tenant online detection service."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.registry = SessionRegistry(config.quota, config.tenant_quotas)
        self.pool = make_pool(config.workers)
        self.durability: Optional[DurabilityManager] = (
            DurabilityManager(config.durable_dir, fsync=config.fsync)
            if config.durable_dir else None
        )
        self.supervisor = None  # set in start() for supervised pools
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._entries: Dict[str, _Entry] = {}
        self._conn_tasks: set = set()
        self._supervisor_task: Optional[asyncio.Task] = None
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.pool.set_sink(self._sink)
        self.pool.start()
        if self.durability is not None:
            self._recover_from_disk()
        if self.config.supervise and self.config.workers > 0:
            from repro.serve.supervisor import WorkerSupervisor

            self.supervisor = WorkerSupervisor(self)
            self._supervisor_task = asyncio.ensure_future(
                self.supervisor.run()
            )
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._servers.append(await asyncio.start_server(
                self._handle_conn, host=host, port=port, limit=_LINE_LIMIT
            ))
        if self.config.unix is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=self.config.unix, limit=_LINE_LIMIT
            ))

    def _recover_from_disk(self) -> None:
        """Resurrect every session the durability root holds: park it,
        rebuild its worker state from checkpoint + WAL tail, and (for
        cleanly-ended streams) finalize.  Clients resume against the
        parked entries with their ``have_events`` watermarks.  Sessions
        that cannot be admitted (smaller quotas after a restart) stay on
        disk untouched; a later durable hello for the same key recovers
        or discards them (:meth:`_resurrect_leftover`) rather than
        opening a fresh session next to the stale state."""
        for rec in self.durability.recover_all():
            if rec.opts.get("predicate") is None:
                self.durability.discard(rec.tenant, rec.session)
                continue
            try:
                self._resurrect(rec)
            except QuotaExceededError:  # smaller quotas after restart
                continue

    def _resurrect(self, rec: RecoveredSession) -> _Entry:
        """Re-admit one recovered session as a parked entry and queue the
        worker-side rebuild.  The caller has checked ``rec`` carries a
        predicate; raises :class:`QuotaExceededError` when the tenant
        has no room for the session."""
        predicate = rec.opts["predicate"]
        entry = self._admit(rec.tenant, rec.session, writer=None)
        key = entry.state.key
        entry.durable = True
        entry.parked = True
        entry.opened = True
        entry.ended = rec.ended
        entry.header = rec.header
        entry.predicate = predicate
        entry.opts = {k: v for k, v in rec.opts.items()
                      if k != "predicate"}
        entry.accepted = entry.wal_seq = rec.seq
        entry.last_ckpt = rec.checkpoint.seq if rec.checkpoint else 0
        entry.events_log = (list(rec.checkpoint.events)
                            if rec.checkpoint else [])
        entry.restoring = True
        entry.dur = self.durability.open_session(
            rec.tenant, rec.session, gen=rec.gen
        )
        self.pool.restore(
            key, rec.tenant, rec.session, rec.header, predicate,
            entry.opts,
            rec.checkpoint.snapshot if rec.checkpoint else None,
            [line for _, line in rec.records],
            len(entry.events_log),
        )
        final = next((ev for ev in entry.events_log
                      if ev.get("e") == "final"), None)
        if final is not None:
            entry.final.set_result(final)
        elif rec.ended:
            self._finalize(key, entry)
        return entry

    def _resurrect_leftover(self, tenant: str, session: str
                            ) -> Optional[_Entry]:
        """A fresh durable hello may target a session whose on-disk
        state survived a restart without being resurrected at start()
        (admission failed under a tighter quota).  Recover it now --
        resuming is what the durable client expects -- or, when the
        leftovers are unusable (damaged at rest, no predicate), discard
        them, so the fresh open never appends gen-0 records next to a
        stale checkpoint.  Raises :class:`QuotaExceededError` when the
        state is recoverable but the tenant still has no room."""
        sdir = session_dir(self.durability.root, tenant, session)
        if not os.path.isdir(sdir):
            return None
        try:
            rec = self.durability.recover_session(sdir)
        except WalCorruptError:
            rec = None
        if rec is None or rec.opts.get("predicate") is None:
            self.durability.discard(tenant, session)
            return None
        # recover_session falls back to sanitised directory names when no
        # checkpoint survived; the hello's names are authoritative here
        rec.tenant, rec.session = tenant, session
        return self._resurrect(rec)

    @property
    def endpoints(self) -> List[str]:
        out = []
        for srv in self._servers:
            for sock in srv.sockets:
                out.append(str(sock.getsockname()))
        return out

    async def drain(self) -> Dict[str, Any]:
        """Graceful shutdown; returns the registry's final stats.

        Parked durable sessions (disconnected mid-stream, awaiting a
        resume) are *not* finalized: their WAL + checkpoint stay on disk
        and the next server start recovers them, so a restart in the
        middle of a client outage loses nothing.
        """
        self._draining = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._supervisor_task
            self._supervisor_task = None
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # finalize whatever is still admitted (readers are gone; buffers
        # may still hold un-forwarded lines)
        finals = []
        for key, entry in list(self._entries.items()):
            if (entry.durable and entry.opened and not entry.ended
                    and entry.error is None):
                continue  # preserved on disk for the next start
            if not entry.finalizing and entry.error is None:
                self._flush(key, entry, force=True)
                if entry.buffer:  # credits spent: drop + mark degraded
                    _SHED.inc(len(entry.buffer))
                    entry.state.shed += len(entry.buffer)
                    entry.buffer.clear()
                self._finalize(key, entry)
            if not entry.final.done() and entry.error is None:
                finals.append(entry.final)
        if finals:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*finals, return_exceptions=True),
                    timeout=self.config.drain_timeout,
                )
        stats = self.registry.stats()
        for key, entry in list(self._entries.items()):
            if (entry.durable and entry.opened and not entry.ended
                    and entry.error is None):
                self._flush_wal_tail(entry)
                self._close_entry(key, entry, destroy_durable=False)
                continue
            self._publish(entry, event_closed(entry.state.tenant,
                                              entry.state.session,
                                              entry.state.acked))
            self._close_entry(key, entry)
        loop = self._loop or asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.stop)
        return stats

    # -- worker events (loop thread) -----------------------------------------

    def _sink(self, key: str, events: List[Dict[str, Any]]) -> None:
        """Pool sink; may fire on a drain thread -> hop to the loop."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._dispatch(key, events)
        else:
            loop.call_soon_threadsafe(self._dispatch, key, events)

    def _dispatch(self, key: str, events: List[Dict[str, Any]]) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        now = time.perf_counter()
        for ev in events:
            kind = ev.get("e")
            if kind == "_ack":
                applied = int(ev.get("applied", 0))
                entry.state.acked += applied
                entry.state.credits += applied
                _ACK_LAT.observe(now - entry.last_flush)
                METRICS.gauge(
                    f"serve.tenant.{entry.state.tenant}.queue_depth"
                ).set(entry.state.outstanding)
                entry.credit.set()
                continue
            if kind == "_ckpt":
                self._commit_checkpoint(entry, ev)
                continue
            if kind == "_restored":
                # the worker rebuilt this session: reset flow control to
                # a clean slate (outstanding feeds were replayed from WAL)
                entry.state.submitted = entry.state.acked = int(ev["seq"])
                entry.state.credits = entry.state.quota.max_buffered_events
                entry.restoring = False
                entry.credit.set()
                continue
            if kind in ("witness", "final"):
                _VERDICT_LAT.observe(now - entry.last_flush)
            if kind == "error":
                entry.error = ev
                entry.credit.set()  # wake a paused reader so it can bail
            if entry.durable:
                entry.events_log.append(ev)
            self._publish(entry, ev)
            if kind == "final" and not entry.final.done():
                entry.final.set_result(ev)

    def _commit_checkpoint(self, entry: _Entry, ev: Dict[str, Any]) -> None:
        """A worker shipped a ``_ckpt`` snapshot: publish it atomically
        and truncate the WAL behind it (loop thread; the file work is a
        bounded, checkpoint-interval-amortised pause)."""
        if entry.dur is None:
            return
        state = entry.state
        opts = dict(entry.opts)
        opts["predicate"] = entry.predicate
        entry.dur.commit_checkpoint(Checkpoint(
            tenant=state.tenant, session=state.session,
            seq=int(ev["seq"]), gen=0,  # commit_checkpoint stamps the gen
            header=entry.header or {}, snapshot=ev["snapshot"], opts=opts,
        ))

    def _publish(self, entry: _Entry, event: Dict[str, Any]) -> None:
        line = (dumps_event(event) + "\n").encode()
        if entry.writer is not None:
            with contextlib.suppress(Exception):
                entry.writer.write(line)
        if entry.push is not None:
            entry.push(event)
        self.registry.publish(entry.state.tenant, event)

    # -- feeding helpers (loop thread) ---------------------------------------

    def _admit(self, tenant: str, session: str,
               writer: Optional[asyncio.StreamWriter], push=None) -> _Entry:
        key = session_key(tenant, session)
        shard = self.pool.shard_of(key)
        state = self.registry.open(tenant, session, shard)  # may raise
        entry = _Entry(state, self._loop, writer=writer, push=push)
        self._entries[key] = entry
        return entry

    def _session_opts(self, tenant: str) -> Dict[str, Any]:
        opts = dict(self.config.tenant_opts.get(tenant, ()))
        opts.setdefault("engine", self.config.engine)
        opts.setdefault("max_store_states",
                        self.registry.quota(tenant).max_store_states)
        opts.setdefault("lint", self.config.lint)
        if self.config.store_dir is not None:
            opts.setdefault("store_dir", self.config.store_dir)
        return opts

    def _flush(self, key: str, entry: _Entry, *, force: bool = False) -> None:
        """Forward buffered lines within the credit budget (shed/disconnect
        overflow handling); ``force`` ignores the batch threshold."""
        state = entry.state
        if entry.restoring:
            # the worker is rebuilding this session from checkpoint + WAL:
            # hold feeds until ``_restored`` re-establishes flow control,
            # or their later acks would refund credits into a window the
            # restore already reset to full (blowing past the quota)
            return
        if not entry.buffer:
            return
        if not force and len(entry.buffer) < self.config.batch:
            return
        if state.tripped and self.config.policy in ("shed", "disconnect"):
            _SHED.inc(len(entry.buffer))
            state.shed += len(entry.buffer)
            entry.buffer.clear()
            return
        sendable = min(len(entry.buffer), state.credits)
        if sendable:
            chunk, entry.buffer = entry.buffer[:sendable], entry.buffer[sendable:]
            state.credits -= len(chunk)
            state.submitted += len(chunk)
            entry.last_flush = time.perf_counter()
            if state.credits <= 0:
                entry.credit.clear()
            if entry.dur is not None:
                # log-before-feed: the WAL must cover everything a worker
                # may have applied, or recovery could lose acked effects
                for line in chunk:
                    entry.wal_seq += 1
                    entry.dur.log_record(entry.wal_seq, line)
                if entry.writer is not None:
                    with contextlib.suppress(Exception):
                        entry.writer.write(
                            (dumps_event(durable_event(entry.wal_seq))
                             + "\n").encode()
                        )
            self.pool.feed(key, chunk, entry.lineno - len(entry.buffer)
                           - len(chunk) + 1)
            if (entry.dur is not None
                    and entry.wal_seq - entry.last_ckpt
                    >= self.config.checkpoint_every):
                entry.last_ckpt = entry.wal_seq
                self.pool.checkpoint(key, entry.wal_seq)
        if entry.buffer and self.config.policy == "shed":
            # over budget: tail-shed from here on
            if not state.tripped:
                state.tripped = True
            _SHED.inc(len(entry.buffer))
            state.shed += len(entry.buffer)
            entry.buffer.clear()

    def _finalize(self, key: str, entry: _Entry) -> None:
        entry.finalizing = True
        state = entry.state
        quota_states = state.quota.max_store_states
        with_definitely = (
            quota_states == 0 or quota_states <= self.config.definitely_limit
        )
        self.pool.finalize(key, shed=state.shed,
                           with_definitely=with_definitely)

    def _close_entry(self, key: str, entry: _Entry, *,
                     destroy_durable: bool = True) -> None:
        self._entries.pop(key, None)
        self.registry.close(key)
        self.pool.close_session(key)
        self.pool.unpin(key)
        if entry.dur is not None:
            if destroy_durable:
                entry.dur.destroy()
            else:
                entry.dur.close()
        if entry.writer is not None:
            with contextlib.suppress(Exception):
                entry.writer.close()

    # -- connections ---------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        _CONNS.inc()
        try:
            await self._serve_conn(reader, writer)
        except asyncio.CancelledError:
            pass  # drain() owns session finalisation now
        except Exception:
            with contextlib.suppress(Exception):
                writer.close()
            raise
        finally:
            self._conn_tasks.discard(task)

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        def refuse(code: str, message: str) -> None:
            ev = event_error("?", "?", 0, code, message)
            writer.write((dumps_event(ev) + "\n").encode())

        raw = await reader.readline()
        try:
            hello = json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            hello = None
        if not isinstance(hello, dict) or hello.get("format") != SERVE_FORMAT:
            refuse("protocol", f"expected a {SERVE_FORMAT!r} hello line")
            await _drain_close(writer)
            return
        kind = hello.get("t", "hello")
        tenant = str(hello.get("tenant") or "default")
        if kind == "subscribe":
            await self._serve_subscriber(reader, writer, tenant)
            return
        if kind != "hello":
            refuse("protocol", f"unknown hello type {kind!r}")
            await _drain_close(writer)
            return
        session = str(hello.get("session") or f"conn-{id(writer):x}")
        predicate = hello.get("predicate")
        if not predicate:
            refuse("protocol", "hello needs a 'predicate' spec")
            await _drain_close(writer)
            return
        if hello.get("durable"):
            if self.durability is None:
                refuse("protocol",
                       "this server has no durability root (start it with "
                       "--durable to accept durable streams)")
                await _drain_close(writer)
                return
            await self._serve_durable_conn(
                reader, writer, tenant, session, str(predicate),
                int(hello.get("have_events", 0) or 0),
            )
            return
        try:
            entry = self._admit(tenant, session, writer)
        except QuotaExceededError as exc:
            ev = event_error(tenant, session, 0, "quota", str(exc))
            writer.write((dumps_event(ev) + "\n").encode())
            await _drain_close(writer)
            return
        key = entry.state.key
        with TRACER.span("serve.session", tenant=tenant, session=session):
            try:
                await self._serve_stream(reader, entry, predicate)
            except _Disconnect:
                # slow-consumer disconnect: the error event is out; still
                # deliver the degraded final covering the applied prefix
                self._finalize(key, entry)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.shield(entry.final),
                        timeout=self.config.drain_timeout,
                    )
            finally:
                if not self._draining:
                    self._publish(entry, event_closed(tenant, session,
                                                      entry.state.acked))
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    self._close_entry(key, entry)

    async def _serve_stream(self, reader: asyncio.StreamReader,
                            entry: _Entry, predicate: str) -> None:
        key = entry.state.key
        header_raw = await reader.readline()
        try:
            header = json.loads(header_raw.decode())
            if not isinstance(header, dict):
                raise ValueError("header is not an object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            self._publish(entry, event_error(
                entry.state.tenant, entry.state.session, 0, "protocol",
                f"expected a repro-events/1 header line ({exc})",
            ))
            return
        self.pool.open_session(key, entry.state.tenant, entry.state.session,
                               header, predicate,
                               self._session_opts(entry.state.tenant))
        while True:
            if entry.error is not None:
                return
            raw = await reader.readline()
            if raw == b"":
                break
            _LINES.inc()
            entry.lineno += 1
            line = raw.decode().strip()
            if not line:
                continue
            entry.buffer.append(line)
            await self._apply_policy(key, entry)
        await self._drain_buffer(key, entry)
        if entry.error is not None:
            return
        self._finalize(key, entry)
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                asyncio.shield(entry.final), timeout=self.config.drain_timeout
            )

    # -- durable connections -------------------------------------------------

    def _write_event(self, writer: asyncio.StreamWriter,
                     event: Dict[str, Any]) -> None:
        with contextlib.suppress(Exception):
            writer.write((dumps_event(event) + "\n").encode())

    def _flush_wal_tail(self, entry: _Entry) -> None:
        """Preserve buffered-but-unforwarded lines in the WAL (drain is
        parking this session on disk; the client may never resend them)."""
        if entry.dur is None:
            return
        for line in entry.buffer:
            entry.wal_seq += 1
            entry.dur.log_record(entry.wal_seq, line)
        entry.buffer.clear()
        entry.dur.flush()

    def _park(self, entry: _Entry) -> None:
        """The connection died mid-stream: keep everything (registry
        session, worker state, WAL) and wait for a resume."""
        entry.parked = True
        if entry.writer is not None:
            with contextlib.suppress(Exception):
                entry.writer.close()
            entry.writer = None
        if entry.dur is not None:
            entry.dur.flush()

    async def _serve_durable_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        tenant: str, session: str, predicate: str, have_events: int,
    ) -> None:
        """A ``durable: true`` hello: fresh open or resume of a parked
        session.  The wire protocol differs from plain streams: records
        arrive framed (``{"t":"rec","q":N,"line":...}``) so loss, dup-
        lication and reordering are *detected* -- duplicates are dropped
        idempotently, gaps park the session and the client re-syncs from
        the server's watermark on the next connect."""
        from repro.serve.session import session_key

        key = session_key(tenant, session)
        entry = self._entries.get(key)
        if entry is not None:
            if not entry.parked or not entry.durable:
                self._write_event(writer, event_error(
                    tenant, session, 0, "quota",
                    f"session {key!r} is already open (one live stream "
                    f"per session id)",
                ))
                await _drain_close(writer)
                return
            entry.parked = False
            entry.writer = writer
        else:
            try:
                entry = self._resurrect_leftover(tenant, session)
                if entry is None:
                    entry = self._admit(tenant, session, writer)
                    entry.durable = True
                    entry.predicate = predicate
                    entry.opts = self._session_opts(tenant)
                    entry.dur = self.durability.open_session(tenant, session)
                else:
                    entry.parked = False
                    entry.writer = writer
            except QuotaExceededError as exc:
                self._write_event(writer, event_error(
                    tenant, session, 0, "quota", str(exc)))
                await _drain_close(writer)
                return
        # handshake: our watermark, then every event the client has missed
        self._write_event(writer, resume_event(entry.accepted,
                                               len(entry.events_log)))
        for ev in entry.events_log[max(0, have_events):]:
            self._write_event(writer, ev)
        with TRACER.span("serve.session.durable", tenant=tenant,
                         session=session):
            try:
                status = await self._serve_durable_stream(reader, entry)
            except _Disconnect:
                self._finalize(key, entry)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        asyncio.shield(entry.final),
                        timeout=self.config.drain_timeout,
                    )
                status = "done"
        if self._draining:
            return
        if status == "parked":
            self._park(entry)
            return
        # done or error: the session is over for good
        self._publish(entry, event_closed(tenant, session,
                                          entry.state.acked))
        with contextlib.suppress(Exception):
            await writer.drain()
        self._close_entry(key, entry)

    async def _serve_durable_stream(self, reader: asyncio.StreamReader,
                                    entry: _Entry) -> str:
        """Read framed records until end-of-stream; returns ``"done"``
        (final delivered), ``"error"`` (session failed) or ``"parked"``
        (connection lost / protocol violation -- resume expected)."""
        key = entry.state.key
        if not entry.ended:
            try:
                parked = await self._read_durable_frames(reader, entry)
            except (ConnectionResetError, BrokenPipeError, OSError):
                return "parked"
            if parked:
                return "parked"
        if entry.error is not None:
            return "error"
        await self._drain_buffer(key, entry)
        if entry.error is not None:
            return "error"
        if entry.dur is not None and not entry.final.done():
            entry.dur.log_end()
        if not entry.finalizing and not entry.final.done():
            self._finalize(key, entry)
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                asyncio.shield(entry.final),
                timeout=self.config.drain_timeout,
            )
        return "error" if entry.error is not None else "done"

    async def _read_durable_frames(self, reader: asyncio.StreamReader,
                                   entry: _Entry) -> bool:
        """The framed read loop; ``True`` means park (re-sync needed)."""
        key = entry.state.key
        state = entry.state
        while True:
            if entry.error is not None:
                return False
            raw = await reader.readline()
            if raw == b"":
                return True  # no end marker: abnormal EOF
            _LINES.inc()
            try:
                obj = json.loads(raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                return True  # torn frame
            if not isinstance(obj, dict):
                return True
            t = obj.get("t")
            if t == "hdr":
                if entry.opened:
                    continue  # duplicate header after a re-sync race
                try:
                    header = json.loads(obj.get("line", ""))
                    if not isinstance(header, dict):
                        raise ValueError("header is not an object")
                except (json.JSONDecodeError, ValueError) as exc:
                    ev = event_error(
                        state.tenant, state.session, 0, "protocol",
                        f"bad durable stream header ({exc})",
                    )
                    entry.error = ev
                    self._publish(entry, ev)
                    return False
                entry.header = header
                entry.dur.log_header(
                    header, {**entry.opts, "predicate": entry.predicate}
                )
                self.pool.open_session(key, state.tenant, state.session,
                                       header, entry.predicate, entry.opts)
                entry.opened = True
            elif t == "rec":
                q, line = obj.get("q"), obj.get("line")
                if (not isinstance(q, int) or not isinstance(line, str)
                        or not entry.opened):
                    return True
                if q <= entry.accepted:
                    continue  # idempotent dedup of a retransmitted record
                if q != entry.accepted + 1:
                    return True  # gap: loss/reorder upstream; re-sync
                line = line.strip()
                if not line:
                    return True  # framed empty line: protocol violation
                entry.accepted += 1
                entry.lineno += 1
                entry.buffer.append(line)
                await self._apply_policy(key, entry)
            elif t == "end":
                entry.ended = True
                return False
            else:
                return True

    async def _drain_buffer(self, key: str, entry: _Entry) -> None:
        """End of stream: push every remaining buffered line to the worker,
        waiting for credits when the budget is spent (the shed policy
        instead clears the buffer inside the forced flush)."""
        while entry.error is None:
            self._flush(key, entry, force=True)
            if not entry.buffer:
                return
            entry.credit.clear()
            await entry.credit.wait()

    async def _apply_policy(self, key: str, entry: _Entry) -> None:
        """Flush the buffer; when credits run dry, do what the policy says."""
        state = entry.state
        while entry.restoring and entry.error is None:
            # feeding is gated during a worker-side rebuild (see _flush);
            # park the reader here so the buffer stays bounded until the
            # worker's ``_restored`` (or a failure) wakes it
            entry.credit.clear()
            await entry.credit.wait()
        self._flush(key, entry)
        if not entry.buffer or len(entry.buffer) < self.config.batch:
            return
        # buffer is at the batch threshold and credits are exhausted
        if self.config.policy == "pause":
            _PAUSES.inc()
            while state.credits <= 0 and entry.error is None:
                entry.credit.clear()
                await entry.credit.wait()
            self._flush(key, entry, force=True)
        elif self.config.policy == "shed":
            self._flush(key, entry, force=True)  # trips + sheds the tail
        else:  # disconnect
            state.tripped = True
            _DISCONNECTS.inc()
            dropped = len(entry.buffer)
            state.shed += dropped
            entry.buffer.clear()
            _SHED.inc(dropped)
            self._publish(entry, event_error(
                state.tenant, state.session, state.acked, "slow-consumer",
                f"stream outran detection by more than "
                f"{state.quota.max_buffered_events} buffered event(s); "
                f"disconnecting (verdict will cover the applied prefix)",
            ))
            raise _Disconnect()

    async def _serve_subscriber(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                tenant: str) -> None:
        def push(event: Dict[str, Any]) -> None:
            with contextlib.suppress(Exception):
                writer.write((dumps_event(event) + "\n").encode())

        self.registry.subscribe(tenant, push)
        try:
            while True:  # subscribers only ever half-close
                raw = await reader.readline()
                if raw == b"":
                    break
        finally:
            self.registry.unsubscribe(tenant, push)
            with contextlib.suppress(Exception):
                writer.close()

    # -- file-tail mode ------------------------------------------------------

    async def tail_file(self, path: str, tenant: str, session: str,
                        predicate: str, *, follow: bool = False,
                        poll_interval: float = 0.2, push=None,
                        stop: Optional[asyncio.Event] = None,
                        retry=None) -> Optional[Dict[str, Any]]:
        """Follow a ``repro-events/1`` file on disk as a server-side session.

        Reads complete lines only; a truncated final line (the writer is
        mid-record) is retried in ``follow`` mode and reported as a
        ``malformed`` error otherwise.  Returns the final verdict event,
        or ``None`` when the session failed.  Verdict events reach
        ``push`` and any subscribers of ``tenant``.

        Transient source trouble -- the file not existing yet, vanishing
        mid-tail, or a read error -- is retried with ``retry`` (a
        :class:`~repro.serve.client.Backoff`; bounded exponential with
        jitter, default budget 10 attempts) rather than a fixed sleep.
        A source that stays gone past the budget fails the session with
        a typed ``source-lost`` error event (so ``repro tail`` exits 3
        instead of dumping a traceback); any successful read resets the
        budget.
        """
        from repro.serve.client import Backoff

        entry = self._admit(tenant, session, writer=None, push=push)
        key = entry.state.key
        opened = False
        lineno = 0
        retry = retry or Backoff(base=poll_interval, max_retries=10)

        def stopped() -> bool:
            return stop is not None and stop.is_set()

        def source_lost(exc: Optional[BaseException]) -> None:
            self._publish(entry, event_error(
                tenant, session, entry.state.acked, "source-lost",
                f"stream source {path!r} is gone and stayed gone for "
                f"{retry.attempts} retries"
                + (f" ({exc})" if exc is not None else ""),
            ))
            self._close_entry(key, entry)

        fh = None
        while fh is None:
            try:
                fh = open(path)
            except OSError as exc:
                delay = retry.next_delay() if follow and not stopped() else None
                if delay is None:
                    source_lost(exc)
                    return None
                await asyncio.sleep(delay)
        with fh:
            while True:
                pos = fh.tell()
                try:
                    raw = fh.readline()
                except OSError as exc:
                    delay = retry.next_delay()
                    if delay is None:
                        source_lost(exc)
                        return None
                    await asyncio.sleep(delay)
                    fh.seek(pos)
                    continue
                if raw == "":
                    if follow and not stopped():
                        if os.path.exists(path):
                            retry.reset()
                            await asyncio.sleep(poll_interval)
                        else:
                            # the source vanished beneath us; give it a
                            # backoff window to reappear (e.g. a rotate)
                            delay = retry.next_delay()
                            if delay is None:
                                source_lost(None)
                                return None
                            await asyncio.sleep(delay)
                        continue
                    break
                if not raw.endswith("\n"):
                    if follow and not stopped():
                        # the writer is mid-append; re-read the line later
                        fh.seek(pos)
                        await asyncio.sleep(poll_interval)
                        continue
                    # end of input without a newline: accept valid JSON,
                    # surface genuine truncation as the typed error
                    try:
                        json.loads(raw)
                    except json.JSONDecodeError as exc:
                        err = TruncatedStreamError(
                            f"{path}:{lineno + 1}: truncated record at end "
                            f"of stream ({exc})", lineno=lineno + 1,
                        )
                        self._publish(entry, event_error(
                            tenant, session, entry.state.acked, "malformed",
                            str(err), where=f"{path}:{lineno + 1}",
                        ))
                        self._close_entry(key, entry)
                        return None
                lineno += 1
                line = raw.strip()
                if not line:
                    continue
                if not opened:
                    try:
                        header = json.loads(line)
                    except json.JSONDecodeError as exc:
                        self._publish(entry, event_error(
                            tenant, session, 0, "malformed",
                            f"bad stream header ({exc})",
                            where=f"{path}:{lineno}",
                        ))
                        self._close_entry(key, entry)
                        return None
                    self.pool.open_session(key, tenant, session, header,
                                           predicate,
                                           self._session_opts(tenant))
                    opened = True
                    continue
                entry.lineno = lineno
                entry.buffer.append(line)
                self._flush(key, entry)
                while entry.state.credits <= 0 and entry.error is None:
                    entry.credit.clear()  # tail mode always pauses
                    await entry.credit.wait()
                if entry.error is not None:
                    break
        await self._drain_buffer(key, entry)
        final = None
        if entry.error is None and opened:
            self._finalize(key, entry)
            with contextlib.suppress(asyncio.TimeoutError):
                final = await asyncio.wait_for(
                    asyncio.shield(entry.final),
                    timeout=self.config.drain_timeout,
                )
        self._publish(entry, event_closed(tenant, session, entry.state.acked))
        self._close_entry(key, entry)
        return final


class _Disconnect(Exception):
    """Internal: the disconnect policy cut a stream connection."""


async def _drain_close(writer: asyncio.StreamWriter) -> None:
    with contextlib.suppress(Exception):
        await writer.drain()
        writer.close()


async def run_server(config: ServeConfig,
                     stop: Optional[asyncio.Event] = None
                     ) -> Dict[str, Any]:
    """Start a server, run until ``stop`` is set (or forever), then drain."""
    server = ReproServer(config)
    await server.start()
    try:
        if stop is None:
            stop = asyncio.Event()
        await stop.wait()
    finally:
        stats = await server.drain()
    return stats
