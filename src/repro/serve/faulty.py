"""Transport-level fault injection for the durable serve protocol.

:class:`FaultyTransport` sits between :func:`stream_events_durable` and
the socket: every outgoing wire line passes through :meth:`send`, which
-- driven by a seeded RNG and a :class:`~repro.faults.plan.ChannelFaultSpec`
(the same declarative shape the simulator's fault plans use) -- may drop
the line, duplicate it, swap it with its neighbour, or cut the whole
connection.  The durable protocol is designed so none of this can corrupt
a session: duplicates are deduplicated by sequence number, gaps (from
drops and reorders) park the session and heal on the next resume, and
cuts exercise the reconnect path end to end.

The chaos tests assert the strongest property this enables: the verdict
events collected through an arbitrarily faulty transport are
**byte-identical** to an uninterrupted run's.

Determinism: all decisions come from one ``random.Random(seed)`` drawn in
send order, so a failing chaos schedule replays exactly from its seed.
``max_faults`` bounds the total number of injected faults (after which
the transport behaves perfectly) so every test run terminates.
"""

from __future__ import annotations

import asyncio
from random import Random
from typing import Iterable, Optional

from repro.faults.plan import ChannelFaultSpec
from repro.obs.metrics import METRICS

__all__ = ["FaultyTransport"]

_INJECTED = METRICS.counter("serve.faulty.injected")


class FaultyTransport:
    """Chaos wrapper around a durable stream's outgoing wire lines.

    Parameters
    ----------
    spec:
        Per-line fault probabilities.  ``drop_rate``, ``duplicate_rate``
        and ``reorder_rate`` apply (a reordered line swaps places with
        the next one); delay spikes are meaningless on a local stream
        writer and are ignored.
    seed:
        Seed for the fault-decision RNG.
    cut_after:
        Absolute send counts (1-based, across all connections) at which
        to sever the connection -- a deterministic cut schedule.
    cut_rate:
        Additional per-line probability of severing the connection.
    max_faults:
        Total fault budget; once spent the transport is transparent,
        guaranteeing the stream eventually completes.  ``None`` = no cap.
    """

    def __init__(self, spec: Optional[ChannelFaultSpec] = None, *,
                 seed: int = 0, cut_after: Iterable[int] = (),
                 cut_rate: float = 0.0,
                 max_faults: Optional[int] = None):
        self.spec = spec or ChannelFaultSpec()
        self.cut_schedule = frozenset(int(n) for n in cut_after)
        self.cut_rate = float(cut_rate)
        self.max_faults = max_faults
        self._rng = Random(seed)
        self._held: Optional[str] = None  # line delayed by a reorder
        # observability for assertions ("the test actually injected")
        self.sends = 0
        self.connections = 0
        self.drops = 0
        self.dups = 0
        self.reorders = 0
        self.cuts = 0

    @property
    def faults(self) -> int:
        return self.drops + self.dups + self.reorders + self.cuts

    def _armed(self) -> bool:
        return self.max_faults is None or self.faults < self.max_faults

    def new_connection(self) -> None:
        """The client opened a fresh connection: held lines died with the
        old socket."""
        self.connections += 1
        self._held = None

    async def send(self, writer: asyncio.StreamWriter, line: str) -> None:
        """Forward ``line`` (or mangle it).  Raises ``ConnectionResetError``
        when a scheduled or random cut fires, after aborting the socket."""
        self.sends += 1
        cut = self.cut_schedule and self.sends in self.cut_schedule
        if self._armed():
            if not cut and self.cut_rate:
                cut = self._rng.random() < self.cut_rate
            if cut:
                self.cuts += 1
                _INJECTED.inc()
                self._held = None
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                raise ConnectionResetError("faulty transport: connection cut")
            if self._rng.random() < self.spec.drop_rate:
                self.drops += 1
                _INJECTED.inc()
                return
            if self._held is None and (
                    self._rng.random() < self.spec.reorder_rate):
                self.reorders += 1
                _INJECTED.inc()
                self._held = line  # goes out *after* the next line
                return
            if self._rng.random() < self.spec.duplicate_rate:
                self.dups += 1
                _INJECTED.inc()
                writer.write((line + "\n").encode())
        writer.write((line + "\n").encode())
        if self._held is not None:
            held, self._held = self._held, None
            writer.write((held + "\n").encode())

    def describe(self) -> str:
        return (f"FaultyTransport(sends={self.sends}, "
                f"connections={self.connections}, drops={self.drops}, "
                f"dups={self.dups}, reorders={self.reorders}, "
                f"cuts={self.cuts})")
