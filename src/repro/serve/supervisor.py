"""Worker supervision: keep the CPU plane alive under shard crashes.

The sharded :class:`~repro.serve.workers.ProcessPool` gives each shard
its own process; a shard dying (clean exit, ``kill -9``, a wedged loop)
previously took every pinned session's :class:`TraceStore` + detector
with it.  The supervisor closes that hole:

* **Detection.**  Every ``heartbeat_interval`` the supervisor pings each
  shard and checks ``Process.is_alive()``.  A dead process is detected
  within one beat; a live-but-unresponsive process (no pong for
  ``heartbeat_timeout`` while feeds are pending) is declared hung and
  terminated.
* **Restart.**  Dead shards restart with exponential backoff plus
  jitter (``restart_backoff * 2**attempt``, capped, ±25%), so a shard
  that dies on arrival cannot hot-loop the parent.
* **Replay.**  After a restart, every *durable* session owned by the
  shard is rebuilt from its last checkpoint plus the WAL tail
  (the server logs lines before forwarding them, so the WAL covers
  everything the dead worker may have applied -- including batches that
  died in its input queue).  Replay regenerates the session's public
  events deterministically; events the server already published are
  suppressed by count, so surviving subscribers and parked clients see
  no duplicates and the total event sequence stays byte-identical to an
  uninterrupted run.  Non-durable sessions cannot be replayed and fail
  with a ``worker-crash`` error event covering the applied prefix.
* **Re-pinning.**  A shard that exhausts ``restart_budget`` restarts
  inside ``budget_window`` seconds is declared beyond saving: its
  sessions are re-pinned to the healthiest surviving shard (fewest
  sessions) and replayed there, and the dead shard is abandoned.

The supervisor is an asyncio task on the server's loop; all its session
bookkeeping runs on the loop thread, so it needs no locks (same
single-writer discipline as the rest of the control plane).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.metrics import METRICS
from repro.serve.durability import WalCorruptError
from repro.serve.protocol import event_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.server import ReproServer

__all__ = ["WorkerSupervisor"]

_DEAD = METRICS.counter("serve.supervisor.dead_workers")
_HUNG = METRICS.counter("serve.supervisor.hung_workers")
_REPINNED = METRICS.counter("serve.supervisor.repinned_sessions")
_LOST = METRICS.counter("serve.supervisor.lost_sessions")


class WorkerSupervisor:
    """Watches the worker pool and heals it (see module docstring)."""

    def __init__(self, server: "ReproServer"):
        self.server = server
        cfg = server.config
        self.heartbeat_interval = cfg.heartbeat_interval
        self.heartbeat_timeout = cfg.heartbeat_timeout
        self.restart_budget = cfg.restart_budget
        self.backoff_base = cfg.restart_backoff
        self.backoff_max = cfg.restart_backoff_max
        #: restarts per shard inside the current budget window
        self.restarts: Dict[int, int] = {}
        self._window_start: Dict[int, float] = {}
        self.budget_window = 60.0
        #: shards declared beyond saving (budget exhausted)
        self.abandoned: set = set()
        self._rng = random.Random(0xC0FFEE)
        self._started = 0.0

    # -- the watch loop ------------------------------------------------------

    async def run(self) -> None:
        pool = self.server.pool
        self._started = time.monotonic()
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            for idx in range(pool.workers):
                if idx in self.abandoned:
                    continue
                if not pool.worker_alive(idx):
                    _DEAD.inc()
                    await self._recover_shard(idx, reason="dead")
                elif self._hung(idx):
                    _HUNG.inc()
                    await self._recover_shard(idx, reason="hung")
            for idx in range(pool.workers):
                if idx not in self.abandoned:
                    pool.ping(idx)

    def _hung(self, idx: int) -> bool:
        """A live process that stopped answering pings for the timeout."""
        now = time.monotonic()
        if now - self._started < self.heartbeat_timeout:
            return False  # give the pool time to answer its first pings
        return now - self.server.pool.last_pong(idx) > self.heartbeat_timeout

    # -- recovery ------------------------------------------------------------

    def _owned_keys(self, idx: int) -> List[str]:
        return [key for key, entry in self.server._entries.items()
                if entry.state.shard == idx]

    def _pick_target(self, avoid: int) -> Optional[int]:
        """The healthiest surviving shard (fewest sessions), or ``None``."""
        pool = self.server.pool
        counts: Dict[int, int] = {
            i: 0 for i in range(pool.workers)
            if i != avoid and i not in self.abandoned
        }
        if not counts:
            return None
        for entry in self.server._entries.values():
            if entry.state.shard in counts:
                counts[entry.state.shard] += 1
        return min(counts, key=lambda i: (counts[i], i))

    async def _recover_shard(self, idx: int, reason: str) -> None:
        now = time.monotonic()
        if now - self._window_start.get(idx, 0.0) > self.budget_window:
            self._window_start[idx] = now
            self.restarts[idx] = 0
        self.restarts[idx] = self.restarts.get(idx, 0) + 1
        attempt = self.restarts[idx]
        target = idx
        if attempt > self.restart_budget:
            # beyond saving: move its sessions somewhere healthy
            self.abandoned.add(idx)
            target = self._pick_target(avoid=idx)
        else:
            delay = min(self.backoff_base * (2 ** (attempt - 1)),
                        self.backoff_max)
            delay *= 1.0 + 0.25 * (2.0 * self._rng.random() - 1.0)
            await asyncio.sleep(delay)
            self.server.pool.restart_worker(idx)
        for key in self._owned_keys(idx):
            self._recover_session(key, target, reason)

    def _recover_session(self, key: str, target: Optional[int],
                         reason: str) -> None:
        server = self.server
        entry = server._entries.get(key)
        if entry is None:
            return
        state = entry.state
        if not entry.durable or entry.dur is None or not entry.opened:
            # nothing on disk to replay from: the session is lost
            _LOST.inc()
            ev = event_error(
                state.tenant, state.session, state.acked, "worker-crash",
                f"detection worker {reason}; session state was not durable "
                f"(start the server with --durable to survive this)",
            )
            entry.error = ev
            server._publish(entry, ev)
            entry.credit.set()
            return
        if target is None:
            _LOST.inc()
            ev = event_error(
                state.tenant, state.session, state.acked, "worker-crash",
                "no surviving worker shard to move the session to",
            )
            entry.error = ev
            server._publish(entry, ev)
            entry.credit.set()
            return
        if target != state.shard:
            server.pool.pin(key, target)
            state.shard = target
            _REPINNED.inc()
        # replay from disk: flush the WAL's userspace buffer first so the
        # read-back below sees every line the server ever forwarded
        entry.dur.wal.flush()
        try:
            rec = server.durability.recover_session(entry.dur.directory)
        except WalCorruptError:
            # damage at rest mid-file: fail the one session with a typed
            # error below instead of killing the supervisor task (which
            # would leave every OTHER shard unwatched)
            rec = None
        if rec is None:
            _LOST.inc()
            ev = event_error(
                state.tenant, state.session, state.acked, "worker-crash",
                "durable state unreadable after worker crash",
            )
            entry.error = ev
            server._publish(entry, ev)
            entry.credit.set()
            return
        entry.restoring = True
        server.pool.restore(
            key, state.tenant, state.session, entry.header,
            entry.predicate, entry.opts,
            rec.checkpoint.snapshot if rec.checkpoint else None,
            [line for _, line in rec.records],
            len(entry.events_log),
        )
        # feeds that died in the old worker's queue were replayed from the
        # WAL; a finalize that died with them must be re-issued
        if entry.finalizing and not entry.final.done():
            entry.finalizing = False
            server._finalize(key, entry)
