"""Client side of ``repro-serve/1``: dial, stream, subscribe.

Three thin async helpers over the wire protocol documented in
:mod:`repro.serve.server`, plus the ``host:port`` / ``unix:PATH``
connect-string parser shared by ``repro serve`` and ``repro tail``.
Tests, the E16 benchmark, and the CI smoke script all drive servers
through these helpers so the protocol has exactly one client
implementation.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.protocol import dumps_event
from repro.serve.server import SERVE_FORMAT, _LINE_LIMIT

__all__ = [
    "parse_connect",
    "open_connection",
    "stream_events",
    "subscribe",
]


def parse_connect(connect: str) -> Tuple[str, Any]:
    """``"host:port"`` -> ``("tcp", (host, port))``;
    ``"unix:/path"`` -> ``("unix", "/path")``."""
    if connect.startswith("unix:"):
        path = connect[len("unix:"):]
        if not path:
            raise ValueError("unix: connect string needs a socket path")
        return ("unix", path)
    host, sep, port = connect.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"connect string {connect!r} is neither 'host:port' nor 'unix:PATH'"
        )
    return ("tcp", (host or "127.0.0.1", int(port)))


async def open_connection(
    connect: str,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    kind, target = parse_connect(connect)
    if kind == "unix":
        return await asyncio.open_unix_connection(target, limit=_LINE_LIMIT)
    host, port = target
    return await asyncio.open_connection(host, port, limit=_LINE_LIMIT)


def _hello(t: str, **fields: Any) -> bytes:
    hello = {"format": SERVE_FORMAT, "t": t}
    hello.update(fields)
    return (dumps_event(hello) + "\n").encode()


async def stream_events(
    connect: str,
    tenant: str,
    session: str,
    predicate: str,
    lines: Sequence[str],
    *,
    timeout: float = 60.0,
    chunk: int = 256,
) -> List[Dict[str, Any]]:
    """Stream a whole ``repro-events/1`` document (header line first) to a
    server and collect every verdict event until ``closed`` / EOF.

    The stream side half-closes after the last record, which is the
    protocol's end-of-stream signal; verdicts keep flowing back on the
    same socket.  Writes pause on the transport's own flow control
    (``drain``), so a paused server session propagates backpressure all
    the way into this coroutine.
    """
    reader, writer = await open_connection(connect)
    events: List[Dict[str, Any]] = []

    async def pump() -> None:
        writer.write(_hello("hello", tenant=tenant, session=session,
                            predicate=predicate))
        for start in range(0, len(lines), chunk):
            payload = "".join(
                line.rstrip("\n") + "\n"
                for line in lines[start:start + chunk]
            )
            writer.write(payload.encode())
            await writer.drain()
        writer.write_eof()

    pump_task = asyncio.ensure_future(pump())
    try:
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if raw == b"":
                break
            events.append(json.loads(raw.decode()))
            # read until the server's last word (after an error the server
            # still closes the socket, so EOF ends the loop either way)
            if events[-1].get("e") == "closed":
                break
    finally:
        pump_task.cancel()
        await asyncio.gather(pump_task, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
    return events


async def subscribe(
    connect: str,
    tenant: str,
    on_event: Callable[[Dict[str, Any]], Any],
    *,
    stop: Optional[asyncio.Event] = None,
    timeout: float = 0.5,
) -> int:
    """Attach as a read-only subscriber and feed every pushed verdict
    event to ``on_event`` until ``stop`` is set or the server goes away.
    Returns the number of events received.  ``on_event`` may return a
    truthy value to stop early."""
    reader, writer = await open_connection(connect)
    count = 0
    try:
        writer.write(_hello("subscribe", tenant=tenant))
        await writer.drain()
        while stop is None or not stop.is_set():
            try:
                raw = await asyncio.wait_for(reader.readline(), timeout)
            except asyncio.TimeoutError:
                continue
            if raw == b"":
                break
            count += 1
            if on_event(json.loads(raw.decode())):
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
    return count
