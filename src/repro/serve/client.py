"""Client side of ``repro-serve/1``: dial, stream, subscribe, resume.

Thin async helpers over the wire protocol documented in
:mod:`repro.serve.server`, plus the ``host:port`` / ``unix:PATH``
connect-string parser shared by ``repro serve`` and ``repro tail``.
Tests, the E16/E17 benchmarks, and the CI smoke scripts all drive
servers through these helpers so the protocol has exactly one client
implementation.

:func:`stream_events_durable` is the crash-safe producer: it speaks the
framed durable protocol (hello ``durable: true``, per-record sequence
numbers, an explicit end-of-stream marker) and survives any number of
connection losses by reconnecting with bounded exponential backoff and
retransmitting only the suffix the server has not yet made durable.
The verdict events it returns are byte-identical to what an
uninterrupted :func:`stream_events` run would have collected -- the
server replays missed events from its log and never duplicates one.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serve.protocol import dumps_event
from repro.serve.server import SERVE_FORMAT, _LINE_LIMIT

__all__ = [
    "parse_connect",
    "open_connection",
    "stream_events",
    "stream_events_durable",
    "subscribe",
    "Backoff",
    "StreamLostError",
]


class StreamLostError(ReproError):
    """A durable stream ran out of reconnect budget."""


class Backoff:
    """Bounded exponential backoff with jitter for retry loops.

    ``next_delay()`` returns the next sleep (``base * factor**attempt``,
    capped at ``max_delay``, stretched ±``jitter``), or ``None`` once
    ``max_retries`` attempts are spent.  ``reset()`` on success so a
    long-lived loop only pays for *consecutive* failures.  Shared by the
    durable stream client, ``repro tail --follow``, and the subscriber
    reconnect path.
    """

    def __init__(self, base: float = 0.05, factor: float = 2.0,
                 max_delay: float = 2.0, jitter: float = 0.25,
                 max_retries: Optional[int] = 10, seed: Optional[int] = None):
        if base <= 0 or factor < 1.0 or not (0.0 <= jitter < 1.0):
            raise ValueError("backoff needs base > 0, factor >= 1, "
                             "jitter in [0, 1)")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_retries = max_retries
        self.attempts = 0
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self.attempts = 0

    def next_delay(self) -> Optional[float]:
        if self.max_retries is not None and self.attempts >= self.max_retries:
            return None
        delay = min(self.base * (self.factor ** self.attempts),
                    self.max_delay)
        self.attempts += 1
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay


def parse_connect(connect: str) -> Tuple[str, Any]:
    """``"host:port"`` -> ``("tcp", (host, port))``;
    ``"unix:/path"`` -> ``("unix", "/path")``."""
    if connect.startswith("unix:"):
        path = connect[len("unix:"):]
        if not path:
            raise ValueError("unix: connect string needs a socket path")
        return ("unix", path)
    host, sep, port = connect.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"connect string {connect!r} is neither 'host:port' nor 'unix:PATH'"
        )
    return ("tcp", (host or "127.0.0.1", int(port)))


async def open_connection(
    connect: str,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    kind, target = parse_connect(connect)
    if kind == "unix":
        return await asyncio.open_unix_connection(target, limit=_LINE_LIMIT)
    host, port = target
    return await asyncio.open_connection(host, port, limit=_LINE_LIMIT)


def _hello(t: str, **fields: Any) -> bytes:
    hello = {"format": SERVE_FORMAT, "t": t}
    hello.update(fields)
    return (dumps_event(hello) + "\n").encode()


async def stream_events(
    connect: str,
    tenant: str,
    session: str,
    predicate: str,
    lines: Sequence[str],
    *,
    timeout: float = 60.0,
    chunk: int = 256,
) -> List[Dict[str, Any]]:
    """Stream a whole ``repro-events/1`` document (header line first) to a
    server and collect every verdict event until ``closed`` / EOF.

    The stream side half-closes after the last record, which is the
    protocol's end-of-stream signal; verdicts keep flowing back on the
    same socket.  Writes pause on the transport's own flow control
    (``drain``), so a paused server session propagates backpressure all
    the way into this coroutine.
    """
    reader, writer = await open_connection(connect)
    events: List[Dict[str, Any]] = []

    async def pump() -> None:
        writer.write(_hello("hello", tenant=tenant, session=session,
                            predicate=predicate))
        for start in range(0, len(lines), chunk):
            payload = "".join(
                line.rstrip("\n") + "\n"
                for line in lines[start:start + chunk]
            )
            writer.write(payload.encode())
            await writer.drain()
        writer.write_eof()

    pump_task = asyncio.ensure_future(pump())
    try:
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if raw == b"":
                break
            events.append(json.loads(raw.decode()))
            # read until the server's last word (after an error the server
            # still closes the socket, so EOF ends the loop either way)
            if events[-1].get("e") == "closed":
                break
    finally:
        pump_task.cancel()
        await asyncio.gather(pump_task, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
    return events


async def stream_events_durable(
    connect: str,
    tenant: str,
    session: str,
    predicate: str,
    lines: Sequence[str],
    *,
    timeout: float = 60.0,
    backoff: Optional[Backoff] = None,
    transport=None,
) -> List[Dict[str, Any]]:
    """Stream a ``repro-events/1`` document over the durable protocol,
    surviving connection loss by resuming from the server's watermark.

    ``lines[0]`` must be the stream header.  ``transport``, if given, is
    a :class:`~repro.serve.faulty.FaultyTransport`-style object whose
    ``send(writer, line)`` coroutine forwards (or mangles) each outgoing
    wire line -- the chaos harness's injection point.  Raises
    :class:`StreamLostError` when the reconnect budget is spent; the
    budget counts *consecutive no-progress* failures only (an attempt
    that advanced the server's durable watermark or collected new events
    resets it), so a stream that keeps moving survives any number of
    connection losses.
    """
    bo = backoff or Backoff()
    events: List[Dict[str, Any]] = []
    records = [l.rstrip("\n") for l in lines[1:] if l.strip()]
    header_line = lines[0].rstrip("\n")
    #: (durable watermark, events collected) high-water mark across
    #: attempts -- an attempt that beats it earns a backoff reset, so the
    #: budget only counts *consecutive* failures that made no progress
    progress = (-1, -1)

    async def send(writer: asyncio.StreamWriter, line: str) -> None:
        if transport is not None:
            await transport.send(writer, line)
        else:
            writer.write((line + "\n").encode())

    while True:
        try:
            reader, writer = await open_connection(connect)
        except (ConnectionError, OSError) as exc:
            delay = bo.next_delay()
            if delay is None:
                raise StreamLostError(
                    f"durable stream {tenant}/{session}: server unreachable "
                    f"after {bo.attempts} attempt(s): {exc}"
                )
            await asyncio.sleep(delay)
            continue
        if transport is not None:
            transport.new_connection()
        done, watermark = await _durable_attempt(
            reader, writer, tenant, session, predicate,
            header_line, records, events, send, timeout,
        )
        if done:
            return events
        marker = (watermark, len(events))
        if marker > progress:
            progress = marker
            bo.reset()
        delay = bo.next_delay()
        if delay is None:
            raise StreamLostError(
                f"durable stream {tenant}/{session}: gave up after "
                f"{bo.attempts} reconnect(s) ({len(events)} event(s) so far)"
            )
        await asyncio.sleep(delay)


async def _durable_attempt(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    tenant: str,
    session: str,
    predicate: str,
    header_line: str,
    records: Sequence[str],
    events: List[Dict[str, Any]],
    send,
    timeout: float,
) -> Tuple[bool, int]:
    """One connection's worth of the durable protocol; returns
    ``(done, watermark)`` where ``done`` means the final verdict landed
    (the stream is complete) and ``watermark`` is the highest durable
    seq the server reported this attempt (``-1`` before the handshake)
    -- the caller's progress signal for resetting its backoff."""
    pump_task: Optional[asyncio.Future] = None
    watermark = -1
    try:
        writer.write(_hello("hello", tenant=tenant, session=session,
                            predicate=predicate, durable=True,
                            have_events=len(events)))
        await writer.drain()
        raw = await asyncio.wait_for(reader.readline(), timeout)
        first = json.loads(raw.decode()) if raw else None
        if not isinstance(first, dict) or first.get("e") != "_resume":
            if isinstance(first, dict) and first.get("e") == "error":
                events.append(first)
                return True, watermark  # refused outright: final
            return False, watermark
        start = int(first.get("seq", 0))
        watermark = start
        # If the server finished and closed the session but the closing
        # events never reached us, a reconnect lands on a *fresh* session
        # that deterministically regenerates the whole event stream; the
        # server's log length tells us how many incoming events are ones
        # we already collected and must skip to stay duplicate-free.
        skip = max(0, len(events) - int(first.get("events", 0)))

        async def pump() -> None:
            if start == 0:
                await send(writer, json.dumps(
                    {"t": "hdr", "line": header_line},
                    separators=(",", ":"),
                ))
            for i in range(start, len(records)):
                await send(writer, json.dumps(
                    {"t": "rec", "q": i + 1, "line": records[i]},
                    separators=(",", ":"),
                ))
                if (i - start) % 64 == 63:
                    await writer.drain()
            await send(writer, json.dumps({"t": "end"},
                                          separators=(",", ":")))
            await writer.drain()

        pump_task = asyncio.ensure_future(pump())
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if raw == b"":
                return False, watermark  # server went away: resume
            ev = json.loads(raw.decode())
            kind = ev.get("e", "")
            if kind.startswith("_"):
                if kind == "_durable":
                    watermark = max(watermark, int(ev.get("seq", 0)))
                continue  # in-band acks and friends
            if kind == "closed":
                return True, watermark
            if skip > 0:
                skip -= 1
                continue
            events.append(ev)
            if kind in ("final", "error"):
                return True, watermark  # terminal: don't risk 'closed'
    except (ConnectionError, OSError, asyncio.TimeoutError,
            json.JSONDecodeError, UnicodeDecodeError):
        return False, watermark
    finally:
        if pump_task is not None:
            pump_task.cancel()
            await asyncio.gather(pump_task, return_exceptions=True)
        with _suppress_conn_errors():
            writer.close()
            await writer.wait_closed()


class _suppress_conn_errors:
    """``async with``-free helper: swallow teardown socket errors."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, BrokenPipeError, OSError)
        )


async def subscribe(
    connect: str,
    tenant: str,
    on_event: Callable[[Dict[str, Any]], Any],
    *,
    stop: Optional[asyncio.Event] = None,
    timeout: float = 0.5,
) -> int:
    """Attach as a read-only subscriber and feed every pushed verdict
    event to ``on_event`` until ``stop`` is set or the server goes away.
    Returns the number of events received.  ``on_event`` may return a
    truthy value to stop early."""
    reader, writer = await open_connection(connect)
    count = 0
    try:
        writer.write(_hello("subscribe", tenant=tenant))
        await writer.drain()
        while stop is None or not stop.is_set():
            try:
                raw = await asyncio.wait_for(reader.readline(), timeout)
            except asyncio.TimeoutError:
                continue
            if raw == b"":
                break
            count += 1
            if on_event(json.loads(raw.decode())):
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
    return count
