"""Sharded detection workers: the CPU plane of ``repro serve``.

Structure (after the Chauhan-Garg-Natarajan-Mittal distributed
abstraction for online detection): instead of funneling every tenant's
events through one checker, sessions are **pinned to shards** by a stable
hash of their key, and each shard advances its own sessions completely
independently -- separate :class:`~repro.store.TraceStore`, separate
incremental detector, separate Python process.  Nothing is shared between
shards but the output queue, so per-stream detection work parallelizes
across cores and one tenant's pathological stream cannot stall another
shard.

Two pool flavours behind one synchronous, thread-safe interface:

* :class:`InlinePool` (``workers=0``) runs sessions in the calling
  process -- zero IPC, the single-stream ``repro watch`` cost model;
  used by tests, small deployments, and as the E16 baseline.
* :class:`ProcessPool` (``workers>=1``) runs each shard in a
  ``multiprocessing`` worker.  Records travel as raw line batches (the
  parent never JSON-parses them); verdict events and flow-control acks
  travel back over a shared queue drained by one thread that hands them
  to the pool's *sink* callback.

The sink contract: ``sink(key, events)`` may be called from a drain
thread (process pool) or synchronously inside ``feed`` (inline pool);
the server normalises both through ``loop.call_soon_threadsafe``.
Workers acknowledge every *line* they were fed (``_ack`` events), which
is what the server's credit-based backpressure spends and replenishes.
"""

from __future__ import annotations

import multiprocessing
import queue
import signal
import threading
import time
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import METRICS
from repro.serve.protocol import (
    ack_event,
    ckpt_event,
    event_error,
    restored_event,
)
from repro.serve.session import DetectionSession

__all__ = ["DetectorPool", "InlinePool", "ProcessPool", "make_pool"]

Sink = Callable[[str, List[Dict[str, Any]]], None]

_RECORDS = METRICS.counter("serve.records_in")
_VERDICTS = METRICS.counter("serve.verdicts_out")
_BATCHES = METRICS.counter("serve.worker_batches")
_RESTARTS = METRICS.counter("serve.worker_restarts")
_RESTORES = METRICS.counter("serve.session_restores")


def shard_of(key: str, shards: int) -> int:
    """Stable session-to-shard pinning (order- and process-independent)."""
    if shards <= 1:
        return 0
    return zlib.crc32(key.encode("utf-8")) % shards


def _open_session(sessions: Dict[str, DetectionSession], key: str,
                  tenant: str, session: str, header: Dict[str, Any],
                  predicate: str, opts: Dict[str, Any]
                  ) -> List[Dict[str, Any]]:
    try:
        sess = DetectionSession(
            tenant, session, header, predicate,
            max_store_states=opts.get("max_store_states", 0),
            delay_per_record=opts.get("delay_per_record", 0.0),
            engine=opts.get("engine", "auto"),
            store_dir=opts.get("store_dir"),
            lint=opts.get("lint", False),
        )
    except Exception as exc:
        return [event_error(tenant, session, 0, "protocol", str(exc))]
    sessions[key] = sess
    return sess.open_events()


def _feed_session(sessions: Dict[str, DetectionSession], key: str,
                  lines: List[str], base_lineno: Optional[int]
                  ) -> List[Dict[str, Any]]:
    sess = sessions.get(key)
    events: List[Dict[str, Any]] = []
    if sess is not None:
        try:
            events = sess.feed(lines, base_lineno)
        except Exception as exc:  # a session bug must not sink the shard
            sess.failed = True
            events = [event_error(sess.tenant, sess.session, sess.seq,
                                  "internal", repr(exc))]
        _RECORDS.inc(len(lines))
        _VERDICTS.inc(sum(ev.get("e") == "witness" for ev in events))
    _BATCHES.inc()
    # Every line is acknowledged even for failed/unknown sessions: acks
    # are flow-control credits, and stuck credits would wedge the stream.
    events.append(ack_event(key, len(lines), sess.seq if sess else 0))
    return events


def _finalize_session(sessions: Dict[str, DetectionSession], key: str,
                      shed: int, with_definitely: bool
                      ) -> List[Dict[str, Any]]:
    sess = sessions.pop(key, None)
    if sess is None:
        return []
    try:
        return sess.finalize(shed=shed, with_definitely=with_definitely)
    except Exception as exc:
        return [event_error(sess.tenant, sess.session, sess.seq,
                            "internal", repr(exc))]
    finally:
        try:
            sess.close()
        except Exception:  # closing storage must never mask the verdict
            pass


def _checkpoint_session(sessions: Dict[str, DetectionSession], key: str,
                        upto: int) -> List[Dict[str, Any]]:
    """Snapshot ``key`` for the durability layer.

    ``upto`` is the server's forwarded-line count when it enqueued the
    op; the shard queue is FIFO, so by the time this runs the session
    has applied exactly those lines and the snapshot covers them.
    """
    sess = sessions.get(key)
    if sess is None or sess.failed:
        return []
    try:
        return [ckpt_event(key, upto, sess.snapshot())]
    except Exception as exc:  # never let a snapshot bug kill the stream
        return [event_error(sess.tenant, sess.session, sess.seq,
                            "internal", f"checkpoint failed: {exc!r}")]


def _restore_session(sessions: Dict[str, DetectionSession], key: str,
                     tenant: str, session: str, header: Dict[str, Any],
                     predicate: str, opts: Dict[str, Any],
                     snapshot: Optional[Dict[str, Any]],
                     tail: List[str], published: int
                     ) -> List[Dict[str, Any]]:
    """Rebuild ``key`` from ``snapshot`` (may be ``None``: no checkpoint
    survived) and replay the WAL ``tail`` lines.

    Replay regenerates the session's public events deterministically;
    only events past index ``published`` (what the server already pushed
    to clients before the crash) are returned for publication, so a
    worker crash never duplicates an event on a surviving connection.
    """
    kwargs = dict(
        max_store_states=opts.get("max_store_states", 0),
        delay_per_record=opts.get("delay_per_record", 0.0),
        engine=opts.get("engine", "auto"),
        lint=opts.get("lint", False),
    )
    try:
        if snapshot is not None:
            # restore() reopens a durable chain via the checkpoint's
            # store_ref itself; store_dir must not be passed or the
            # constructor would wipe the database being restored.
            sess = DetectionSession.restore(tenant, session, header,
                                            predicate, snapshot, **kwargs)
        else:
            # No checkpoint survived: full rebuild from the WAL tail, so
            # recreating the session's database from scratch is correct.
            sess = DetectionSession(tenant, session, header, predicate,
                                    store_dir=opts.get("store_dir"),
                                    **kwargs)
            sess.open_events()
        sess.feed(tail)
    except Exception as exc:
        return [event_error(tenant, session, 0, "internal",
                            f"restore failed: {exc!r}")]
    sessions[key] = sess
    _RESTORES.inc()
    events = list(sess.events_log[published:])
    events.append(restored_event(key, sess.lines, len(sess.events_log)))
    return events


class DetectorPool:
    """Interface shared by :class:`InlinePool` and :class:`ProcessPool`."""

    workers: int = 0

    def __init__(self):
        #: supervisor overrides: session key -> shard (set when a shard
        #: exhausts its restart budget and its sessions move elsewhere)
        self._pins: Dict[str, int] = {}

    def set_sink(self, sink: Sink) -> None:
        self._sink = sink

    def shard_of(self, key: str) -> int:
        pinned = self._pins.get(key)
        if pinned is not None:
            return pinned
        return shard_of(key, max(self.workers, 1))

    def pin(self, key: str, shard: int) -> None:
        """Route ``key`` to ``shard`` from now on (supervisor re-pinning)."""
        self._pins[key] = shard

    def unpin(self, key: str) -> None:
        self._pins.pop(key, None)

    # lifecycle ---------------------------------------------------------------
    def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stop(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # session ops -------------------------------------------------------------
    def open_session(self, key: str, tenant: str, session: str,
                     header: Dict[str, Any], predicate: str,
                     opts: Optional[Dict[str, Any]] = None) -> None:
        raise NotImplementedError

    def feed(self, key: str, lines: List[str],
             base_lineno: Optional[int] = None) -> None:
        raise NotImplementedError

    def finalize(self, key: str, *, shed: int = 0,
                 with_definitely: bool = True) -> None:
        raise NotImplementedError

    def close_session(self, key: str) -> None:
        raise NotImplementedError

    # durability ops ----------------------------------------------------------
    def checkpoint(self, key: str, upto: int) -> None:
        """Ask the owning shard for a ``_ckpt`` snapshot covering the
        first ``upto`` forwarded lines (FIFO-ordered behind the feeds)."""
        raise NotImplementedError

    def restore(self, key: str, tenant: str, session: str,
                header: Dict[str, Any], predicate: str,
                opts: Dict[str, Any], snapshot: Optional[Dict[str, Any]],
                tail: List[str], published: int) -> None:
        """Rebuild a session on its shard from checkpoint + WAL tail."""
        raise NotImplementedError

    # supervision -------------------------------------------------------------
    def worker_alive(self, idx: int) -> bool:
        return True

    def ping(self, idx: int) -> None:
        pass

    def last_pong(self, idx: int) -> float:
        return float("inf")

    def restart_worker(self, idx: int) -> None:
        raise NotImplementedError


class InlinePool(DetectorPool):
    """``workers=0``: detection runs in the caller (no IPC, no threads)."""

    workers = 0

    def __init__(self, **_ignored: Any):
        super().__init__()
        self._sessions: Dict[str, DetectionSession] = {}
        self._sink: Sink = lambda key, events: None

    def start(self) -> None:
        pass

    def stop(self) -> None:
        self._sessions.clear()

    def open_session(self, key, tenant, session, header, predicate,
                     opts=None) -> None:
        self._sink(key, _open_session(self._sessions, key, tenant, session,
                                      header, predicate, opts or {}))

    def feed(self, key, lines, base_lineno=None) -> None:
        self._sink(key, _feed_session(self._sessions, key, lines, base_lineno))

    def finalize(self, key, *, shed=0, with_definitely=True) -> None:
        self._sink(key, _finalize_session(self._sessions, key, shed,
                                          with_definitely))

    def close_session(self, key) -> None:
        sess = self._sessions.pop(key, None)
        if sess is not None:
            sess.close()

    def checkpoint(self, key, upto) -> None:
        self._sink(key, _checkpoint_session(self._sessions, key, upto))

    def restore(self, key, tenant, session, header, predicate, opts,
                snapshot, tail, published) -> None:
        self._sink(key, _restore_session(self._sessions, key, tenant,
                                         session, header, predicate, opts,
                                         snapshot, tail, published))


def _worker_main(idx: int, in_q: "multiprocessing.Queue",
                 out_q: "multiprocessing.Queue") -> None:
    """One shard: drain commands, advance pinned sessions, emit events."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown
    sessions: Dict[str, DetectionSession] = {}
    while True:
        msg = in_q.get()
        op = msg[0]
        if op == "stop":
            out_q.put(("__stop__", idx, METRICS.snapshot()))
            break
        if op == "ping":
            out_q.put(("__pong__", idx, msg[1]))
            continue
        try:
            if op == "open":
                _, key, tenant, session, header, predicate, opts = msg
                out_q.put((key, _open_session(sessions, key, tenant, session,
                                              header, predicate, opts)))
            elif op == "feed":
                _, key, lines, base_lineno = msg
                out_q.put((key, _feed_session(sessions, key, lines,
                                              base_lineno)))
            elif op == "finalize":
                _, key, shed, with_definitely = msg
                out_q.put((key, _finalize_session(sessions, key, shed,
                                                  with_definitely)))
            elif op == "checkpoint":
                _, key, upto = msg
                out_q.put((key, _checkpoint_session(sessions, key, upto)))
            elif op == "restore":
                (_, key, tenant, session, header, predicate, opts,
                 snapshot, tail, published) = msg
                out_q.put((key, _restore_session(sessions, key, tenant,
                                                 session, header, predicate,
                                                 opts, snapshot, tail,
                                                 published)))
            elif op == "close":
                dropped = sessions.pop(msg[1], None)
                if dropped is not None:
                    dropped.close()
        except Exception as exc:  # pragma: no cover - shard must survive
            out_q.put((msg[1] if len(msg) > 1 else "?",
                       [event_error("?", "?", 0, "internal", repr(exc))]))


class ProcessPool(DetectorPool):
    """``workers>=1`` shards, one ``multiprocessing.Process`` each.

    ``start()`` forks the workers *before* spawning the drain thread so
    the fork start method never clones a running thread.  ``stop()``
    shuts every worker down, merges their metrics snapshots into the
    parent's :data:`METRICS` registry (per-process registries merged on
    snapshot -- the cross-process half of the thread-safety story), and
    joins the drain thread.
    """

    def __init__(self, workers: int = 2, *, mp_context: Optional[str] = None):
        super().__init__()
        if workers < 1:
            raise ValueError("ProcessPool needs at least one worker")
        self.workers = workers
        self._ctx = multiprocessing.get_context(mp_context)
        self._in_qs: List[multiprocessing.Queue] = []
        self._out_q: Optional[multiprocessing.Queue] = None
        self._procs: List[multiprocessing.Process] = []
        self._drain: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._sink: Sink = lambda key, events: None
        self._worker_metrics: List[Dict[str, Any]] = []
        self._pongs: Dict[int, float] = {}

    def start(self) -> None:
        self._out_q = self._ctx.Queue()
        for idx in range(self.workers):
            in_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main, args=(idx, in_q, self._out_q),
                daemon=True, name=f"repro-serve-shard-{idx}",
            )
            self._in_qs.append(in_q)
            self._procs.append(proc)
        for proc in self._procs:
            proc.start()
        now = time.monotonic()
        for idx in range(self.workers):
            self._pongs[idx] = now  # grace: freshly started counts as heard
        self._drain = threading.Thread(
            target=self._drain_main, name="repro-serve-drain", daemon=True
        )
        self._drain.start()

    def _drain_main(self) -> None:
        stopped = 0
        while stopped < self.workers:
            try:
                item = self._out_q.get(timeout=0.5)
            except queue.Empty:
                if self._stopped.is_set() and not any(
                    p.is_alive() for p in self._procs
                ):
                    break  # a worker died without its __stop__ message
                continue
            if item[0] == "__stop__":
                stopped += 1
                self._worker_metrics.append(item[2])
                continue
            if item[0] == "__pong__":
                self._pongs[item[1]] = max(self._pongs.get(item[1], 0.0),
                                           item[2])
                continue
            key, events = item
            self._sink(key, events)

    def stop(self) -> None:
        self._stopped.set()
        for in_q in self._in_qs:
            in_q.put(("stop",))
        if self._drain is not None:
            self._drain.join(timeout=10)
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for snap in self._worker_metrics:
            METRICS.merge(snap)
        self._worker_metrics.clear()
        for q in self._in_qs + ([self._out_q] if self._out_q else []):
            q.close()
            q.join_thread()
        self._in_qs, self._procs, self._out_q = [], [], None

    def open_session(self, key, tenant, session, header, predicate,
                     opts=None) -> None:
        self._in_qs[self.shard_of(key)].put(
            ("open", key, tenant, session, header, predicate, opts or {})
        )

    def feed(self, key, lines, base_lineno=None) -> None:
        self._in_qs[self.shard_of(key)].put(("feed", key, lines, base_lineno))

    def finalize(self, key, *, shed=0, with_definitely=True) -> None:
        self._in_qs[self.shard_of(key)].put(
            ("finalize", key, shed, with_definitely)
        )

    def close_session(self, key) -> None:
        self._in_qs[self.shard_of(key)].put(("close", key))

    def checkpoint(self, key, upto) -> None:
        self._in_qs[self.shard_of(key)].put(("checkpoint", key, upto))

    def restore(self, key, tenant, session, header, predicate, opts,
                snapshot, tail, published) -> None:
        self._in_qs[self.shard_of(key)].put(
            ("restore", key, tenant, session, header, predicate, opts,
             snapshot, tail, published)
        )

    # -- supervision ----------------------------------------------------------

    def worker_alive(self, idx: int) -> bool:
        return (idx < len(self._procs) and self._procs[idx] is not None
                and self._procs[idx].is_alive())

    def ping(self, idx: int) -> None:
        if idx < len(self._in_qs):
            try:
                self._in_qs[idx].put_nowait(("ping", time.monotonic()))
            except Exception:  # full / broken queue: the liveness check
                pass           # will catch the dead worker instead

    def last_pong(self, idx: int) -> float:
        return self._pongs.get(idx, 0.0)

    def restart_worker(self, idx: int) -> None:
        """Replace a dead shard process with a fresh one.

        The old input queue may hold half-pickled garbage from the
        moment of death, so the shard gets a brand-new queue; whatever
        ops it held are gone -- the supervisor replays every owned
        session from checkpoint + WAL tail afterwards, which re-covers
        the lost feeds.
        """
        old = self._procs[idx]
        if old is not None and old.is_alive():  # unresponsive, not dead
            old.terminate()
            old.join(timeout=5)
        in_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main, args=(idx, in_q, self._out_q),
            daemon=True, name=f"repro-serve-shard-{idx}",
        )
        self._in_qs[idx] = in_q
        self._procs[idx] = proc
        self._pongs[idx] = time.monotonic()  # fresh grace period
        proc.start()
        _RESTARTS.inc()


def make_pool(workers: int, **kwargs: Any) -> DetectorPool:
    """``workers=0`` -> :class:`InlinePool`, else :class:`ProcessPool`."""
    if workers <= 0:
        return InlinePool(**kwargs)
    return ProcessPool(workers, **kwargs)
