"""Multi-tenant bookkeeping: quotas, live sessions, subscribers.

The registry is the server's control plane.  It owns no detection state
(that lives in worker-pinned :class:`~repro.serve.session.DetectionSession`
objects); what it tracks per tenant is *admission* -- how many concurrent
streams a tenant may hold open, how many records per session may sit
unacknowledged in a worker queue (the credit budget backpressure spends),
and how large a session's store may grow -- plus the set of subscriber
callbacks that want the tenant's verdict events pushed to them.

Everything here runs on the asyncio loop thread; worker threads hand
events over via ``loop.call_soon_threadsafe`` before they reach the
registry, so no locking is needed at this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.metrics import METRICS

__all__ = [
    "TenantQuota",
    "QuotaExceededError",
    "SessionState",
    "SessionRegistry",
]

_OPENED = METRICS.counter("serve.sessions_opened")
_CLOSED = METRICS.counter("serve.sessions_closed")
_REFUSED = METRICS.counter("serve.sessions_refused")
_OPEN_NOW = METRICS.gauge("serve.open_sessions")


class QuotaExceededError(ReproError):
    """A tenant asked for more than its quota allows (admission refusal)."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits (see ``docs/SERVING.md``).

    ``max_streams``
        Concurrent open sessions; further opens are refused outright.
    ``max_buffered_events``
        The per-session credit budget: how many forwarded records may be
        awaiting a worker acknowledgement before the slow-consumer policy
        engages (pause / shed / disconnect).
    ``max_store_states``
        Per-session store-size ceiling, enforced inside the session
        (``0`` disables the check).
    """

    max_streams: int = 16
    max_buffered_events: int = 4096
    max_store_states: int = 0

    def __post_init__(self):
        if self.max_streams <= 0:
            raise ValueError("max_streams must be positive")
        if self.max_buffered_events <= 0:
            raise ValueError("max_buffered_events must be positive")
        if self.max_store_states < 0:
            raise ValueError("max_store_states cannot be negative")


@dataclass
class SessionState:
    """The server-side (control-plane) view of one open session."""

    tenant: str
    session: str
    key: str
    quota: TenantQuota
    shard: int
    #: unacknowledged records allowed before backpressure engages
    credits: int = 0
    #: records forwarded to the worker so far
    submitted: int = 0
    #: records the worker acknowledged applying
    acked: int = 0
    #: records dropped by the shed policy (tail-shedding)
    shed: int = 0
    #: set once the slow-consumer policy fired (shed/disconnect)
    tripped: bool = False
    draining: bool = False
    final_event: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def outstanding(self) -> int:
        return self.submitted - self.acked


class SessionRegistry:
    """Admission control + routing for every live session and subscriber."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        overrides: Optional[Dict[str, TenantQuota]] = None,
    ):
        self.default_quota = default_quota or TenantQuota()
        self.overrides = dict(overrides or {})
        self._sessions: Dict[str, SessionState] = {}
        self._per_tenant: Dict[str, int] = {}
        self._subscribers: Dict[str, List[Callable[[Dict[str, Any]], None]]] = {}

    # -- admission -----------------------------------------------------------

    def quota(self, tenant: str) -> TenantQuota:
        return self.overrides.get(tenant, self.default_quota)

    def open(self, tenant: str, session: str, shard: int) -> SessionState:
        from repro.serve.session import session_key

        key = session_key(tenant, session)
        if key in self._sessions:
            _REFUSED.inc()
            raise QuotaExceededError(
                f"session {key!r} is already open (one stream per session id)"
            )
        quota = self.quota(tenant)
        if self._per_tenant.get(tenant, 0) >= quota.max_streams:
            _REFUSED.inc()
            raise QuotaExceededError(
                f"tenant {tenant!r} is at max_streams={quota.max_streams} "
                f"concurrent stream(s)"
            )
        state = SessionState(
            tenant=tenant, session=session, key=key, quota=quota,
            shard=shard, credits=quota.max_buffered_events,
        )
        self._sessions[key] = state
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        _OPENED.inc()
        _OPEN_NOW.set(len(self._sessions))
        METRICS.gauge(f"serve.tenant.{tenant}.sessions").set(
            self._per_tenant[tenant]
        )
        return state

    def close(self, key: str) -> Optional[SessionState]:
        state = self._sessions.pop(key, None)
        if state is None:
            return None
        left = self._per_tenant.get(state.tenant, 1) - 1
        if left:
            self._per_tenant[state.tenant] = left
        else:
            self._per_tenant.pop(state.tenant, None)
        _CLOSED.inc()
        _OPEN_NOW.set(len(self._sessions))
        METRICS.gauge(f"serve.tenant.{state.tenant}.sessions").set(max(left, 0))
        return state

    def get(self, key: str) -> Optional[SessionState]:
        return self._sessions.get(key)

    def sessions(self) -> List[SessionState]:
        return list(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    # -- subscribers ---------------------------------------------------------

    def subscribe(self, tenant: str,
                  push: Callable[[Dict[str, Any]], None]) -> None:
        self._subscribers.setdefault(tenant, []).append(push)

    def unsubscribe(self, tenant: str,
                    push: Callable[[Dict[str, Any]], None]) -> None:
        pushes = self._subscribers.get(tenant)
        if pushes and push in pushes:
            pushes.remove(push)
            if not pushes:
                self._subscribers.pop(tenant, None)

    def publish(self, tenant: str, event: Dict[str, Any]) -> int:
        """Push one event to every subscriber of ``tenant``; returns count."""
        pushes = self._subscribers.get(tenant, ())
        for push in list(pushes):
            push(event)
        return len(pushes)

    def subscriber_count(self, tenant: str) -> int:
        return len(self._subscribers.get(tenant, ()))

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready control-plane summary (drain logs, tests)."""
        return {
            "open_sessions": len(self._sessions),
            "tenants": {
                tenant: count for tenant, count in sorted(self._per_tenant.items())
            },
            "outstanding": {
                key: s.outstanding
                for key, s in sorted(self._sessions.items()) if s.outstanding
            },
            "shed": {
                key: s.shed
                for key, s in sorted(self._sessions.items()) if s.shed
            },
        }
