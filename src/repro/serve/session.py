"""One tenant stream = one :class:`DetectionSession`.

A session owns the full PR 4 substrate for a single ``repro-events/1``
stream: a private :class:`~repro.store.TraceStore`, the streaming
:class:`~repro.detection.IncrementalDetector` over it, and a
:class:`~repro.serve.protocol.VerdictTracker` converting per-record polls
into witness found/withdrawn events.  Sessions are deliberately
single-threaded objects -- the sharded worker pool pins each session to
exactly one worker (Chauhan-Garg distributed abstraction: independent
slicers, no shared checker), so no session ever needs a lock.

Feeding is line-oriented: the server forwards raw stream lines without
parsing them, and the session pays the JSON + append + poll cost where
the CPU budget lives (a worker process).  Malformed lines and quota
overruns do not raise out of :meth:`feed_line`; they convert the session
to the *failed* state and surface as ``error`` events so one tenant's
garbage can never unwind a worker serving other tenants.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Any, Dict, List, Optional

from repro.detection.incremental import IncrementalDetector, WatchResult
from repro.errors import MalformedTraceError
from repro.serve.protocol import (
    VerdictTracker,
    event_error,
    event_finding,
    event_lint_summary,
    event_open,
)
from repro.trace.io import apply_stream_record, stream_store_from_header

__all__ = ["DetectionSession", "session_key", "session_store_target"]


def session_key(tenant: str, session: str) -> str:
    """The routing key ``tenant/session`` used across server and workers."""
    return f"{tenant}/{session}"


def session_store_target(store_dir: str, key: str) -> str:
    """The per-session SQLite store target under ``store_dir``.

    One database per session (sessions are pinned to one worker, so each
    file has a single writer); the filename survives restarts so durable
    restore can reopen the same chain.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", key)
    return "sqlite:" + os.path.join(store_dir, f"{safe}.db")


class DetectionSession:
    """Streaming detection state for one tenant stream.

    Parameters
    ----------
    tenant, session:
        Naming for every emitted verdict event.
    header:
        The parsed ``repro-events/1`` header record.
    predicate:
        A predicate spec (``at-least-one:up``, ``mutex:cs``, ...) parsed
        against the stream's process count.
    max_store_states:
        Per-session quota: once the store holds more states the session
        fails with a ``quota`` error event covering the applied prefix.
    delay_per_record:
        Debug/bench knob: sleep this long per applied record to emulate
        an expensive predicate (how the backpressure tests and E16 make a
        deliberately slow detector without a heavyweight workload).
    lint:
        Attach a :class:`~repro.analysis.incremental.StreamingLinter` to
        the stream: every record is linted as it arrives and findings
        are pushed as ``repro-findings/1`` events interleaved with the
        verdicts (plus a ``lint`` summary at finalize).  Like verdicts,
        finding events are a pure function of the input stream, so they
        stay byte-identical across worker counts and survive durable
        snapshot/restore.
    """

    def __init__(
        self,
        tenant: str,
        session: str,
        header: Dict[str, Any],
        predicate: str,
        *,
        max_store_states: int = 0,
        delay_per_record: float = 0.0,
        engine: str = "auto",
        store_dir: Optional[str] = None,
        lint: bool = False,
    ):
        from repro.cli import parse_predicate  # lazy: cli imports are heavy

        self.tenant = tenant
        self.session = session
        self.key = session_key(tenant, session)
        where = f"{self.key}:header"
        self.store_target: Optional[str] = None
        if store_dir:
            os.makedirs(store_dir, exist_ok=True)
            self.store_target = session_store_target(store_dir, self.key)
            # A fresh open replaces any stale chain from an earlier run of
            # the same session name (durable *restore* reopens it instead
            # of coming through here).
            stale = self.store_target[len("sqlite:"):]
            if os.path.exists(stale):
                os.unlink(stale)
        self.store = stream_store_from_header(header, where,
                                              self.store_target)
        self.predicate_spec = predicate
        self.pred = parse_predicate(predicate, self.store.n)
        self.detector = IncrementalDetector(self.store, self.pred)
        self.tracker = VerdictTracker(tenant, session)
        self.engine = engine
        self.max_store_states = int(max_store_states)
        self.delay_per_record = float(delay_per_record)
        #: stream records applied so far (header excluded)
        self.seq = 0
        #: raw stream lines accepted so far (incl. obs; the durable seq)
        self.lines = 0
        #: failed sessions apply nothing further (error already emitted)
        self.failed = False
        self.result: Optional[WatchResult] = None
        #: every public event this session ever produced, in order --
        #: the replay source for durable resume (byte-identity depends on
        #: this log being a pure function of the input stream)
        self.events_log: List[Dict[str, Any]] = []
        self.linter = None
        self._header_findings: List[Dict[str, Any]] = []
        if lint:
            from repro.analysis.incremental import StreamingLinter

            self.linter = StreamingLinter(source=self.key,
                                          predicate=self.pred)
            self._header_findings = [
                f.to_dict()
                for f in self.linter.feed_record(header, where)
            ]

    def _record(self, events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        self.events_log.extend(events)
        return events

    def open_event(self) -> Dict[str, Any]:
        return self.open_events()[0]

    def open_events(self) -> List[Dict[str, Any]]:
        """The session-accepted event, plus any findings the online
        linter raised against the header itself."""
        events = [event_open(self.tenant, self.session, self.store.n,
                             self.predicate_spec)]
        for payload in self._header_findings:
            events.append(event_finding(self.tenant, self.session, 0,
                                        payload))
        return self._record(events)

    # -- feeding -------------------------------------------------------------

    def _fail(self, code: str, message: str,
              where: Optional[str] = None) -> Dict[str, Any]:
        self.failed = True
        return event_error(self.tenant, self.session, self.seq, code,
                           message, where=where)

    def feed_line(self, line: str, lineno: Optional[int] = None
                  ) -> List[Dict[str, Any]]:
        """Apply one raw stream line; returns the verdict events it caused."""
        if self.failed:
            return []
        line = line.strip()
        if not line:
            return []
        self.lines += 1
        where = f"{self.key}:{lineno if lineno is not None else self.seq + 1}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._record(
                [self._fail("malformed", f"not valid JSON ({exc})", where)]
            )
        try:
            kind = apply_stream_record(self.store, rec, where)
        except MalformedTraceError as exc:
            return self._record([self._fail("malformed", str(exc), where)])
        if kind == "obs":
            # obs records do not advance seq, but the linter must see
            # them (inline suppressions ride in obs blocks).
            return self._record(self._lint_feed(rec, where))
        self.seq += 1
        if self.delay_per_record:
            time.sleep(self.delay_per_record)
        if self.max_store_states and self.store.num_states > self.max_store_states:
            return self._record([self._fail(
                "quota",
                f"store grew past max_store_states={self.max_store_states} "
                f"({self.store.num_states} states); verdict covers the "
                f"applied prefix only",
                where,
            )])
        events = self._lint_feed(rec, where)
        events.extend(self.tracker.observe(self.seq, self.detector.poll()))
        return self._record(events)

    def _lint_feed(self, rec: Dict[str, Any],
                   where: str) -> List[Dict[str, Any]]:
        """Feed one record to the online linter; finding events out."""
        if self.linter is None:
            return []
        return [
            event_finding(self.tenant, self.session, self.seq, f.to_dict())
            for f in self.linter.feed_record(rec, where)
        ]

    def feed(self, lines: List[str], base_lineno: Optional[int] = None
             ) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for i, line in enumerate(lines):
            lineno = base_lineno + i if base_lineno is not None else None
            events.extend(self.feed_line(line, lineno))
        return events

    # -- finalisation --------------------------------------------------------

    def finalize(self, *, shed: int = 0,
                 with_definitely: bool = True) -> List[Dict[str, Any]]:
        """End of stream: the final verdict event (plus a shed marker).

        ``shed`` is how many records backpressure dropped before the end
        (tail-shedding); a non-zero value marks the verdict degraded.
        Failed sessions already emitted their error and produce nothing.
        """
        from repro.serve.protocol import event_shed

        if self.failed:
            return []
        events: List[Dict[str, Any]] = []
        if shed:
            events.append(event_shed(self.tenant, self.session, self.seq, shed))
        events.extend(self._lint_finalize())
        self.result = self.detector.finalize(
            engine=self.engine, with_definitely=with_definitely
        )
        events.append(
            self.tracker.finalized(self.seq, self.result, degraded=bool(shed))
        )
        return self._record(events)

    def _lint_finalize(self) -> List[Dict[str, Any]]:
        """Findings only decidable at end of stream, plus the roll-up.

        The finalize-mode rules (and, after an arrival-order violation,
        the recomputed incremental ones) first appear here; findings
        already pushed while streaming are not repeated."""
        if self.linter is None:
            return []
        from collections import Counter

        from repro.analysis.fingerprint import (
            apply_suppressions,
            suppressions_from_obs,
        )

        report = self.linter.report()
        raw = self.linter.parser.raw
        if raw is not None:
            # inline suppressions mute the roll-up, same as `repro lint`
            # (findings already on the wire are not retracted)
            apply_suppressions(report, suppressions_from_obs(raw.obs))
        emitted = Counter(
            json.dumps(f.to_dict(), sort_keys=True)
            for f in self.linter.findings()
        )
        events: List[Dict[str, Any]] = []
        for f in report.findings:
            key = json.dumps(f.to_dict(), sort_keys=True)
            if emitted[key] > 0:
                emitted[key] -= 1
                continue
            events.append(event_finding(self.tenant, self.session,
                                        self.seq, f.to_dict()))
        events.append(event_lint_summary(
            self.tenant, self.session, self.seq,
            findings=len(report.findings),
            errors=report.errors,
            warnings=report.warnings,
            dirty=self.linter.dirty,
            dirty_reason=self.linter.dirty_reason,
        ))
        return events

    # -- durable state capture -----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything a checkpoint needs to resurrect this session.

        JSON-serializable; pairs the trace-store capture with
        :meth:`IncrementalDetector.snapshot` and adds the session-level
        counters plus the full public event log (events are sparse --
        witness *transitions* only -- so the log stays small even for
        long streams).

        On a commit-chain store (``--store sqlite:DIR``) the capture is a
        tiny ``store_ref`` -- the chain commits the appended suffix and
        the checkpoint records ``target/branch/commit id`` -- instead of
        re-freezing the whole store as JSON, so checkpoint cost stays
        O(suffix) as the trace grows.
        """
        if self.store_target is not None and self.store.branch_name is not None:
            cid = self.store.commit(
                kind="checkpoint", message=f"serve checkpoint seq={self.seq}"
            )
            store_blob: Dict[str, Any] = {"store_ref": {
                "target": self.store_target,
                "branch": self.store.branch_name,
                "commit": cid,
            }}
        else:
            store_blob = self.store.freeze()
        return {
            "store": store_blob,
            "detector": self.detector.snapshot(),
            "lint": (self.linter.snapshot()
                     if self.linter is not None else None),
            "seq": self.seq,
            "lines": self.lines,
            "failed": self.failed,
            "events": [dict(ev) for ev in self.events_log],
        }

    def close(self) -> None:
        """Release the session's storage (a no-op for in-memory stores)."""
        self.store.close()

    @classmethod
    def restore(
        cls,
        tenant: str,
        session: str,
        header: Dict[str, Any],
        predicate: str,
        snap: Dict[str, Any],
        *,
        max_store_states: int = 0,
        delay_per_record: float = 0.0,
        engine: str = "auto",
        lint: bool = False,
    ) -> "DetectionSession":
        """Rebuild a session from a :meth:`snapshot`; feeding the stream
        suffix afterwards produces exactly the events an uninterrupted
        run would have produced (pinned by tests/serve/test_durability.py)."""
        from repro.store.trace_store import TraceStore

        # store_dir stays None here on purpose: a durable restore must
        # reopen the existing chain, not wipe-and-recreate it.
        sess = cls(tenant, session, header, predicate,
                   max_store_states=max_store_states,
                   delay_per_record=delay_per_record, engine=engine,
                   lint=lint)
        blob = snap["store"]
        if isinstance(blob, dict) and "store_ref" in blob:
            from repro.storage import open_backend

            ref = blob["store_ref"]
            sess.store.close()
            sess.store = TraceStore(backend=open_backend(
                ref["target"], branch=ref["branch"],
                at_commit=int(ref["commit"]), reset_head=True,
                create=False,
            ))
            sess.store_target = ref["target"]
        else:
            sess.store = TraceStore.restore(blob)
        sess.detector = IncrementalDetector.restore(
            sess.store, sess.pred, snap["detector"]
        )
        sess.tracker._witness = sess.detector.witness
        lint_state = snap.get("lint")
        if lint_state is not None and sess.linter is not None:
            from repro.analysis.incremental import StreamingLinter

            sess.linter = StreamingLinter.restore(
                lint_state, predicate=sess.pred
            )
        sess.seq = int(snap["seq"])
        sess.lines = int(snap.get("lines", 0))
        sess.failed = bool(snap.get("failed", False))
        sess.events_log = [dict(ev) for ev in snap.get("events", ())]
        return sess
