"""Deposet statistics: quantify a computation's concurrency structure.

Debugging and the experiment harness both want quick structural summaries:
how parallel is this trace (would control even matter?), how long is its
critical path, how dense is the communication.  All measures are exact and
cheap except ``concurrency_fraction`` on huge traces, which is sampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.trace.deposet import Deposet

__all__ = ["DeposetStats", "deposet_stats"]


def _critical_path(dep: Deposet) -> int:
    """States on the longest event chain (send -> receive hops included).

    Computed on the event graph (the operational truth): an arrow's target
    event follows the *leave* event of its source state, so a ping-pong of
    k messages has critical path 2k+1, not k+1.
    """
    counts = dep.state_counts
    levels = [[0] * max(m - 1, 0) for m in counts]
    incoming: dict = {}
    for src, dst in [(m.src, m.dst) for m in dep.messages] + list(dep.control_arrows):
        src_ev = (src.proc, src.index)
        dst_ev = (dst.proc, dst.index - 1)
        if src_ev != dst_ev:
            incoming.setdefault(dst_ev, []).append(src_ev)

    changed = True
    while changed:  # acyclic: settles in O(depth) sweeps
        changed = False
        for i in range(dep.n):
            for e in range(counts[i] - 1):
                lev = 1
                if e > 0:
                    lev = levels[i][e - 1] + 1
                for (sp, se) in incoming.get((i, e), ()):
                    lev = max(lev, levels[sp][se] + 1)
                if lev > levels[i][e]:
                    levels[i][e] = lev
                    changed = True
    longest_events = max((l for row in levels for l in row), default=0)
    return longest_events + 1


@dataclass(frozen=True)
class DeposetStats:
    """Structural summary of one computation."""

    n: int
    total_states: int
    total_events: int
    messages: int
    control_arrows: int
    #: longest causal chain of states (the computation's "makespan" in
    #: logical steps); total_states / critical_path ~ achievable speed-up
    critical_path: int
    #: fraction of cross-process state pairs that are concurrent (in [0,1]);
    #: 1.0 = fully parallel trace, ~0 = fully serialised
    concurrency_fraction: float
    #: messages per event -- the communication density
    message_density: float

    def describe(self) -> str:
        return (
            f"{self.n} processes, {self.total_states} states, "
            f"{self.messages} messages ({self.message_density:.2f}/event), "
            f"critical path {self.critical_path}, "
            f"concurrency {self.concurrency_fraction:.0%}"
        )


def deposet_stats(
    dep: Deposet,
    sample_pairs: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> DeposetStats:
    """Compute :class:`DeposetStats` for ``dep``.

    ``concurrency_fraction`` enumerates all cross-process state pairs when
    there are at most ``sample_pairs`` of them, else samples that many
    (seeded; pass ``rng`` to control).
    """
    counts = dep.state_counts
    total_states = dep.num_states
    total_events = total_states - dep.n
    critical = _critical_path(dep)

    order = dep.order
    pairs = []
    all_pairs = [
        ((i, a), (j, b))
        for i in range(dep.n)
        for j in range(i + 1, dep.n)
        for a in range(counts[i])
        for b in range(counts[j])
    ] if total_states <= 80 else None
    if all_pairs is not None:
        pairs = all_pairs
    else:
        if rng is None:
            rng = np.random.default_rng(0)
        for _ in range(sample_pairs):
            i, j = rng.choice(dep.n, size=2, replace=False)
            pairs.append(
                (
                    (int(i), int(rng.integers(counts[i]))),
                    (int(j), int(rng.integers(counts[j]))),
                )
            )
    if pairs:
        concurrent = sum(order.concurrent(x, y) for x, y in pairs)
        fraction = concurrent / len(pairs)
    else:
        fraction = 1.0  # single process: vacuously, nothing to serialise

    return DeposetStats(
        n=dep.n,
        total_states=total_states,
        total_events=total_events,
        messages=len(dep.messages),
        control_arrows=len(dep.control_arrows),
        critical_path=critical,
        concurrency_fraction=fraction,
        message_density=(len(dep.messages) / total_events) if total_events else 0.0,
    )
