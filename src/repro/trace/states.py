"""Events and message arrows of the deposet model.

The paper's model places an *event* between every pair of consecutive local
states of a process; an event is exactly one of: a local event, a message
send, or a message receive (constraint D3).  We index the event that takes
process ``i`` from state ``a`` to state ``a+1`` by ``(i, a)``.

A message is represented by the paper's *remotely precedes* arrow between
states: ``src ~> dst`` where

* the send is the event *after* state ``src``  (i.e. event ``(src.proc, src.index)``), and
* the receive is the event *before* state ``dst`` (i.e. event ``(dst.proc, dst.index - 1)``).

Constraints D1 ("no receive before the initial state") and D2 ("no send
after the final state") then read: ``dst.index >= 1`` (structural) and
``src.index <= m_src - 2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.causality.relations import StateRef

__all__ = ["EventKind", "Event", "MessageArrow"]


class EventKind(enum.Enum):
    """The three event kinds of the model (constraint D3: exactly one)."""

    LOCAL = "local"
    SEND = "send"
    RECEIVE = "receive"


@dataclass(frozen=True)
class Event:
    """The event taking process ``proc`` from state ``index`` to ``index+1``.

    ``message`` is the index (into ``Deposet.messages``) of the message this
    event sends or receives; ``None`` for local events.
    """

    proc: int
    index: int
    kind: EventKind
    message: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.kind is EventKind.LOCAL) != (self.message is None):
            raise ValueError(
                f"event {self.proc}:{self.index} of kind {self.kind.value} "
                f"has message={self.message!r}"
            )


@dataclass(frozen=True)
class MessageArrow:
    """A message as a *remotely precedes* arrow between local states.

    Attributes
    ----------
    src:
        The last state of the sender before the send event.
    dst:
        The first state of the receiver after the receive event.
    payload:
        Optional application payload (kept for debugging/replay fidelity;
        never interpreted by the algorithms).
    tag:
        Optional small label distinguishing message families (e.g. the
        on-line controller's ``"req"``/``"ack"`` control messages).
    """

    src: StateRef
    dst: StateRef
    payload: Any = field(default=None, compare=False)
    tag: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", StateRef(*self.src))
        object.__setattr__(self, "dst", StateRef(*self.dst))
        if self.src.proc == self.dst.proc:
            raise ValueError(
                f"message {self.src!r} ~> {self.dst!r} stays on one process"
            )

    def __repr__(self) -> str:
        extra = f" tag={self.tag}" if self.tag else ""
        return f"Msg({self.src!r}~>{self.dst!r}{extra})"
