"""Trace (de)serialisation: batch JSON documents and streaming event logs.

Two formats, one storage model:

``repro-deposet/1`` -- a single JSON document describing a whole deposet.
Deliberately plain so traces can be produced by external tracers and
inspected by hand:

.. code-block:: json

    {
      "format": "repro-deposet/1",
      "proc_names": ["P0", "P1"],
      "states": [[{"x": 1}, {"x": 2}], [{}]],
      "messages": [{"src": [0, 0], "dst": [1, 1], "tag": null}],
      "control": [[[0, 1], [1, 2]]],
      "timestamps": null,
      "obs": {"metrics": {"counters": {"sim.runs": 1}}}
    }

``repro-events/1`` -- a line-delimited event stream in **causal delivery
order**, built for incremental ingestion into a
:class:`~repro.store.TraceStore` (``repro ingest`` / ``repro watch``).
The first line is a header; every further line is one record:

.. code-block:: text

    {"format": "repro-events/1", "proc_names": ["P0","P1"],
     "start": [{"x": 0}, {}], "start_times": [0.0, 0.0]}
    {"t": "ev",   "p": 0, "u": {"x": 1}, "time": 1.0}
    {"t": "recv", "p": 1, "src": [0, 1], "u": {}, "payload": "m", "tag": null}
    {"t": "ctl",  "src": [0, 1], "dst": [1, 2]}
    {"t": "obs",  "obs": {"metrics": {}}}

``"ev"``/``"recv"`` append one event to process ``p`` (``"u"`` overlays
variable updates; ``"vars"`` replaces the assignment wholesale, used when
a key disappears).  ``"recv"`` names the sender's pre-send state so the
message arrow joins during the O(n) append; ``"ctl"`` inserts a control
arrow between already-streamed states (cone update); a trailing ``"obs"``
record carries the observability block.  Records must respect causal
delivery order: an arrow source must have completed before its target
event is streamed -- :func:`write_event_stream` linearises any deposet
accordingly.

Payloads are serialised only when JSON-representable; otherwise they are
dropped with a ``repr`` placeholder (payloads are never semantically
meaningful to the algorithms).

Malformed inputs raise :class:`~repro.errors.MalformedTraceError` carrying
the offending location -- the JSON path (``messages[3].src``) for batch
documents, ``file:line`` for streams.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Any,
    Dict,
    IO,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.causality.relations import StateRef
from repro.errors import (
    MalformedTraceError,
    StorageError,
    TruncatedStreamError,
    UnknownTraceFormatError,
)
from repro.storage.base import open_backend
from repro.store.trace_store import TraceStore, iter_delivery_events
from repro.trace.deposet import Deposet
from repro.trace.states import MessageArrow

__all__ = [
    "FORMAT",
    "deposet_to_dict",
    "deposet_from_dict",
    "dump_deposet",
    "load_deposet",
    "load_deposet_meta",
    "STREAM_FORMAT",
    "StreamWriter",
    "write_event_stream",
    "ingest_event_stream",
    "read_event_stream",
    "sniff_trace_format",
    "stream_store_from_header",
    "apply_stream_record",
]

FORMAT = "repro-deposet/1"
STREAM_FORMAT = "repro-events/1"


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return {"__repr__": repr(value)}


# -- batch documents ---------------------------------------------------------


def deposet_to_dict(
    dep: Deposet,
    obs: Optional[Dict[str, Any]] = None,
    clocks: bool = False,
) -> Dict[str, Any]:
    """A JSON-ready dictionary describing ``dep``.

    ``obs``, when given, is attached verbatim as the trace's ``"obs"``
    observability block (e.g. ``{"metrics": METRICS.snapshot()}``).

    ``clocks=True`` additionally records the per-state vector clocks of
    the (extended) causality as a ``"clocks"`` block --
    ``clocks[i][a][k]`` is ``V(s_{i,a})[k]``.  The block is redundant
    (recomputable from the arrows) and ignored by the loader; it exists
    so external tooling can cross-check, and so ``repro lint`` can
    compare recorded against recomputed clocks (rule T008).
    """
    out = {
        "format": FORMAT,
        "proc_names": list(dep.proc_names),
        "states": [
            [{k: _jsonable(v) for k, v in vars.items()} for vars in dep.proc_states(i)]
            for i in range(dep.n)
        ],
        "messages": [
            {
                "src": [m.src.proc, m.src.index],
                "dst": [m.dst.proc, m.dst.index],
                "tag": m.tag,
                "payload": _jsonable(m.payload),
            }
            for m in dep.messages
        ],
        "control": [
            [[a.proc, a.index], [b.proc, b.index]] for a, b in dep.control_arrows
        ],
        "timestamps": (
            [list(row) for row in dep.timestamps] if dep.timestamps else None
        ),
    }
    if clocks:
        out["clocks"] = [
            [
                [int(c) for c in dep.order.clock((i, a))]
                for a in range(dep.state_counts[i])
            ]
            for i in range(dep.n)
        ]
    if obs is not None:
        out["obs"] = obs
    return out


def _fail(path: str, msg: str) -> None:
    raise MalformedTraceError(f"{path}: {msg}")


def _check_ref(value: Any, path: str) -> Tuple[int, int]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(c, int) and not isinstance(c, bool) for c in value)
    ):
        _fail(path, f"expected a [process, state] pair, got {value!r}")
    return value[0], value[1]


def _check_vars(value: Any, path: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        _fail(path, f"expected an object of variables, got {value!r}")
    return value


def deposet_from_dict(data: Dict[str, Any]) -> Deposet:
    """Rebuild a deposet from :func:`deposet_to_dict` output.

    Structural problems raise :class:`MalformedTraceError` naming the
    offending JSON path (``states[1][3]``, ``messages[2].src``,
    ``control[0]``, ``timestamps[1]``); semantic problems (D1--D3,
    interference) surface from the :class:`Deposet` constructor with the
    offending state refs in the message.
    """
    if not isinstance(data, dict):
        raise MalformedTraceError(f"expected a trace object, got {type(data).__name__}")
    if data.get("format") != FORMAT:
        raise MalformedTraceError(
            f"unknown trace format {data.get('format')!r}; expected {FORMAT!r}"
        )
    states = data.get("states")
    if not isinstance(states, list) or not states:
        _fail("states", "expected a non-empty list of per-process state lists")
    for i, proc_states in enumerate(states):
        if not isinstance(proc_states, list) or not proc_states:
            _fail(f"states[{i}]", "expected a non-empty list of variable objects")
        for a, vars in enumerate(proc_states):
            _check_vars(vars, f"states[{i}][{a}]")
    messages = []
    for k, m in enumerate(data.get("messages", ())):
        if not isinstance(m, dict):
            _fail(f"messages[{k}]", f"expected an object, got {m!r}")
        if "src" not in m or "dst" not in m:
            _fail(f"messages[{k}]", "missing 'src' or 'dst'")
        messages.append(
            MessageArrow(
                StateRef(*_check_ref(m["src"], f"messages[{k}].src")),
                StateRef(*_check_ref(m["dst"], f"messages[{k}].dst")),
                payload=m.get("payload"),
                tag=m.get("tag"),
            )
        )
    control = []
    for k, arrow in enumerate(data.get("control") or ()):
        if not isinstance(arrow, (list, tuple)) or len(arrow) != 2:
            _fail(f"control[{k}]", f"expected a [src, dst] pair, got {arrow!r}")
        control.append(
            (
                StateRef(*_check_ref(arrow[0], f"control[{k}][0]")),
                StateRef(*_check_ref(arrow[1], f"control[{k}][1]")),
            )
        )
    timestamps = data.get("timestamps")
    if timestamps is not None:
        if not isinstance(timestamps, list) or len(timestamps) != len(states):
            _fail(
                "timestamps",
                f"expected {len(states)} per-process rows, got {timestamps!r}",
            )
        for i, row in enumerate(timestamps):
            if not isinstance(row, list) or not all(
                isinstance(t, (int, float)) and not isinstance(t, bool) for t in row
            ):
                _fail(f"timestamps[{i}]", f"expected a list of numbers, got {row!r}")
            if len(row) != len(states[i]):
                _fail(
                    f"timestamps[{i}]",
                    f"{len(row)} entries for {len(states[i])} states",
                )
    return Deposet(
        states,
        messages,
        control,
        proc_names=data.get("proc_names"),
        timestamps=timestamps,
    )


def dump_deposet(
    dep: Deposet,
    path: Union[str, Path],
    obs: Optional[Dict[str, Any]] = None,
    clocks: bool = False,
) -> None:
    """Write ``dep`` to ``path`` as JSON (with an optional ``obs`` block
    and, when ``clocks=True``, recorded vector clocks for T008 checks)."""
    Path(path).write_text(
        json.dumps(deposet_to_dict(dep, obs=obs, clocks=clocks), indent=1)
    )


def _load_dict(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise MalformedTraceError(f"{path}: not valid JSON ({exc})") from exc


def load_deposet(path: Union[str, Path]) -> Deposet:
    """Read a deposet written by :func:`dump_deposet`.

    Malformed traces raise :class:`MalformedTraceError` prefixed with the
    file path (and the offending JSON path for structural errors).
    """
    try:
        return deposet_from_dict(_load_dict(path))
    except MalformedTraceError as exc:
        if str(exc).startswith(str(path)):
            raise
        raise MalformedTraceError(f"{path}: {exc}") from exc


def load_deposet_meta(
    path: Union[str, Path],
) -> Tuple[Deposet, Optional[Dict[str, Any]]]:
    """Read a deposet plus its ``"obs"`` block (``None`` when absent).

    The embedded ``obs`` block is returned as inert data -- it is **not**
    merged into the live :data:`~repro.obs.metrics.METRICS` registry
    (re-loading a recorded run must not double-count its activity; pinned
    by ``tests/obs/test_metrics_reload.py``).
    """
    data = _load_dict(path)
    try:
        dep = deposet_from_dict(data)
    except MalformedTraceError as exc:
        if str(exc).startswith(str(path)):
            raise
        raise MalformedTraceError(f"{path}: {exc}") from exc
    return dep, data.get("obs")


# -- streaming ---------------------------------------------------------------


class StreamWriter:
    """Incremental writer for the ``repro-events/1`` line format.

    Emit records in causal delivery order (every arrow source completed
    before its target event is written); :func:`write_event_stream` does
    this for a finished deposet, live producers do it naturally by
    writing events as they commit.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        n: int,
        proc_names: Optional[Sequence[str]] = None,
        start_vars: Optional[Sequence[Dict[str, Any]]] = None,
        start_times: Optional[Sequence[float]] = None,
    ):
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owns = False
        else:
            self._fh = open(target, "w")
            self._owns = True
        header: Dict[str, Any] = {
            "format": STREAM_FORMAT,
            "proc_names": (
                list(proc_names) if proc_names is not None
                else [f"P{i}" for i in range(n)]
            ),
            "start": [
                {k: _jsonable(v) for k, v in (start_vars[i] if start_vars else {}).items()}
                for i in range(n)
            ],
            "start_times": list(start_times) if start_times is not None else None,
        }
        self._write(header)

    def _write(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def event(
        self,
        proc: int,
        updates: Optional[Dict[str, Any]] = None,
        vars: Optional[Dict[str, Any]] = None,
        time: Optional[float] = None,
    ) -> None:
        """A local or send event of ``proc``."""
        rec: Dict[str, Any] = {"t": "ev", "p": proc}
        self._payload_fields(rec, updates, vars, time)
        self._write(rec)

    def receive(
        self,
        proc: int,
        src: StateRef | Tuple[int, int],
        updates: Optional[Dict[str, Any]] = None,
        vars: Optional[Dict[str, Any]] = None,
        time: Optional[float] = None,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> None:
        """A receive event: ``src`` is the sender's pre-send state."""
        rec: Dict[str, Any] = {"t": "recv", "p": proc, "src": [src[0], src[1]]}
        self._payload_fields(rec, updates, vars, time)
        if payload is not None:
            rec["payload"] = _jsonable(payload)
        if tag is not None:
            rec["tag"] = tag
        self._write(rec)

    def control(
        self, src: StateRef | Tuple[int, int], dst: StateRef | Tuple[int, int]
    ) -> None:
        """A control arrow between already-streamed states."""
        self._write({"t": "ctl", "src": [src[0], src[1]], "dst": [dst[0], dst[1]]})

    def obs(self, obs: Dict[str, Any]) -> None:
        """The trailing observability block."""
        self._write({"t": "obs", "obs": obs})

    @staticmethod
    def _payload_fields(
        rec: Dict[str, Any],
        updates: Optional[Dict[str, Any]],
        vars: Optional[Dict[str, Any]],
        time: Optional[float],
    ) -> None:
        if vars is not None:
            rec["vars"] = {k: _jsonable(v) for k, v in vars.items()}
        else:
            rec["u"] = {k: _jsonable(v) for k, v in (updates or {}).items()}
        if time is not None:
            rec["time"] = time

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _delta(
    prev: Dict[str, Any], cur: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Variable updates from ``prev`` to ``cur``; ``None`` when a key
    disappeared (updates cannot express deletion: emit full ``vars``)."""
    if any(k not in cur for k in prev):
        return None
    return {k: v for k, v in cur.items() if k not in prev or prev[k] != v}


def write_event_stream(
    dep: Deposet,
    path: Union[str, Path, IO[str]],
    obs: Optional[Dict[str, Any]] = None,
) -> None:
    """Linearise ``dep`` into a ``repro-events/1`` stream.

    Events are emitted in a causal delivery order over the *extended*
    causality (messages and control arrows both gate emission), so the
    stream replays through :func:`ingest_event_stream` with O(n) appends.
    """
    ts = dep.timestamps
    writer = StreamWriter(
        path,
        dep.n,
        proc_names=dep.proc_names,
        start_vars=[dep.state_vars((i, 0)) for i in range(dep.n)],
        start_times=[row[0] for row in ts] if ts is not None else None,
    )
    try:
        for proc, entered, msg, ctls in iter_delivery_events(dep):
            prev = dep.state_vars((proc, entered - 1))
            cur = dep.state_vars((proc, entered))
            updates = _delta(prev, cur)
            time = ts[proc][entered] if ts is not None else None
            kwargs: Dict[str, Any] = (
                {"vars": cur} if updates is None else {"updates": updates}
            )
            if msg is not None:
                writer.receive(
                    proc, msg.src, time=time,
                    payload=msg.payload, tag=msg.tag, **kwargs,
                )
            else:
                writer.event(proc, time=time, **kwargs)
            for a, b in ctls:
                writer.control(a, b)
        if obs is not None:
            writer.obs(obs)
    finally:
        writer.close()


def _stream_fail(where: str, msg: str) -> None:
    raise MalformedTraceError(f"{where}: {msg}")


def stream_store_from_header(
    rec: Dict[str, Any], where: str, store_target: Optional[str] = None,
) -> TraceStore:
    """A fresh :class:`TraceStore` from a parsed ``repro-events/1`` header.

    ``where`` (``file:line`` or a session label) prefixes every error.
    ``store_target`` selects the storage engine (``"memory"`` default, or
    ``"sqlite:PATH"`` for a durable commit chain -- the target must not
    already hold a trace body; fork a branch instead of re-ingesting).
    Shared by file ingestion and the serving layer's per-tenant sessions.
    """
    if not isinstance(rec, dict):
        _stream_fail(where, f"expected an object, got {rec!r}")
    if rec.get("format") != STREAM_FORMAT:
        _stream_fail(
            where,
            f"unknown stream format {rec.get('format')!r}; "
            f"expected {STREAM_FORMAT!r}",
        )
    start = rec.get("start")
    if not isinstance(start, list) or not start:
        _stream_fail(where, "header needs a non-empty 'start' list")
    for i, vars in enumerate(start):
        _check_vars(vars, f"{where}: start[{i}]")
    try:
        if store_target is None or store_target in ("memory", "mem"):
            store = TraceStore(
                len(start),
                start_vars=start,
                proc_names=rec.get("proc_names"),
                start_times=rec.get("start_times"),
            )
        else:
            backend = open_backend(
                store_target,
                n=len(start),
                start_vars=start,
                proc_names=rec.get("proc_names"),
                start_times=rec.get("start_times"),
            )
            if backend.num_states != backend.n:
                backend.close()
                raise StorageError(
                    f"{store_target} already holds a trace body; ingest "
                    f"into a fresh database or fork a branch"
                )
            store = TraceStore(backend=backend)
    except MalformedTraceError as exc:
        raise MalformedTraceError(f"{where}: {exc}") from exc
    store.obs = None
    return store


def apply_stream_record(
    store: TraceStore, rec: Dict[str, Any], where: str
) -> str:
    """Apply one parsed non-header record to ``store``; returns its kind.

    ``"ev"``/``"recv"`` append a state, ``"ctl"`` inserts a control arrow,
    ``"obs"`` lands on ``store.obs``.  Malformed records raise
    :class:`MalformedTraceError` prefixed with ``where``.  This is the
    single application path shared by :func:`ingest_event_stream` and the
    serving layer (one session = one store fed through here).
    """
    if not isinstance(rec, dict):
        _stream_fail(where, f"expected an object, got {rec!r}")
    kind = rec.get("t")
    try:
        if kind == "ev" or kind == "recv":
            proc = rec.get("p")
            if not isinstance(proc, int) or isinstance(proc, bool):
                _stream_fail(where, f"'p' must be a process index, got {proc!r}")
            kwargs: Dict[str, Any] = {"time": rec.get("time")}
            if "vars" in rec:
                kwargs["vars"] = _check_vars(rec["vars"], f"{where}: vars")
            else:
                kwargs["updates"] = _check_vars(rec.get("u", {}), f"{where}: u")
            if kind == "recv":
                kwargs["received_from"] = _check_ref(
                    rec.get("src"), f"{where}: src"
                )
                kwargs["payload"] = rec.get("payload")
                kwargs["tag"] = rec.get("tag")
            updates = kwargs.pop("updates", None)
            store.append_state(proc, updates, **kwargs)
        elif kind == "ctl":
            store.append_control(
                _check_ref(rec.get("src"), f"{where}: src"),
                _check_ref(rec.get("dst"), f"{where}: dst"),
            )
        elif kind == "obs":
            store.obs = rec.get("obs")
        else:
            _stream_fail(where, f"unknown record type {kind!r}")
    except MalformedTraceError as exc:
        prefix = where.split(":", 1)[0]
        if prefix and str(exc).startswith(prefix):
            raise
        raise MalformedTraceError(f"{where}: {exc}") from exc
    return kind


def ingest_event_stream(
    path: Union[str, Path],
    store_target: Optional[str] = None,
) -> Iterator[Tuple[TraceStore, Dict[str, Any]]]:
    """Incrementally ingest a ``repro-events/1`` stream.

    Yields ``(store, record)`` after the header (record = the header) and
    after each applied record, so a consumer can re-detect over the
    appended suffix between records (``repro watch``).  The same store
    object is yielded every time; the trailing ``"obs"`` block, when
    present, is left on ``store`` as the attribute ``obs``.
    ``store_target`` selects the storage engine (see
    :func:`stream_store_from_header`); commit the store when done to
    persist the chain.

    Malformed records raise :class:`MalformedTraceError` carrying
    ``file:line``; a partial record on the *final* line (no trailing
    newline -- the writer crashed or is still appending) raises the
    narrower :class:`~repro.errors.TruncatedStreamError` so tailing
    consumers can wait for the rest instead of aborting.
    """
    path = Path(path)
    with open(path) as fh:
        store: Optional[TraceStore] = None
        lineno = 0
        while True:
            raw = fh.readline()
            if raw == "":
                break
            lineno += 1
            where = f"{path}:{lineno}"
            line = raw.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                if not raw.endswith("\n"):
                    raise TruncatedStreamError(
                        f"{where}: truncated record at end of stream "
                        f"({exc}); the writer may still be appending",
                        lineno=lineno,
                    ) from exc
                raise MalformedTraceError(f"{where}: not valid JSON ({exc})") from exc
            if not isinstance(rec, dict):
                _stream_fail(where, f"expected an object, got {rec!r}")
            if store is None:
                store = stream_store_from_header(rec, where, store_target)
            else:
                apply_stream_record(store, rec, where)
            yield store, rec
        if store is None:
            raise MalformedTraceError(f"{path}: empty stream (no header)")


def read_event_stream(
    path: Union[str, Path],
    store_target: Optional[str] = None,
) -> Tuple[TraceStore, Optional[Dict[str, Any]]]:
    """Read a whole ``repro-events/1`` stream into a :class:`TraceStore`.

    Returns ``(store, obs)`` where ``obs`` is the trailing observability
    block (``None`` when absent).  ``store_target`` selects the storage
    engine (see :func:`stream_store_from_header`).
    """
    store: Optional[TraceStore] = None
    for store, _rec in ingest_event_stream(path, store_target):
        pass
    return store, store.obs


def sniff_trace_format(path: Union[str, Path]) -> str:
    """``"repro-deposet/1"`` or ``"repro-events/1"``, from the file head.

    Ambiguous input raises :class:`~repro.errors.UnknownTraceFormatError`
    naming both candidate formats rather than guessing: an empty file, a
    non-JSON head that cannot be the opening of a pretty-printed batch
    document, or a JSON head whose ``"format"`` matches neither.
    """
    path = Path(path)
    with open(path) as fh:
        first = fh.readline().strip()
        while not first:
            line = fh.readline()
            if not line:
                raise UnknownTraceFormatError(
                    f"{path}: empty file; expected a {FORMAT!r} JSON document "
                    f"or a {STREAM_FORMAT!r} event stream"
                )
            first = line.strip()
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        # A pretty-printed batch document spreads its object over many
        # lines, so the head parses only once it looks like an opening
        # brace; anything else is neither format.
        if first.startswith("{"):
            return FORMAT
        raise UnknownTraceFormatError(
            f"{path}: file head {first[:40]!r} is neither a {FORMAT!r} JSON "
            f"document nor a {STREAM_FORMAT!r} event stream header"
        ) from None
    if isinstance(head, dict):
        fmt = head.get("format")
        if fmt == STREAM_FORMAT:
            return STREAM_FORMAT
        if fmt == FORMAT:
            return FORMAT
        raise UnknownTraceFormatError(
            f"{path}: unknown trace format {fmt!r}; expected {FORMAT!r} "
            f"(batch JSON) or {STREAM_FORMAT!r} (event stream)"
        )
    raise UnknownTraceFormatError(
        f"{path}: file head is {type(head).__name__}, not an object; "
        f"expected a {FORMAT!r} JSON document or a {STREAM_FORMAT!r} "
        f"event stream header"
    )
