"""JSON (de)serialisation of deposets.

The schema is deliberately plain so traces can be produced by external
tracers and inspected by hand:

.. code-block:: json

    {
      "format": "repro-deposet/1",
      "proc_names": ["P0", "P1"],
      "states": [[{"x": 1}, {"x": 2}], [{}]],
      "messages": [{"src": [0, 0], "dst": [1, 1], "tag": null}],
      "control": [[[0, 1], [1, 2]]],
      "timestamps": null,
      "obs": {"metrics": {"counters": {"sim.runs": 1}}}
    }

Payloads are serialised only when JSON-representable; otherwise they are
dropped with a ``repr`` placeholder (payloads are never semantically
meaningful to the algorithms).

The optional ``"obs"`` block carries observability metadata from the run
that produced the trace (a :mod:`repro.obs` metrics snapshot, recording
paths, ...).  The format tag stays ``repro-deposet/1``: readers that
predate the block ignore unknown keys, and this reader accepts traces
with or without it (:func:`load_deposet_meta` returns it alongside the
deposet; :func:`load_deposet` keeps the deposet-only signature).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.causality.relations import StateRef
from repro.errors import MalformedTraceError
from repro.trace.deposet import Deposet
from repro.trace.states import MessageArrow

__all__ = [
    "deposet_to_dict",
    "deposet_from_dict",
    "dump_deposet",
    "load_deposet",
    "load_deposet_meta",
]

FORMAT = "repro-deposet/1"


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return {"__repr__": repr(value)}


def deposet_to_dict(
    dep: Deposet, obs: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """A JSON-ready dictionary describing ``dep``.

    ``obs``, when given, is attached verbatim as the trace's ``"obs"``
    observability block (e.g. ``{"metrics": METRICS.snapshot()}``).
    """
    out = {
        "format": FORMAT,
        "proc_names": list(dep.proc_names),
        "states": [
            [{k: _jsonable(v) for k, v in vars.items()} for vars in dep.proc_states(i)]
            for i in range(dep.n)
        ],
        "messages": [
            {
                "src": [m.src.proc, m.src.index],
                "dst": [m.dst.proc, m.dst.index],
                "tag": m.tag,
                "payload": _jsonable(m.payload),
            }
            for m in dep.messages
        ],
        "control": [
            [[a.proc, a.index], [b.proc, b.index]] for a, b in dep.control_arrows
        ],
        "timestamps": (
            [list(row) for row in dep.timestamps] if dep.timestamps else None
        ),
    }
    if obs is not None:
        out["obs"] = obs
    return out


def deposet_from_dict(data: Dict[str, Any]) -> Deposet:
    """Rebuild a deposet from :func:`deposet_to_dict` output."""
    if data.get("format") != FORMAT:
        raise MalformedTraceError(
            f"unknown trace format {data.get('format')!r}; expected {FORMAT!r}"
        )
    messages = [
        MessageArrow(
            StateRef(*m["src"]),
            StateRef(*m["dst"]),
            payload=m.get("payload"),
            tag=m.get("tag"),
        )
        for m in data["messages"]
    ]
    control = [
        (StateRef(*a), StateRef(*b)) for a, b in data.get("control", [])
    ]
    return Deposet(
        data["states"],
        messages,
        control,
        proc_names=data.get("proc_names"),
        timestamps=data.get("timestamps"),
    )


def dump_deposet(
    dep: Deposet, path: Union[str, Path], obs: Optional[Dict[str, Any]] = None
) -> None:
    """Write ``dep`` to ``path`` as JSON (with an optional ``obs`` block)."""
    Path(path).write_text(json.dumps(deposet_to_dict(dep, obs=obs), indent=1))


def load_deposet(path: Union[str, Path]) -> Deposet:
    """Read a deposet written by :func:`dump_deposet`."""
    return deposet_from_dict(json.loads(Path(path).read_text()))


def load_deposet_meta(
    path: Union[str, Path],
) -> Tuple[Deposet, Optional[Dict[str, Any]]]:
    """Read a deposet plus its ``"obs"`` block (``None`` when absent)."""
    data = json.loads(Path(path).read_text())
    return deposet_from_dict(data), data.get("obs")
