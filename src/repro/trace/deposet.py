"""The deposet: a traced distributed computation.

``Deposet`` is an immutable value: all mutation happens through
:class:`~repro.trace.builder.ComputationBuilder` (hand-built traces), the
simulator's recorder (executed traces), or :meth:`Deposet.with_control`
(extension by a control relation, yielding the paper's *controlled
deposet*).
"""

from __future__ import annotations

from functools import cached_property
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.causality.relations import CausalOrder, CycleError, StateRef
from repro.errors import InterferenceError, MalformedTraceError
from repro.store.columns import ColumnBlock, pack_block
from repro.store.index import CausalIndex
from repro.trace.states import Event, EventKind, MessageArrow

__all__ = ["Deposet"]

ControlArrow = Tuple[StateRef, StateRef]


class Deposet:
    """A distributed computation as a decomposed partially-ordered set.

    Parameters
    ----------
    vars_by_state:
        ``vars_by_state[i][a]`` is the variable assignment (a mapping) of
        local state ``a`` of process ``i``.  Process ``i`` has
        ``len(vars_by_state[i])`` states; the first is its start state
        ``bottom_i`` and the last its final state ``top_i``.
    messages:
        The *remotely precedes* arrows (see :class:`MessageArrow`).
    control_arrows:
        Extra causal arrows from a control relation; a deposet with a
        nonempty control relation is a *controlled deposet*.  The arrows
        must not interfere with (create a cycle in) the underlying
        causality; violations raise :class:`~repro.errors.InterferenceError`.
    proc_names:
        Optional human-readable process names (defaults to ``P0..P{n-1}``).
    timestamps:
        Optional per-state wall-clock times from a simulator run, same
        shape as ``vars_by_state``.

    Raises
    ------
    MalformedTraceError
        On violations of D1--D3 or a cyclic message relation.
    InterferenceError
        When ``control_arrows`` interfere with the underlying causality.
    """

    __slots__ = (
        "_vars",
        "_messages",
        "_control",
        "_names",
        "_timestamps",
        "__dict__",  # for cached_property
    )

    def __init__(
        self,
        vars_by_state: Sequence[Sequence[Mapping[str, Any]]],
        messages: Iterable[MessageArrow] = (),
        control_arrows: Iterable[ControlArrow] = (),
        proc_names: Optional[Sequence[str]] = None,
        timestamps: Optional[Sequence[Sequence[float]]] = None,
    ):
        if len(vars_by_state) == 0:
            raise MalformedTraceError("a computation needs at least one process")
        self._vars: Tuple[Tuple[Dict[str, Any], ...], ...] = tuple(
            tuple(dict(v) for v in proc_states) for proc_states in vars_by_state
        )
        for i, proc_states in enumerate(self._vars):
            if len(proc_states) == 0:
                raise MalformedTraceError(f"process {i} has no states")
        self._messages: Tuple[MessageArrow, ...] = tuple(
            m if isinstance(m, MessageArrow) else MessageArrow(*m) for m in messages
        )
        # Control arrows are deduped: a repeated arrow adds no causality
        # but would inflate the event graph and the obs arrow counters.
        control: List[ControlArrow] = []
        seen_control = set()
        for a, b in control_arrows:
            arrow = (StateRef(*a), StateRef(*b))
            if arrow not in seen_control:
                seen_control.add(arrow)
                control.append(arrow)
        self._control: Tuple[ControlArrow, ...] = tuple(control)
        if proc_names is not None and len(proc_names) != len(self._vars):
            raise MalformedTraceError(
                f"{len(proc_names)} names for {len(self._vars)} processes"
            )
        self._names: Tuple[str, ...] = (
            tuple(proc_names)
            if proc_names is not None
            else tuple(f"P{i}" for i in range(len(self._vars)))
        )
        self._timestamps = (
            tuple(tuple(float(t) for t in row) for row in timestamps)
            if timestamps is not None
            else None
        )
        if self._timestamps is not None:
            for i, row in enumerate(self._timestamps):
                if len(row) != len(self._vars[i]):
                    raise MalformedTraceError(
                        f"timestamps for process {i} have {len(row)} entries "
                        f"for {len(self._vars[i])} states"
                    )
        self._validate_messages()
        # Force causality construction so malformed traces fail eagerly.
        self.order

    # -- shape -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes."""
        return len(self._vars)

    @cached_property
    def state_counts(self) -> Tuple[int, ...]:
        """``m_i`` for each process.

        Cached: profiling showed the per-call tuple rebuild dominating the
        off-line algorithm's inner loop (the deposet is immutable, so
        caching is safe).
        """
        return tuple(len(proc_states) for proc_states in self._vars)

    @property
    def num_states(self) -> int:
        """Total local states across all processes."""
        return sum(self.state_counts)

    @property
    def proc_names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def messages(self) -> Tuple[MessageArrow, ...]:
        return self._messages

    @property
    def control_arrows(self) -> Tuple[ControlArrow, ...]:
        return self._control

    @property
    def timestamps(self):
        return self._timestamps

    def bottom(self, proc: int) -> StateRef:
        """The start state ``bottom_proc``."""
        return StateRef(proc, 0)

    def top(self, proc: int) -> StateRef:
        """The final state ``top_proc``."""
        return StateRef(proc, len(self._vars[proc]) - 1)

    def is_bottom(self, ref: StateRef) -> bool:
        return ref.index == 0

    def is_top(self, ref: StateRef) -> bool:
        return ref.index == len(self._vars[ref.proc]) - 1

    # -- state content -----------------------------------------------------

    def state_vars(self, ref: StateRef | Tuple[int, int]) -> Dict[str, Any]:
        """The variable assignment of a local state (do not mutate)."""
        proc, index = ref
        return self._vars[proc][index]

    def proc_states(self, proc: int) -> Tuple[Dict[str, Any], ...]:
        """All variable assignments of one process, in execution order."""
        return self._vars[proc]

    def column_block(self, proc: int, names: Sequence[str]) -> ColumnBlock:
        """Packed numpy columns of the named variables of ``proc`` (cached).

        The vectorised truth-table kernels read these instead of walking
        state dicts.  Snapshots share the owning store's cache, so a
        detect loop over a growing trace packs each (variables, prefix)
        combination once; ``with_control`` derivatives share too (the
        state columns are causality-independent).
        """
        states = self._vars[proc]
        key = (proc, tuple(names), len(states))
        cache = self.__dict__.get("_column_cache")
        if cache is None:
            cache = self.__dict__["_column_cache"] = {}
        block = cache.get(key)
        if block is None:
            block = pack_block(states[: key[2]], key[1])
            cache[key] = block
        return block

    # -- derived structure ---------------------------------------------------

    @cached_property
    def events(self) -> Tuple[Tuple[Event, ...], ...]:
        """Per-process event sequences, derived from the message arrows."""
        roles: Dict[Tuple[int, int], Tuple[EventKind, int]] = {}
        for mi, msg in enumerate(self._messages):
            send_ev = (msg.src.proc, msg.src.index)
            recv_ev = (msg.dst.proc, msg.dst.index - 1)
            for ev, kind in ((send_ev, EventKind.SEND), (recv_ev, EventKind.RECEIVE)):
                if ev in roles:
                    raise MalformedTraceError(
                        f"event {ev} participates in two messages "
                        f"(D3 / one message per event)"
                    )
                roles[ev] = (kind, mi)
        out: List[Tuple[Event, ...]] = []
        for i, proc_states in enumerate(self._vars):
            evs = []
            for k in range(len(proc_states) - 1):
                kind, mi = roles.get((i, k), (EventKind.LOCAL, None))
                evs.append(Event(i, k, kind, mi))
            out.append(tuple(evs))
        return tuple(out)

    @cached_property
    def base_order(self) -> CausalOrder:
        """Happened-before of the *underlying* computation (no control)."""
        return CausalIndex(
            self.state_counts,
            [(m.src, m.dst) for m in self._messages],
            appendable=False,
        )

    @cached_property
    def order(self) -> CausalOrder:
        """Happened-before of the (possibly extended) computation."""
        if not self._control:
            return self.base_order
        try:
            return self.base_order.extended(self._control)
        except CycleError as exc:
            raise InterferenceError(
                "control relation interferes with causality", cycle=exc.remaining
            ) from exc

    # -- validation ----------------------------------------------------------

    def _validate_messages(self) -> None:
        counts = self.state_counts
        seen_events: Dict[Tuple[int, int], MessageArrow] = {}
        for msg in self._messages:
            for ref in (msg.src, msg.dst):
                if not (0 <= ref.proc < self.n):
                    raise MalformedTraceError(f"{msg!r}: no process {ref.proc}")
                if not (0 <= ref.index < counts[ref.proc]):
                    raise MalformedTraceError(f"{msg!r}: no state {ref!r}")
            if msg.dst.index < 1:
                raise MalformedTraceError(
                    f"{msg!r}: received before the initial state (D1)"
                )
            if msg.src.index > counts[msg.src.proc] - 2:
                raise MalformedTraceError(
                    f"{msg!r}: sent after the final state (D2)"
                )
            for ev in ((msg.src.proc, msg.src.index), (msg.dst.proc, msg.dst.index - 1)):
                if ev in seen_events:
                    raise MalformedTraceError(
                        f"event {ev} used by both {seen_events[ev]!r} and {msg!r} "
                        f"(D3 / one message per event)"
                    )
                seen_events[ev] = msg
        for a, b in self._control:
            for ref in (a, b):
                if not (0 <= ref.proc < self.n):
                    raise MalformedTraceError(f"control arrow endpoint {ref!r}: no process")
                if not (0 <= ref.index < counts[ref.proc]):
                    raise MalformedTraceError(f"control arrow endpoint {ref!r}: no state")

    # -- derivation ----------------------------------------------------------

    def with_control(self, arrows: Iterable[ControlArrow]) -> "Deposet":
        """The controlled deposet: this computation plus a control relation.

        The new arrows are *appended* to any existing control relation
        (duplicates are dropped -- a repeated arrow adds no causality).
        Raises :class:`~repro.errors.InterferenceError` if the union
        interferes with the underlying causality.

        The extended causality is derived **incrementally** from this
        deposet's order (only the downstream cone of each new arrow is
        recomputed), so a controller's build-verify loop does not pay a
        full Kahn pass per arrow.
        """
        seen = set(self._control)
        fresh: List[ControlArrow] = []
        for a, b in arrows:
            arrow = (StateRef(*a), StateRef(*b))
            if arrow not in seen:
                seen.add(arrow)
                fresh.append(arrow)
        if not fresh:
            return self
        new = object.__new__(Deposet)
        new._vars = self._vars
        new._messages = self._messages
        new._control = self._control + tuple(fresh)
        new._names = self._names
        new._timestamps = self._timestamps
        # Seed the order cache incrementally; endpoint validation (D1/D2,
        # existence) and interference checks happen here, eagerly, exactly
        # as in the batch constructor path.
        try:
            new.__dict__["order"] = self.order.extended(fresh)
        except CycleError as exc:
            raise InterferenceError(
                "control relation interferes with causality", cycle=exc.remaining
            ) from exc
        if "base_order" in self.__dict__:
            new.__dict__["base_order"] = self.__dict__["base_order"]
        if "state_counts" in self.__dict__:
            new.__dict__["state_counts"] = self.__dict__["state_counts"]
        if "_column_cache" in self.__dict__:
            # Same states, same columns: control arrows do not change them.
            new.__dict__["_column_cache"] = self.__dict__["_column_cache"]
        return new

    @classmethod
    def _from_store(cls, store, proc_names: Optional[Sequence[str]] = None) -> "Deposet":
        """A snapshot view over a :class:`~repro.store.TraceStore` prefix.

        Shares the store's variable dicts and arrow objects (no deep copy)
        and seeds the ``order`` cache with a frozen slice of the store's
        live :class:`~repro.store.index.CausalIndex` -- the store already
        enforced D1--D3 and acyclicity on every append, so the usual
        eager validation pass is skipped.  Private: use
        :meth:`TraceStore.snapshot`.
        """
        dep = object.__new__(cls)
        dep._vars = tuple(store.vars_prefix(i) for i in range(store.n))
        dep._messages = tuple(store.messages)
        dep._control = tuple(store.control_arrows)
        names = store.proc_names if proc_names is None else tuple(proc_names)
        if len(names) != len(dep._vars):
            raise MalformedTraceError(
                f"{len(names)} names for {len(dep._vars)} processes"
            )
        dep._names = tuple(names)
        dep._timestamps = (
            tuple(store.times_prefix(i) for i in range(store.n))
            if store.times_prefix(0) is not None
            else None
        )
        frozen = store.index.freeze()
        dep.__dict__["order"] = frozen
        dep.__dict__["state_counts"] = frozen.state_counts
        if not dep._control:
            dep.__dict__["base_order"] = frozen
        # Share the store's packed-column cache: the key includes the
        # prefix length, so blocks stay per-snapshot-correct as the store
        # keeps growing.
        dep.__dict__["_column_cache"] = store.snapshot_cache()
        return dep

    def without_control(self) -> "Deposet":
        """The underlying computation, dropping any control relation."""
        if not self._control:
            return self
        return Deposet(self._vars, self._messages, (), self._names, self._timestamps)

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Deposet):
            return NotImplemented
        return (
            self._vars == other._vars
            # message order is meaningless (D3 makes duplicates impossible)
            and frozenset(self._messages) == frozenset(other._messages)
            and frozenset(self._control) == frozenset(other._control)
        )

    def __hash__(self) -> int:
        return hash(
            (self.state_counts, frozenset(self._messages), frozenset(self._control))
        )

    def __repr__(self) -> str:
        ctrl = f", control={len(self._control)}" if self._control else ""
        return (
            f"Deposet(n={self.n}, states={self.state_counts}, "
            f"messages={len(self._messages)}{ctrl})"
        )

    def describe(self) -> str:
        """A small multi-line summary for logs and examples."""
        lines = [repr(self)]
        for i in range(self.n):
            kinds = "".join(
                {"local": ".", "send": "s", "receive": "r"}[e.kind.value]
                for e in self.events[i]
            )
            lines.append(f"  {self._names[i]}: {len(self._vars[i])} states, events [{kinds}]")
        if self._control:
            lines.append("  control: " + ", ".join(f"{a!r}->{b!r}" for a, b in self._control))
        return "\n".join(lines)
