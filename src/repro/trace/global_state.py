"""Global states, the lattice of consistent cuts, and global sequences.

A *global state* (cut) is one local state per process, represented as a
tuple of state indices.  A cut is *consistent* when its states are pairwise
concurrent; the consistent cuts ordered componentwise form a lattice
(Mattern), with the initial cut ``bottom`` and final cut ``top`` always
consistent (via D1/D2).

A *global sequence* is a ``<=``-ordered sequence of consistent cuts whose
restriction to any process yields that process's full state sequence (with
stutters): between consecutive cuts each process advances by **at most one**
state, but several processes may advance simultaneously.  Simultaneous
moves matter: they let a sequence "cut the corner" past an inconsistent or
predicate-violating intermediate cut, which is exactly why satisfying-
sequence detection (SGSD) is defined over subset moves.

Everything here is exhaustive/exponential and meant for small traces:
ground truth for the efficient algorithms, property tests, and the
NP-hardness experiments.  The efficient counterparts live in
:mod:`repro.detection`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.causality.relations import StateRef
from repro.trace.deposet import Deposet

__all__ = [
    "Cut",
    "initial_cut",
    "final_cut",
    "cut_states",
    "CutLattice",
]

Cut = Tuple[int, ...]


def initial_cut(dep: Deposet) -> Cut:
    """The cut ``bottom = (bottom_1, ..., bottom_n)``."""
    return (0,) * dep.n


def final_cut(dep: Deposet) -> Cut:
    """The cut ``top = (top_1, ..., top_n)``."""
    return tuple(m - 1 for m in dep.state_counts)


def cut_states(cut: Cut) -> Tuple[StateRef, ...]:
    """The cut's states as :class:`StateRef` values."""
    return tuple(StateRef(i, a) for i, a in enumerate(cut))


class CutLattice:
    """Exhaustive navigation of a deposet's consistent-cut lattice.

    Consistency is evaluated against ``dep.order`` -- i.e. including any
    control arrows -- so the same class checks controlled deposets.
    """

    def __init__(self, dep: Deposet):
        self.dep = dep
        self._order = dep.order
        self._counts = dep.state_counts
        self.n = dep.n

    # -- point queries -------------------------------------------------------

    def is_consistent(self, cut: Cut) -> bool:
        return self._order.is_consistent_cut(cut)

    # -- neighbourhood -------------------------------------------------------

    def successors(self, cut: Cut) -> Iterator[Cut]:
        """Consistent cuts covering ``cut``: advance exactly one process."""
        for i in range(self.n):
            if cut[i] + 1 < self._counts[i]:
                nxt = cut[:i] + (cut[i] + 1,) + cut[i + 1 :]
                if self._advance_ok(cut, nxt, (i,)):
                    yield nxt

    def subset_successors(self, cut: Cut) -> Iterator[Cut]:
        """Consistent cuts reached by advancing a nonempty *subset* of
        processes one state each -- the legal steps of a global sequence.
        """
        movable = [i for i in range(self.n) if cut[i] + 1 < self._counts[i]]
        for r in range(1, len(movable) + 1):
            for subset in combinations(movable, r):
                nxt = list(cut)
                for i in subset:
                    nxt[i] += 1
                t = tuple(nxt)
                if self._advance_ok(cut, t, subset):
                    yield t

    def _advance_ok(self, cut: Cut, nxt: Cut, moved: Sequence[int]) -> bool:
        # Incremental consistency: assuming `cut` is consistent, only the
        # freshly-entered states can introduce a violation (a stationary
        # state's constraint V(cut[j])[i] < cut[i] only slackens when i
        # advances), so checking the clock rows of the moved states against
        # all components of `nxt` suffices.
        for i in moved:
            row = self._order.clock((i, nxt[i]))
            for j in range(self.n):
                if j != i and row[j] >= nxt[j]:
                    return False
        return True

    # -- global enumeration ----------------------------------------------------

    def iter_consistent_cuts(self) -> Iterator[Cut]:
        """All consistent cuts, in lexicographic order.

        Complete by construction: components are assigned process by
        process, pruning as soon as two assigned states are causally
        ordered.  (Under the strict state-based consistency semantics the
        consistent cuts are *not* graded -- advancing one process at a time
        from ``bottom`` can miss cuts that require two processes to move
        together -- so a BFS would be incomplete.)
        """
        counts = self._counts
        order = self._order
        n = self.n
        cut: List[int] = [0] * n

        def assign(j: int) -> Iterator[Cut]:
            if j == n:
                yield tuple(cut)
                return
            for b in range(counts[j]):
                row = order.clock((j, b))
                ok = True
                for i in range(j):
                    if row[i] >= cut[i] or order.clock((i, cut[i]))[j] >= b:
                        ok = False
                        break
                if ok:
                    cut[j] = b
                    yield from assign(j + 1)
            cut[j] = 0

        yield from assign(0)

    def consistent_cuts(self) -> List[Cut]:
        return list(self.iter_consistent_cuts())

    def count_consistent_cuts(self) -> int:
        return sum(1 for _ in self.iter_consistent_cuts())

    # -- global sequences --------------------------------------------------------

    def iter_global_sequences(
        self, max_sequences: Optional[int] = None
    ) -> Iterator[Tuple[Cut, ...]]:
        """Enumerate stutter-free global sequences (DFS, exponential).

        A stutter-free sequence moves a nonempty subset of processes at each
        step; re-inserting stutters never changes which cuts a sequence
        visits, so this is the canonical representative set.
        """
        start = initial_cut(self.dep)
        goal = final_cut(self.dep)
        emitted = 0

        def dfs(cut: Cut, prefix: List[Cut]) -> Iterator[Tuple[Cut, ...]]:
            nonlocal emitted
            if cut == goal:
                yield tuple(prefix)
                emitted += 1
                return
            for nxt in self.subset_successors(cut):
                if max_sequences is not None and emitted >= max_sequences:
                    return
                prefix.append(nxt)
                yield from dfs(nxt, prefix)
                prefix.pop()

        yield from dfs(start, [start])

    def all_sequences_satisfy(self, pred: Callable[[Cut], bool]) -> bool:
        """Do all *consistent cuts* satisfy ``pred``?

        Sequences visit only consistent cuts, so this soundly implies that
        every global sequence satisfies ``pred`` at every cut (it may be
        slightly conservative: under the strict state semantics a consistent
        cut is not guaranteed to lie on a complete sequence).
        """
        return all(pred(cut) for cut in self.iter_consistent_cuts())

    def exists_satisfying_sequence(
        self, pred: Callable[[Cut], bool], moves: str = "subset"
    ) -> bool:
        """Is there a global sequence all of whose cuts satisfy ``pred``?

        This is exhaustive SGSD with memoisation on cuts: reachability of
        ``top`` from ``bottom`` through pred-satisfying consistent cuts.
        ``moves="subset"`` uses the paper's sequence semantics (several
        processes may advance at once); ``moves="single"`` restricts to one
        process per step -- the sequences a control strategy can actually
        enforce.
        """
        return self.find_satisfying_sequence(pred, moves=moves) is not None

    def find_satisfying_sequence(
        self, pred: Callable[[Cut], bool], moves: str = "subset"
    ) -> Optional[List[Cut]]:
        """A witness sequence for :meth:`exists_satisfying_sequence`."""
        if moves not in ("subset", "single"):
            raise ValueError(f"unknown move semantics {moves!r}")
        successors = (
            self.subset_successors if moves == "subset" else self.successors
        )
        start = initial_cut(self.dep)
        goal = final_cut(self.dep)
        if not pred(start) or not pred(goal):
            return None
        # Iterative DFS with a dead-set; path reconstruction via parents.
        parents: Dict[Cut, Optional[Cut]] = {start: None}
        stack: List[Cut] = [start]
        while stack:
            cut = stack.pop()
            if cut == goal:
                path = [cut]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for nxt in successors(cut):
                if nxt not in parents and pred(nxt):
                    parents[nxt] = cut
                    stack.append(nxt)
        return None
