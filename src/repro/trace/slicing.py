"""Trace slicing: truncate a computation at a consistent cut.

``prefix_at(dep, cut)`` keeps, per process, the states up to and including
``cut[i]``.  For a *consistent* cut this is again a valid deposet: no kept
receive can depend on a dropped send (that is what consistency says), and
messages crossing the cut forward (sent inside, received outside) simply
degrade to local events -- they are the "in transit" messages recovery
must replay from logs, and they are returned alongside the slice.

Typical uses: analysing only the computation up to a failure point, or
shrinking a huge trace around a detected violation before exhaustive
inspection.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import MalformedTraceError
from repro.trace.deposet import Deposet
from repro.trace.states import MessageArrow

__all__ = ["prefix_at"]


def prefix_at(
    dep: Deposet, cut: Sequence[int]
) -> Tuple[Deposet, Tuple[MessageArrow, ...]]:
    """The sub-computation up to (and including) ``cut``.

    Parameters
    ----------
    cut:
        One state index per process; must be a consistent global state of
        ``dep`` (otherwise the slice would contain a receive whose send was
        cut away).

    Returns
    -------
    (slice, in_transit):
        The truncated deposet (control arrows inside the cut are kept) and
        the messages that crossed the cut forward.
    """
    if len(cut) != dep.n:
        raise ValueError(f"cut has {len(cut)} entries for {dep.n} processes")
    for i, c in enumerate(cut):
        if not (0 <= c < dep.state_counts[i]):
            raise ValueError(f"cut component {c} outside process {i}")
    if not dep.order.is_consistent_cut(cut):
        raise MalformedTraceError(
            f"cannot slice at inconsistent cut {tuple(cut)}"
        )
    states = [
        list(dep.proc_states(i))[: cut[i] + 1] for i in range(dep.n)
    ]
    kept: List[MessageArrow] = []
    in_transit: List[MessageArrow] = []
    for msg in dep.messages:
        sent_inside = msg.src.index < cut[msg.src.proc]  # send event kept
        received_inside = msg.dst.index <= cut[msg.dst.proc]
        if sent_inside and received_inside:
            kept.append(msg)
        elif sent_inside:
            in_transit.append(msg)
        # consistency precludes received_inside without sent_inside
    control = [
        (a, b)
        for a, b in dep.control_arrows
        if a.index < cut[a.proc] and b.index <= cut[b.proc]
    ]
    timestamps = (
        [list(row)[: cut[i] + 1] for i, row in enumerate(dep.timestamps)]
        if dep.timestamps
        else None
    )
    sliced = Deposet(
        states, kept, control, proc_names=list(dep.proc_names),
        timestamps=timestamps,
    )
    return sliced, tuple(in_transit)
