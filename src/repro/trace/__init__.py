"""The deposet (decomposed partially-ordered set) trace model.

This package implements Section 3 of the paper: local states and events,
message arrows (*remotely precedes*), the D1--D3 well-formedness
constraints, consistent global states, the lattice of consistent cuts,
global sequences, plus a builder DSL and two JSON trace formats (the
batch ``repro-deposet/1`` document and the line-delimited
``repro-events/1`` stream for incremental ingestion).

A :class:`~repro.trace.deposet.Deposet` is the universal currency of the
library: the simulator records one, detection algorithms analyse one, the
off-line control algorithm consumes one and emits a *controlled* one (the
same deposet extended with control arrows), and the replay engine executes
one.
"""

from repro.trace.states import EventKind, Event, MessageArrow
from repro.trace.deposet import Deposet
from repro.trace.builder import ComputationBuilder
from repro.trace.global_state import (
    CutLattice,
    initial_cut,
    final_cut,
    cut_states,
)
from repro.trace.io import (
    deposet_to_dict,
    deposet_from_dict,
    dump_deposet,
    load_deposet,
    load_deposet_meta,
    StreamWriter,
    write_event_stream,
    ingest_event_stream,
    read_event_stream,
    sniff_trace_format,
)
from repro.trace.render import render_deposet
from repro.trace.stats import DeposetStats, deposet_stats
from repro.trace.slicing import prefix_at

__all__ = [
    "EventKind",
    "Event",
    "MessageArrow",
    "Deposet",
    "ComputationBuilder",
    "CutLattice",
    "initial_cut",
    "final_cut",
    "cut_states",
    "deposet_to_dict",
    "deposet_from_dict",
    "dump_deposet",
    "load_deposet",
    "load_deposet_meta",
    "StreamWriter",
    "write_event_stream",
    "ingest_event_stream",
    "read_event_stream",
    "sniff_trace_format",
    "render_deposet",
    "DeposetStats",
    "deposet_stats",
    "prefix_at",
]
