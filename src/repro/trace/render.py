"""ASCII space-time diagrams of deposets.

Renders the classic distributed-computation picture -- one horizontal line
per process, message arrows between them -- in plain text, optionally
highlighting the false-intervals of a predicate (the paper's "thicker
intervals") and the control arrows of a controlled deposet.  Used by the
examples and by :meth:`DebugSession.describe`-style inspection; purely a
presentation helper, no algorithmic content.

Layout: local states are placed at columns aligned across processes by a
global topological time (each state's column is one past the maximum
column of its causal predecessors), so arrows always point rightwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.causality.relations import StateRef
from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.intervals import local_truth_table
from repro.trace.deposet import Deposet

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.findings import Finding

__all__ = ["render_deposet"]

_CELL = 4  # characters per column


def _columns(dep: Deposet) -> List[List[int]]:
    """Column index per state, topologically consistent."""
    cols: List[List[int]] = [[0] * m for m in dep.state_counts]
    # incoming arrows per state
    incoming: Dict[Tuple[int, int], List[StateRef]] = {}
    for msg in dep.messages:
        incoming.setdefault((msg.dst.proc, msg.dst.index), []).append(msg.src)
    for src, dst in dep.control_arrows:
        incoming.setdefault((dst.proc, dst.index), []).append(src)

    changed = True
    while changed:  # few iterations: arrows are acyclic
        changed = False
        for i in range(dep.n):
            for a in range(dep.state_counts[i]):
                col = 0
                if a > 0:
                    col = cols[i][a - 1] + 1
                for src in incoming.get((i, a), ()):
                    col = max(col, cols[src.proc][src.index] + 1)
                if col > cols[i][a]:
                    cols[i][a] = col
                    changed = True
    return cols


def render_deposet(
    dep: Deposet,
    predicate: Optional[DisjunctivePredicate] = None,
    show_vars: Optional[str] = None,
    findings: Optional[Sequence["Finding"]] = None,
) -> str:
    """Render ``dep`` as an ASCII space-time diagram.

    Parameters
    ----------
    predicate:
        When given, states where the process's local predicate is false are
        drawn ``#`` (the paper's thick intervals) instead of ``o``.
    show_vars:
        Name of a boolean variable to annotate instead of a predicate
        (``#`` where falsy).
    findings:
        Lint findings (:mod:`repro.analysis`) to overlay: every witness
        state is marked ``!`` under its column, and each finding is
        listed below the arrows as ``rule_id: message``.

    Returns a multi-line string; one row per process, ``o``/``#`` for
    states, ``s``/``r`` marking send/receive columns underneath, and one
    line per message/control arrow (they are listed, not drawn, to keep the
    diagram readable at any size).
    """
    cols = _columns(dep)
    width = max(c for row in cols for c in row) + 1

    truth = None
    if predicate is not None:
        truth = local_truth_table(dep, predicate)

    flagged: Dict[int, List[int]] = {}
    if findings:
        for f in findings:
            for p, a in f.states:
                if 0 <= p < dep.n and 0 <= a < dep.state_counts[p]:
                    flagged.setdefault(p, []).append(a)

    name_w = max(len(name) for name in dep.proc_names)
    lines: List[str] = []
    for i in range(dep.n):
        row = [" "] * (width * _CELL)
        prev_col = None
        for a, col in enumerate(cols[i]):
            pos = col * _CELL
            good = True
            if truth is not None:
                good = bool(truth[i][a])
            elif show_vars is not None:
                good = bool(dep.state_vars((i, a)).get(show_vars, False))
            row[pos] = "o" if good else "#"
            if prev_col is not None:
                fill = "-" if truth is None and show_vars is None else (
                    "-" if good else "="
                )
                for p in range(prev_col * _CELL + 1, pos):
                    row[p] = fill
            prev_col = col
        lines.append(f"{dep.proc_names[i]:>{name_w}} {''.join(row).rstrip()}")
        if i in flagged:
            marks = [" "] * (width * _CELL)
            for a in flagged[i]:
                marks[cols[i][a] * _CELL] = "!"
            lines.append(f"{'':>{name_w}} {''.join(marks).rstrip()}")

    arrow_lines = []
    for msg in dep.messages:
        tag = f" [{msg.tag}]" if msg.tag else ""
        arrow_lines.append(
            f"  msg  {dep.proc_names[msg.src.proc]}:{msg.src.index}"
            f" ~> {dep.proc_names[msg.dst.proc]}:{msg.dst.index}{tag}"
        )
    for src, dst in dep.control_arrows:
        arrow_lines.append(
            f"  ctl  {dep.proc_names[src.proc]}:{src.index}"
            f" C> {dep.proc_names[dst.proc]}:{dst.index}"
        )
    legend = "  (o true/state, # false state"
    legend += ", = inside a false interval" if (truth is not None or show_vars) else ""
    legend += ", ! lint witness" if flagged else ""
    legend += ")"
    finding_lines = []
    if findings:
        for f in findings:
            loc = f" at {f.location}" if f.location else ""
            finding_lines.append(f"  {f.rule_id}{loc}: {f.message}")
    return "\n".join(lines + [legend] + arrow_lines + finding_lines) + "\n"
