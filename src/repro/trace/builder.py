"""A small DSL for constructing deposets by hand.

Used throughout the tests and examples to transcribe space-time diagrams
(like the paper's Figure 4) directly into code:

>>> b = ComputationBuilder(2, start_vars=[{"avail": True}, {"avail": True}])
>>> b.local(0, avail=False)          # P0 becomes unavailable
s[0,1]
>>> m = b.send(0)                    # P0 sends a message ...
>>> _ = b.receive(1, m, avail=False) # ... P1 receives it and goes down too
>>> dep = b.build()
>>> dep.state_counts
(3, 2)

Each ``local``/``send``/``receive`` call appends one event (and hence one
new local state) to a process; keyword arguments update the process's
variables in the new state (variables persist until overwritten).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.causality.relations import StateRef
from repro.errors import MalformedTraceError
from repro.trace.deposet import Deposet
from repro.trace.states import MessageArrow

__all__ = ["ComputationBuilder", "PendingMessage"]


@dataclass
class PendingMessage:
    """Handle returned by :meth:`ComputationBuilder.send`."""

    src: StateRef
    payload: Any = None
    tag: Optional[str] = None
    delivered: bool = field(default=False, compare=False)


class ComputationBuilder:
    """Incrementally build a :class:`~repro.trace.deposet.Deposet`.

    Parameters
    ----------
    n:
        Number of processes.
    names:
        Optional process names.
    start_vars:
        Optional initial variable assignment per process (each process's
        start state); defaults to empty assignments.
    """

    def __init__(
        self,
        n: int,
        names: Optional[Sequence[str]] = None,
        start_vars: Optional[Sequence[Mapping[str, Any]]] = None,
    ):
        if n <= 0:
            raise MalformedTraceError(f"need at least one process, got n={n}")
        self.n = n
        self._names = list(names) if names is not None else None
        if start_vars is not None and len(start_vars) != n:
            raise MalformedTraceError(
                f"{len(start_vars)} start assignments for {n} processes"
            )
        self._states: List[List[Dict[str, Any]]] = [
            [dict(start_vars[i]) if start_vars is not None else {}]
            for i in range(n)
        ]
        self._messages: List[MessageArrow] = []
        self._labels: Dict[str, StateRef] = {}
        self._pending: List[PendingMessage] = []

    # -- events ------------------------------------------------------------

    def _check_proc(self, proc: int) -> None:
        if not (0 <= proc < self.n):
            raise MalformedTraceError(f"no process {proc}")

    def _append_state(self, proc: int, updates: Mapping[str, Any]) -> StateRef:
        new_vars = dict(self._states[proc][-1])
        new_vars.update(updates)
        self._states[proc].append(new_vars)
        return StateRef(proc, len(self._states[proc]) - 1)

    def local(self, proc: int, **updates: Any) -> StateRef:
        """Append a local event to ``proc``; returns the new state."""
        self._check_proc(proc)
        return self._append_state(proc, updates)

    def send(
        self,
        proc: int,
        payload: Any = None,
        tag: Optional[str] = None,
        **updates: Any,
    ) -> PendingMessage:
        """Append a send event to ``proc``; deliver later with :meth:`receive`."""
        self._check_proc(proc)
        src = StateRef(proc, len(self._states[proc]) - 1)
        self._append_state(proc, updates)
        pending = PendingMessage(src=src, payload=payload, tag=tag)
        self._pending.append(pending)
        return pending

    def receive(
        self, proc: int, message: PendingMessage, **updates: Any
    ) -> StateRef:
        """Append a receive event for a previously-sent message."""
        self._check_proc(proc)
        if message.delivered:
            raise MalformedTraceError("message already delivered")
        if message.src.proc == proc:
            raise MalformedTraceError("a process cannot receive its own message")
        dst = self._append_state(proc, updates)
        message.delivered = True
        self._messages.append(
            MessageArrow(message.src, dst, payload=message.payload, tag=message.tag)
        )
        return dst

    def transfer(
        self,
        src_proc: int,
        dst_proc: int,
        payload: Any = None,
        tag: Optional[str] = None,
        **updates: Any,
    ) -> StateRef:
        """Shorthand: ``send`` immediately followed by the matching ``receive``.

        Variable updates apply to the *receiver*.
        """
        return self.receive(dst_proc, self.send(src_proc, payload, tag), **updates)

    # -- labels --------------------------------------------------------------

    def mark(self, proc: int, label: str) -> StateRef:
        """Attach ``label`` to the current (latest) state of ``proc``."""
        self._check_proc(proc)
        ref = StateRef(proc, len(self._states[proc]) - 1)
        self._labels[label] = ref
        return ref

    @property
    def labels(self) -> Dict[str, StateRef]:
        """Labels attached via :meth:`mark` (shared mapping)."""
        return self._labels

    def at(self, proc: int) -> StateRef:
        """The current (latest) state of ``proc``."""
        self._check_proc(proc)
        return StateRef(proc, len(self._states[proc]) - 1)

    # -- finalisation ----------------------------------------------------------

    def build(self, allow_undelivered: bool = False) -> Deposet:
        """Produce the deposet.

        Raises :class:`MalformedTraceError` if messages remain undelivered,
        unless ``allow_undelivered`` -- the paper's model has reliable
        channels, so a trace normally contains no lost messages.
        """
        undelivered = [p for p in self._pending if not p.delivered]
        if undelivered and not allow_undelivered:
            raise MalformedTraceError(
                f"{len(undelivered)} message(s) sent but never received "
                f"(first from {undelivered[0].src!r}); pass "
                f"allow_undelivered=True to model message loss"
            )
        return Deposet(self._states, self._messages, proc_names=self._names)
