"""A small DSL for constructing deposets by hand.

Used throughout the tests and examples to transcribe space-time diagrams
(like the paper's Figure 4) directly into code:

>>> b = ComputationBuilder(2, start_vars=[{"avail": True}, {"avail": True}])
>>> b.local(0, avail=False)          # P0 becomes unavailable
s[0,1]
>>> m = b.send(0)                    # P0 sends a message ...
>>> _ = b.receive(1, m, avail=False) # ... P1 receives it and goes down too
>>> dep = b.build()
>>> dep.state_counts
(3, 2)

Each ``local``/``send``/``receive`` call appends one event (and hence one
new local state) to a process; keyword arguments update the process's
variables in the new state (variables persist until overwritten).

The builder writes into an append-only
:class:`~repro.store.TraceStore` -- calls arrive in execution order,
which is a causal delivery order (a message can only be received after
:meth:`send` returned its handle), so the store's incremental index is
maintained as the trace is typed in and :meth:`build` is a snapshot, not
a batch reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.causality.relations import StateRef
from repro.errors import MalformedTraceError
from repro.store.trace_store import TraceStore
from repro.trace.deposet import Deposet

__all__ = ["ComputationBuilder", "PendingMessage"]


@dataclass
class PendingMessage:
    """Handle returned by :meth:`ComputationBuilder.send`."""

    src: StateRef
    payload: Any = None
    tag: Optional[str] = None
    delivered: bool = field(default=False, compare=False)


class ComputationBuilder:
    """Incrementally build a :class:`~repro.trace.deposet.Deposet`.

    Parameters
    ----------
    n:
        Number of processes.
    names:
        Optional process names.
    start_vars:
        Optional initial variable assignment per process (each process's
        start state); defaults to empty assignments.
    """

    def __init__(
        self,
        n: int,
        names: Optional[Sequence[str]] = None,
        start_vars: Optional[Sequence[Mapping[str, Any]]] = None,
    ):
        if n <= 0:
            raise MalformedTraceError(f"need at least one process, got n={n}")
        self.n = n
        self._names = list(names) if names is not None else None
        if start_vars is not None and len(start_vars) != n:
            raise MalformedTraceError(
                f"{len(start_vars)} start assignments for {n} processes"
            )
        self._store = TraceStore(
            n,
            start_vars=[dict(v) for v in start_vars] if start_vars is not None else None,
            proc_names=names,
        )
        self._labels: Dict[str, StateRef] = {}
        self._pending: List[PendingMessage] = []

    # -- events ------------------------------------------------------------

    @property
    def store(self) -> TraceStore:
        """The underlying append-only trace store."""
        return self._store

    def _check_proc(self, proc: int) -> None:
        if not (0 <= proc < self.n):
            raise MalformedTraceError(f"no process {proc}")

    def local(self, proc: int, **updates: Any) -> StateRef:
        """Append a local event to ``proc``; returns the new state."""
        self._check_proc(proc)
        return self._store.append_state(proc, updates)

    def send(
        self,
        proc: int,
        payload: Any = None,
        tag: Optional[str] = None,
        **updates: Any,
    ) -> PendingMessage:
        """Append a send event to ``proc``; deliver later with :meth:`receive`."""
        self._check_proc(proc)
        src = StateRef(proc, self._store.state_counts[proc] - 1)
        self._store.append_state(proc, updates)
        pending = PendingMessage(src=src, payload=payload, tag=tag)
        self._pending.append(pending)
        return pending

    def receive(
        self, proc: int, message: PendingMessage, **updates: Any
    ) -> StateRef:
        """Append a receive event for a previously-sent message."""
        self._check_proc(proc)
        if message.delivered:
            raise MalformedTraceError("message already delivered")
        if message.src.proc == proc:
            raise MalformedTraceError("a process cannot receive its own message")
        dst = self._store.append_state(
            proc, updates,
            received_from=message.src, payload=message.payload, tag=message.tag,
        )
        message.delivered = True
        return dst

    def transfer(
        self,
        src_proc: int,
        dst_proc: int,
        payload: Any = None,
        tag: Optional[str] = None,
        **updates: Any,
    ) -> StateRef:
        """Shorthand: ``send`` immediately followed by the matching ``receive``.

        Variable updates apply to the *receiver*.
        """
        return self.receive(dst_proc, self.send(src_proc, payload, tag), **updates)

    # -- labels --------------------------------------------------------------

    def mark(self, proc: int, label: str) -> StateRef:
        """Attach ``label`` to the current (latest) state of ``proc``."""
        self._check_proc(proc)
        ref = StateRef(proc, self._store.state_counts[proc] - 1)
        self._labels[label] = ref
        return ref

    @property
    def labels(self) -> Dict[str, StateRef]:
        """Labels attached via :meth:`mark` (shared mapping)."""
        return self._labels

    def at(self, proc: int) -> StateRef:
        """The current (latest) state of ``proc``."""
        self._check_proc(proc)
        return StateRef(proc, self._store.state_counts[proc] - 1)

    # -- finalisation ----------------------------------------------------------

    def build(self, allow_undelivered: bool = False) -> Deposet:
        """Produce the deposet.

        Raises :class:`MalformedTraceError` if messages remain undelivered,
        unless ``allow_undelivered`` -- the paper's model has reliable
        channels, so a trace normally contains no lost messages.
        """
        undelivered = [p for p in self._pending if not p.delivered]
        if undelivered and not allow_undelivered:
            raise MalformedTraceError(
                f"{len(undelivered)} message(s) sent but never received "
                f"(first from {undelivered[0].src!r}); pass "
                f"allow_undelivered=True to model message loss"
            )
        return self._store.snapshot()
