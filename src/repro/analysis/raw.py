"""Lenient trace parsing for the static analyzer.

The strict loaders (:func:`repro.trace.load_deposet`,
:func:`repro.trace.ingest_event_stream`) raise on the first violation of
D1--D3 or causal delivery order -- correct for consumers, useless for a
linter that must *report* every violation with a witness.  This module
parses both trace formats into a :class:`RawTrace` -- an unvalidated bag
of states, message arrows, and control arrows, each remembering where in
the input it came from (JSON path or ``file:lineno``) -- collecting
structural problems as T001/T009 findings instead of raising.

The analysis passes then check the deposet axioms over the raw trace; a
real (validated) :class:`~repro.trace.deposet.Deposet` is constructed only
once the sanitizer reports no errors, gating the deep passes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import Finding
from repro.causality.relations import StateRef
from repro.errors import UnknownTraceFormatError
from repro.trace.deposet import Deposet
from repro.trace.io import FORMAT, STREAM_FORMAT
from repro.trace.states import MessageArrow

__all__ = [
    "RawArrow",
    "RawTrace",
    "StreamParser",
    "parse_batch",
    "parse_stream",
    "parse_stream_lines",
    "load_raw",
]

Ref = Tuple[int, int]


@dataclass
class RawArrow:
    """A message or control arrow, plus where the input declared it."""

    src: Ref
    dst: Ref
    location: Optional[str] = None
    tag: Optional[str] = None
    payload: Any = None

    @property
    def pair(self) -> Tuple[Ref, Ref]:
        return (self.src, self.dst)


@dataclass
class RawTrace:
    """An unvalidated trace: shape only, no axiom enforcement."""

    source: str
    format: str
    proc_names: List[str] = field(default_factory=list)
    #: ``states[i][a]`` is the variable assignment of state ``(i, a)``.
    states: List[List[Dict[str, Any]]] = field(default_factory=list)
    messages: List[RawArrow] = field(default_factory=list)
    control: List[RawArrow] = field(default_factory=list)
    timestamps: Optional[List[List[float]]] = None
    #: Recorded vector clocks (``clocks[i][a]`` for state ``(i, a)``),
    #: when the producer emitted a ``"clocks"`` block.
    clocks: Optional[List[List[List[int]]]] = None
    obs: Optional[Dict[str, Any]] = None

    @property
    def n(self) -> int:
        return len(self.states)

    @property
    def state_counts(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self.states)

    def has_state(self, ref: Ref) -> bool:
        proc, index = ref
        return 0 <= proc < self.n and 0 <= index < len(self.states[proc])

    def to_deposet(self) -> Deposet:
        """A validated deposet (raises on axiom violations -- call only
        after the sanitizer reported no errors)."""
        return Deposet(
            self.states,
            [
                MessageArrow(
                    StateRef(*m.src), StateRef(*m.dst),
                    payload=m.payload, tag=m.tag,
                )
                for m in self.messages
            ],
            [(StateRef(*c.src), StateRef(*c.dst)) for c in self.control],
            proc_names=self.proc_names or None,
            timestamps=self.timestamps,
        )


def _t001(location: Optional[str], message: str) -> Finding:
    return Finding("T001", message, location=location)


def _ref(value: Any) -> Optional[Ref]:
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(c, int) and not isinstance(c, bool) for c in value)
    ):
        return (value[0], value[1])
    return None


# -- batch documents ---------------------------------------------------------


def parse_batch(
    data: Any, source: str = "<trace>"
) -> Tuple[Optional[RawTrace], List[Finding]]:
    """Leniently parse a ``repro-deposet/1`` document.

    Returns ``(raw, findings)``; ``raw`` is ``None`` only when the
    document is too broken to analyse at all (not an object, or no usable
    ``states`` list).  Broken messages/arrows are reported and skipped,
    the rest of the trace is still analysed.
    """
    findings: List[Finding] = []
    if not isinstance(data, dict):
        return None, [_t001(None, f"expected a trace object, got {type(data).__name__}")]
    fmt = data.get("format")
    if fmt != FORMAT:
        findings.append(
            _t001("format", f"unknown trace format {fmt!r}; expected {FORMAT!r}")
        )
    states_in = data.get("states")
    if not isinstance(states_in, list) or not states_in:
        findings.append(
            _t001("states", "expected a non-empty list of per-process state lists")
        )
        return None, findings
    states: List[List[Dict[str, Any]]] = []
    for i, proc_states in enumerate(states_in):
        if not isinstance(proc_states, list) or not proc_states:
            findings.append(
                _t001(f"states[{i}]", "expected a non-empty list of variable objects")
            )
            states.append([{}])
            continue
        row: List[Dict[str, Any]] = []
        for a, vars in enumerate(proc_states):
            if not isinstance(vars, dict):
                findings.append(
                    _t001(
                        f"states[{i}][{a}]",
                        f"expected an object of variables, got {vars!r}",
                    )
                )
                vars = {}
            row.append(vars)
        states.append(row)
    raw = RawTrace(source=source, format=FORMAT, states=states)

    names = data.get("proc_names")
    if names is not None:
        if isinstance(names, list) and len(names) == len(states):
            raw.proc_names = [str(x) for x in names]
        else:
            findings.append(
                _t001("proc_names", f"expected {len(states)} names, got {names!r}")
            )
    for k, m in enumerate(data.get("messages") or ()):
        path = f"messages[{k}]"
        if not isinstance(m, dict):
            findings.append(_t001(path, f"expected an object, got {m!r}"))
            continue
        src, dst = _ref(m.get("src")), _ref(m.get("dst"))
        if src is None or dst is None:
            findings.append(
                _t001(path, "needs 'src' and 'dst' [process, state] pairs")
            )
            continue
        raw.messages.append(
            RawArrow(src, dst, location=path, tag=m.get("tag"), payload=m.get("payload"))
        )
    for k, arrow in enumerate(data.get("control") or ()):
        path = f"control[{k}]"
        pair = (
            arrow if isinstance(arrow, (list, tuple)) and len(arrow) == 2 else (None, None)
        )
        src, dst = _ref(pair[0]), _ref(pair[1])
        if src is None or dst is None:
            findings.append(_t001(path, f"expected a [src, dst] pair, got {arrow!r}"))
            continue
        raw.control.append(RawArrow(src, dst, location=path))

    ts = data.get("timestamps")
    if ts is not None:
        ok = isinstance(ts, list) and len(ts) == len(states)
        if ok:
            for i, row in enumerate(ts):
                if (
                    not isinstance(row, list)
                    or len(row) != len(states[i])
                    or not all(
                        isinstance(t, (int, float)) and not isinstance(t, bool)
                        for t in row
                    )
                ):
                    findings.append(
                        _t001(f"timestamps[{i}]", f"bad timestamp row {row!r}")
                    )
                    ok = False
        else:
            findings.append(
                _t001("timestamps", f"expected {len(states)} per-process rows")
            )
        if ok:
            raw.timestamps = [[float(t) for t in row] for row in ts]

    clocks = data.get("clocks")
    if clocks is not None:
        ok = isinstance(clocks, list) and len(clocks) == len(states)
        if ok:
            for i, row in enumerate(clocks):
                if (
                    not isinstance(row, list)
                    or len(row) != len(states[i])
                    or not all(
                        isinstance(v, list)
                        and len(v) == len(states)
                        and all(isinstance(c, int) and not isinstance(c, bool) for c in v)
                        for v in row
                    )
                ):
                    findings.append(
                        _t001(
                            f"clocks[{i}]",
                            f"expected {len(states[i])} vectors of {len(states)} ints",
                        )
                    )
                    ok = False
        else:
            findings.append(_t001("clocks", f"expected {len(states)} per-process rows"))
        if ok:
            raw.clocks = clocks
    raw.obs = data.get("obs")
    return raw, findings


# -- event streams -----------------------------------------------------------


class StreamParser:
    """Incremental lenient parser for ``repro-events/1`` streams.

    The single source of truth for the stream-side lenient-parse
    semantics: :func:`parse_stream` drains a file through one instance,
    and the online linter (:mod:`repro.analysis.incremental`) keeps one
    as its *mirror* -- feeding the same records produces, by
    construction, exactly the :class:`RawTrace` and parse findings a
    batch re-parse of the prefix would.

    Mirrors :func:`repro.trace.ingest_event_stream` but collects
    findings instead of raising: structural problems are T001, records
    that break causal delivery order (an arrow whose source event has
    not completed at the time its target record arrives -- the contract
    :class:`~repro.store.index.CausalIndex` enforces on append) are
    T009.  Every witness carries ``source:lineno``.

    After each :meth:`feed_line`/:meth:`feed_record` call the
    ``delta_*`` attributes name the states and arrows that call
    appended, so an incremental consumer can react in O(delta).
    """

    def __init__(self, source: str = "<stream>") -> None:
        self.source = source
        self.raw: Optional[RawTrace] = None
        self.findings: List[Finding] = []
        self.vars_now: List[Dict[str, Any]] = []
        #: a header was seen but unusable; the batch parser stops there
        self.dead = False
        self.lineno = 0
        #: ``(proc, index)`` states appended by the last feed call
        self.delta_states: List[Ref] = []
        #: message arrows appended by the last feed call
        self.delta_messages: List[RawArrow] = []
        #: control arrows appended by the last feed call
        self.delta_control: List[RawArrow] = []

    def feed_line(
        self, line: str, where: Optional[str] = None
    ) -> List[Finding]:
        """Parse one raw stream line; returns the findings it produced."""
        self.lineno += 1
        if where is None:
            where = f"{self.source}:{self.lineno}"
        self.delta_states = []
        self.delta_messages = []
        self.delta_control = []
        if self.dead:
            return []
        line = line.strip()
        if not line:
            return []
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._emit(_t001(where, f"not valid JSON ({exc})"))
        return self._feed(rec, where)

    def feed_record(
        self, rec: Any, where: Optional[str] = None
    ) -> List[Finding]:
        """Parse one already-decoded record (``dict``); same contract as
        :meth:`feed_line` minus the JSON decode."""
        self.lineno += 1
        if where is None:
            where = f"{self.source}:{self.lineno}"
        self.delta_states = []
        self.delta_messages = []
        self.delta_control = []
        if self.dead:
            return []
        return self._feed(rec, where)

    def _emit(self, *found: Finding) -> List[Finding]:
        self.findings.extend(found)
        return list(found)

    def _feed(self, rec: Any, where: str) -> List[Finding]:
        out: List[Finding] = []
        if not isinstance(rec, dict):
            return self._emit(_t001(where, f"expected an object, got {rec!r}"))
        if self.raw is None:
            return self._feed_header(rec, where)
        raw = self.raw
        kind = rec.get("t")
        if kind in ("ev", "recv"):
            proc = rec.get("p")
            if (
                not isinstance(proc, int)
                or isinstance(proc, bool)
                or not (0 <= proc < raw.n)
            ):
                return self._emit(
                    _t001(where, f"'p' must be a process index, got {proc!r}")
                )
            if "vars" in rec:
                new = rec["vars"] if isinstance(rec["vars"], dict) else {}
                if not isinstance(rec["vars"], dict):
                    out.append(_t001(where, "vars: expected an object"))
                self.vars_now[proc] = dict(new)
            else:
                u = rec.get("u", {})
                if not isinstance(u, dict):
                    out.append(_t001(where, f"u: expected an object, got {u!r}"))
                    u = {}
                self.vars_now[proc] = {**self.vars_now[proc], **u}
            raw.states[proc].append(dict(self.vars_now[proc]))
            new_index = len(raw.states[proc]) - 1
            self.delta_states.append((proc, new_index))
            if raw.timestamps is not None:
                t = rec.get("time")
                if isinstance(t, (int, float)) and not isinstance(t, bool):
                    raw.timestamps[proc].append(float(t))
                else:
                    raw.timestamps = None  # incomplete -- drop the channel
            if kind == "recv":
                src = _ref(rec.get("src"))
                if src is None:
                    out.append(
                        _t001(where, "src: expected a [process, state] pair")
                    )
                    return self._emit(*out)
                arrow = RawArrow(
                    src, (proc, new_index), location=where,
                    tag=rec.get("tag"), payload=rec.get("payload"),
                )
                raw.messages.append(arrow)
                self.delta_messages.append(arrow)
                _check_delivery_order(raw, arrow, "message", where, out)
        elif kind == "ctl":
            src, dst = _ref(rec.get("src")), _ref(rec.get("dst"))
            if src is None or dst is None:
                return self._emit(
                    _t001(where, "needs 'src' and 'dst' [process, state] pairs")
                )
            arrow = RawArrow(src, dst, location=where)
            raw.control.append(arrow)
            self.delta_control.append(arrow)
            _check_delivery_order(raw, arrow, "control arrow", where, out)
        elif kind == "obs":
            raw.obs = rec.get("obs")
        else:
            out.append(_t001(where, f"unknown record type {kind!r}"))
        return self._emit(*out)

    def _feed_header(self, rec: Dict[str, Any], where: str) -> List[Finding]:
        out: List[Finding] = []
        if rec.get("format") != STREAM_FORMAT:
            out.append(
                _t001(
                    where,
                    f"unknown stream format {rec.get('format')!r}; "
                    f"expected {STREAM_FORMAT!r}",
                )
            )
        start = rec.get("start")
        if not isinstance(start, list) or not start:
            out.append(_t001(where, "header needs a non-empty 'start' list"))
            self.dead = True
            return self._emit(*out)
        self.vars_now = [dict(v) if isinstance(v, dict) else {} for v in start]
        for i, v in enumerate(start):
            if not isinstance(v, dict):
                out.append(
                    _t001(where, f"start[{i}]: expected an object, got {v!r}")
                )
        raw = RawTrace(
            source=self.source,
            format=STREAM_FORMAT,
            states=[[dict(v)] for v in self.vars_now],
        )
        names = rec.get("proc_names")
        if isinstance(names, list) and len(names) == len(self.vars_now):
            raw.proc_names = [str(x) for x in names]
        times = rec.get("start_times")
        if isinstance(times, list) and len(times) == len(self.vars_now):
            raw.timestamps = [[float(t)] for t in times]
        self.raw = raw
        self.delta_states = [(i, 0) for i in range(raw.n)]
        return self._emit(*out)

    def finish(self) -> Tuple[Optional[RawTrace], List[Finding]]:
        """End of input: the raw trace plus *all* accumulated findings
        (identical to a one-shot :func:`parse_stream` of the same lines)."""
        if self.raw is None and not self.dead:
            self.findings.append(_t001(self.source, "empty stream (no header)"))
            self.dead = True  # idempotent finish
        return self.raw, self.findings

    # -- state capture (the serve layer checkpoints its mirror) --------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable parser state (findings are *not* included --
        they are owned by whoever accumulated them)."""
        raw_blob: Optional[Dict[str, Any]] = None
        if self.raw is not None:
            raw = self.raw
            raw_blob = {
                "source": raw.source,
                "format": raw.format,
                "proc_names": list(raw.proc_names),
                "states": raw.states,
                "messages": [
                    {"src": list(m.src), "dst": list(m.dst),
                     "location": m.location, "tag": m.tag,
                     "payload": m.payload}
                    for m in raw.messages
                ],
                "control": [
                    {"src": list(c.src), "dst": list(c.dst),
                     "location": c.location}
                    for c in raw.control
                ],
                "timestamps": raw.timestamps,
                "obs": raw.obs,
            }
        return {
            "source": self.source,
            "raw": raw_blob,
            "vars_now": self.vars_now,
            "dead": self.dead,
            "lineno": self.lineno,
        }

    @classmethod
    def restore(cls, snap: Dict[str, Any]) -> "StreamParser":
        parser = cls(source=str(snap.get("source", "<stream>")))
        parser.dead = bool(snap.get("dead", False))
        parser.lineno = int(snap.get("lineno", 0))
        parser.vars_now = [dict(v) for v in snap.get("vars_now", ())]
        blob = snap.get("raw")
        if blob is not None:
            raw = RawTrace(
                source=str(blob["source"]),
                format=str(blob["format"]),
                proc_names=[str(x) for x in blob.get("proc_names", ())],
                states=[[dict(v) for v in row] for row in blob["states"]],
                timestamps=blob.get("timestamps"),
                obs=blob.get("obs"),
            )
            for m in blob.get("messages", ()):
                raw.messages.append(RawArrow(
                    (m["src"][0], m["src"][1]), (m["dst"][0], m["dst"][1]),
                    location=m.get("location"), tag=m.get("tag"),
                    payload=m.get("payload"),
                ))
            for c in blob.get("control", ()):
                raw.control.append(RawArrow(
                    (c["src"][0], c["src"][1]), (c["dst"][0], c["dst"][1]),
                    location=c.get("location"),
                ))
            parser.raw = raw
        return parser


def parse_stream(
    path: Union[str, Path]
) -> Tuple[Optional[RawTrace], List[Finding]]:
    """Leniently parse a ``repro-events/1`` stream file.

    One-shot wrapper over :class:`StreamParser`; see there for the
    semantics (T001 for structural problems, T009 for causal
    delivery-order violations, every witness carrying ``file:lineno``).
    """
    path = Path(path)
    parser = StreamParser(source=str(path))
    with open(path) as fh:
        for line in fh:
            parser.feed_line(line)
    return parser.finish()


def parse_stream_lines(
    lines: Sequence[str], source: str = "<stream>"
) -> Tuple[Optional[RawTrace], List[Finding]]:
    """Leniently parse an in-memory sequence of stream lines (the
    prefix-identity tests re-parse every prefix through this)."""
    parser = StreamParser(source=source)
    for line in lines:
        parser.feed_line(line)
    return parser.finish()


def _check_delivery_order(
    raw: RawTrace,
    arrow: RawArrow,
    what: str,
    where: str,
    findings: List[Finding],
) -> None:
    """T009 when ``arrow`` references a state that has not been streamed
    yet at this point (the :meth:`CausalIndex.append_event` contract: a
    cross-process arrow source must have *completed* -- index at most
    ``counts[src.proc] - 2`` -- before its target record arrives).

    Out-of-range process indices and same-process arrows are left to the
    sanitizer (T005/T006); negative indices can never become valid and are
    likewise T005 territory.
    """
    (sp, si), (dp, di) = arrow.src, arrow.dst
    if sp == dp or not (0 <= sp < raw.n) or not (0 <= dp < raw.n):
        return
    if si < 0 or di < 0:
        return
    counts = raw.state_counts
    problems = []
    if si > counts[sp] - 2:
        problems.append(f"source event at ({sp},{si}) has not completed")
    if di > counts[dp] - 1:
        problems.append(f"target state ({dp},{di}) has not been streamed")
    if problems:
        findings.append(
            Finding(
                "T009",
                f"{what} ({sp},{si}) -> ({dp},{di}): "
                + "; ".join(problems)
                + " (causal delivery order)",
                location=where,
                states=((sp, si), (dp, di)),
                arrows=(((sp, si), (dp, di)),),
            )
        )


# -- entry point -------------------------------------------------------------


def load_raw(
    path: Union[str, Path]
) -> Tuple[Optional[RawTrace], str, List[Finding]]:
    """Sniff, then leniently parse ``path``.

    Returns ``(raw, format, findings)``.  Unreadable/unrecognisable files
    produce a ``None`` raw trace with a T001 finding rather than raising
    (except for OS-level errors, which propagate).
    """
    from repro.trace.io import sniff_trace_format

    path = Path(path)
    try:
        fmt = sniff_trace_format(path)
    except UnknownTraceFormatError as exc:
        return None, "unknown", [_t001(str(path), str(exc))]
    if fmt == STREAM_FORMAT:
        raw, findings = parse_stream(path)
        return raw, fmt, findings
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return None, fmt, [_t001(str(path), f"not valid JSON ({exc})")]
    raw, findings = parse_batch(data, source=str(path))
    return raw, fmt, findings
