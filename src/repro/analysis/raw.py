"""Lenient trace parsing for the static analyzer.

The strict loaders (:func:`repro.trace.load_deposet`,
:func:`repro.trace.ingest_event_stream`) raise on the first violation of
D1--D3 or causal delivery order -- correct for consumers, useless for a
linter that must *report* every violation with a witness.  This module
parses both trace formats into a :class:`RawTrace` -- an unvalidated bag
of states, message arrows, and control arrows, each remembering where in
the input it came from (JSON path or ``file:lineno``) -- collecting
structural problems as T001/T009 findings instead of raising.

The analysis passes then check the deposet axioms over the raw trace; a
real (validated) :class:`~repro.trace.deposet.Deposet` is constructed only
once the sanitizer reports no errors, gating the deep passes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.findings import Finding
from repro.causality.relations import StateRef
from repro.errors import UnknownTraceFormatError
from repro.trace.deposet import Deposet
from repro.trace.io import FORMAT, STREAM_FORMAT
from repro.trace.states import MessageArrow

__all__ = ["RawArrow", "RawTrace", "parse_batch", "parse_stream", "load_raw"]

Ref = Tuple[int, int]


@dataclass
class RawArrow:
    """A message or control arrow, plus where the input declared it."""

    src: Ref
    dst: Ref
    location: Optional[str] = None
    tag: Optional[str] = None
    payload: Any = None

    @property
    def pair(self) -> Tuple[Ref, Ref]:
        return (self.src, self.dst)


@dataclass
class RawTrace:
    """An unvalidated trace: shape only, no axiom enforcement."""

    source: str
    format: str
    proc_names: List[str] = field(default_factory=list)
    #: ``states[i][a]`` is the variable assignment of state ``(i, a)``.
    states: List[List[Dict[str, Any]]] = field(default_factory=list)
    messages: List[RawArrow] = field(default_factory=list)
    control: List[RawArrow] = field(default_factory=list)
    timestamps: Optional[List[List[float]]] = None
    #: Recorded vector clocks (``clocks[i][a]`` for state ``(i, a)``),
    #: when the producer emitted a ``"clocks"`` block.
    clocks: Optional[List[List[List[int]]]] = None
    obs: Optional[Dict[str, Any]] = None

    @property
    def n(self) -> int:
        return len(self.states)

    @property
    def state_counts(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self.states)

    def has_state(self, ref: Ref) -> bool:
        proc, index = ref
        return 0 <= proc < self.n and 0 <= index < len(self.states[proc])

    def to_deposet(self) -> Deposet:
        """A validated deposet (raises on axiom violations -- call only
        after the sanitizer reported no errors)."""
        return Deposet(
            self.states,
            [
                MessageArrow(
                    StateRef(*m.src), StateRef(*m.dst),
                    payload=m.payload, tag=m.tag,
                )
                for m in self.messages
            ],
            [(StateRef(*c.src), StateRef(*c.dst)) for c in self.control],
            proc_names=self.proc_names or None,
            timestamps=self.timestamps,
        )


def _t001(location: Optional[str], message: str) -> Finding:
    return Finding("T001", message, location=location)


def _ref(value: Any) -> Optional[Ref]:
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(c, int) and not isinstance(c, bool) for c in value)
    ):
        return (value[0], value[1])
    return None


# -- batch documents ---------------------------------------------------------


def parse_batch(
    data: Any, source: str = "<trace>"
) -> Tuple[Optional[RawTrace], List[Finding]]:
    """Leniently parse a ``repro-deposet/1`` document.

    Returns ``(raw, findings)``; ``raw`` is ``None`` only when the
    document is too broken to analyse at all (not an object, or no usable
    ``states`` list).  Broken messages/arrows are reported and skipped,
    the rest of the trace is still analysed.
    """
    findings: List[Finding] = []
    if not isinstance(data, dict):
        return None, [_t001(None, f"expected a trace object, got {type(data).__name__}")]
    fmt = data.get("format")
    if fmt != FORMAT:
        findings.append(
            _t001("format", f"unknown trace format {fmt!r}; expected {FORMAT!r}")
        )
    states_in = data.get("states")
    if not isinstance(states_in, list) or not states_in:
        findings.append(
            _t001("states", "expected a non-empty list of per-process state lists")
        )
        return None, findings
    states: List[List[Dict[str, Any]]] = []
    for i, proc_states in enumerate(states_in):
        if not isinstance(proc_states, list) or not proc_states:
            findings.append(
                _t001(f"states[{i}]", "expected a non-empty list of variable objects")
            )
            states.append([{}])
            continue
        row: List[Dict[str, Any]] = []
        for a, vars in enumerate(proc_states):
            if not isinstance(vars, dict):
                findings.append(
                    _t001(
                        f"states[{i}][{a}]",
                        f"expected an object of variables, got {vars!r}",
                    )
                )
                vars = {}
            row.append(vars)
        states.append(row)
    raw = RawTrace(source=source, format=FORMAT, states=states)

    names = data.get("proc_names")
    if names is not None:
        if isinstance(names, list) and len(names) == len(states):
            raw.proc_names = [str(x) for x in names]
        else:
            findings.append(
                _t001("proc_names", f"expected {len(states)} names, got {names!r}")
            )
    for k, m in enumerate(data.get("messages") or ()):
        path = f"messages[{k}]"
        if not isinstance(m, dict):
            findings.append(_t001(path, f"expected an object, got {m!r}"))
            continue
        src, dst = _ref(m.get("src")), _ref(m.get("dst"))
        if src is None or dst is None:
            findings.append(
                _t001(path, "needs 'src' and 'dst' [process, state] pairs")
            )
            continue
        raw.messages.append(
            RawArrow(src, dst, location=path, tag=m.get("tag"), payload=m.get("payload"))
        )
    for k, arrow in enumerate(data.get("control") or ()):
        path = f"control[{k}]"
        pair = (
            arrow if isinstance(arrow, (list, tuple)) and len(arrow) == 2 else (None, None)
        )
        src, dst = _ref(pair[0]), _ref(pair[1])
        if src is None or dst is None:
            findings.append(_t001(path, f"expected a [src, dst] pair, got {arrow!r}"))
            continue
        raw.control.append(RawArrow(src, dst, location=path))

    ts = data.get("timestamps")
    if ts is not None:
        ok = isinstance(ts, list) and len(ts) == len(states)
        if ok:
            for i, row in enumerate(ts):
                if (
                    not isinstance(row, list)
                    or len(row) != len(states[i])
                    or not all(
                        isinstance(t, (int, float)) and not isinstance(t, bool)
                        for t in row
                    )
                ):
                    findings.append(
                        _t001(f"timestamps[{i}]", f"bad timestamp row {row!r}")
                    )
                    ok = False
        else:
            findings.append(
                _t001("timestamps", f"expected {len(states)} per-process rows")
            )
        if ok:
            raw.timestamps = [[float(t) for t in row] for row in ts]

    clocks = data.get("clocks")
    if clocks is not None:
        ok = isinstance(clocks, list) and len(clocks) == len(states)
        if ok:
            for i, row in enumerate(clocks):
                if (
                    not isinstance(row, list)
                    or len(row) != len(states[i])
                    or not all(
                        isinstance(v, list)
                        and len(v) == len(states)
                        and all(isinstance(c, int) and not isinstance(c, bool) for c in v)
                        for v in row
                    )
                ):
                    findings.append(
                        _t001(
                            f"clocks[{i}]",
                            f"expected {len(states[i])} vectors of {len(states)} ints",
                        )
                    )
                    ok = False
        else:
            findings.append(_t001("clocks", f"expected {len(states)} per-process rows"))
        if ok:
            raw.clocks = clocks
    raw.obs = data.get("obs")
    return raw, findings


# -- event streams -----------------------------------------------------------


def parse_stream(
    path: Union[str, Path]
) -> Tuple[Optional[RawTrace], List[Finding]]:
    """Leniently parse a ``repro-events/1`` stream.

    Mirrors :func:`repro.trace.ingest_event_stream` but collects findings
    instead of raising: structural problems are T001, records that break
    causal delivery order (an arrow whose source event has not completed
    at the time its target record arrives -- the contract
    :class:`~repro.store.index.CausalIndex` enforces on append) are T009.
    Every witness carries ``file:lineno``.
    """
    path = Path(path)
    findings: List[Finding] = []
    raw: Optional[RawTrace] = None
    vars_now: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                findings.append(_t001(where, f"not valid JSON ({exc})"))
                continue
            if not isinstance(rec, dict):
                findings.append(_t001(where, f"expected an object, got {rec!r}"))
                continue
            if raw is None:
                if rec.get("format") != STREAM_FORMAT:
                    findings.append(
                        _t001(
                            where,
                            f"unknown stream format {rec.get('format')!r}; "
                            f"expected {STREAM_FORMAT!r}",
                        )
                    )
                start = rec.get("start")
                if not isinstance(start, list) or not start:
                    findings.append(_t001(where, "header needs a non-empty 'start' list"))
                    return None, findings
                vars_now = [
                    dict(v) if isinstance(v, dict) else {} for v in start
                ]
                for i, v in enumerate(start):
                    if not isinstance(v, dict):
                        findings.append(
                            _t001(where, f"start[{i}]: expected an object, got {v!r}")
                        )
                raw = RawTrace(
                    source=str(path),
                    format=STREAM_FORMAT,
                    states=[[dict(v)] for v in vars_now],
                )
                names = rec.get("proc_names")
                if isinstance(names, list) and len(names) == len(vars_now):
                    raw.proc_names = [str(x) for x in names]
                times = rec.get("start_times")
                if isinstance(times, list) and len(times) == len(vars_now):
                    raw.timestamps = [[float(t)] for t in times]
                continue
            kind = rec.get("t")
            if kind in ("ev", "recv"):
                proc = rec.get("p")
                if (
                    not isinstance(proc, int)
                    or isinstance(proc, bool)
                    or not (0 <= proc < raw.n)
                ):
                    findings.append(
                        _t001(where, f"'p' must be a process index, got {proc!r}")
                    )
                    continue
                if "vars" in rec:
                    new = rec["vars"] if isinstance(rec["vars"], dict) else {}
                    if not isinstance(rec["vars"], dict):
                        findings.append(_t001(where, "vars: expected an object"))
                    vars_now[proc] = dict(new)
                else:
                    u = rec.get("u", {})
                    if not isinstance(u, dict):
                        findings.append(_t001(where, f"u: expected an object, got {u!r}"))
                        u = {}
                    vars_now[proc] = {**vars_now[proc], **u}
                raw.states[proc].append(dict(vars_now[proc]))
                new_index = len(raw.states[proc]) - 1
                if raw.timestamps is not None:
                    t = rec.get("time")
                    if isinstance(t, (int, float)) and not isinstance(t, bool):
                        raw.timestamps[proc].append(float(t))
                    else:
                        raw.timestamps = None  # incomplete -- drop the channel
                if kind == "recv":
                    src = _ref(rec.get("src"))
                    if src is None:
                        findings.append(
                            _t001(where, "src: expected a [process, state] pair")
                        )
                        continue
                    arrow = RawArrow(
                        src, (proc, new_index), location=where,
                        tag=rec.get("tag"), payload=rec.get("payload"),
                    )
                    raw.messages.append(arrow)
                    _check_delivery_order(raw, arrow, "message", where, findings)
            elif kind == "ctl":
                src, dst = _ref(rec.get("src")), _ref(rec.get("dst"))
                if src is None or dst is None:
                    findings.append(
                        _t001(where, "needs 'src' and 'dst' [process, state] pairs")
                    )
                    continue
                arrow = RawArrow(src, dst, location=where)
                raw.control.append(arrow)
                _check_delivery_order(raw, arrow, "control arrow", where, findings)
            elif kind == "obs":
                raw.obs = rec.get("obs")
            else:
                findings.append(_t001(where, f"unknown record type {kind!r}"))
    if raw is None:
        findings.append(_t001(str(path), "empty stream (no header)"))
    return raw, findings


def _check_delivery_order(
    raw: RawTrace,
    arrow: RawArrow,
    what: str,
    where: str,
    findings: List[Finding],
) -> None:
    """T009 when ``arrow`` references a state that has not been streamed
    yet at this point (the :meth:`CausalIndex.append_event` contract: a
    cross-process arrow source must have *completed* -- index at most
    ``counts[src.proc] - 2`` -- before its target record arrives).

    Out-of-range process indices and same-process arrows are left to the
    sanitizer (T005/T006); negative indices can never become valid and are
    likewise T005 territory.
    """
    (sp, si), (dp, di) = arrow.src, arrow.dst
    if sp == dp or not (0 <= sp < raw.n) or not (0 <= dp < raw.n):
        return
    if si < 0 or di < 0:
        return
    counts = raw.state_counts
    problems = []
    if si > counts[sp] - 2:
        problems.append(f"source event at ({sp},{si}) has not completed")
    if di > counts[dp] - 1:
        problems.append(f"target state ({dp},{di}) has not been streamed")
    if problems:
        findings.append(
            Finding(
                "T009",
                f"{what} ({sp},{si}) -> ({dp},{di}): "
                + "; ".join(problems)
                + " (causal delivery order)",
                location=where,
                states=((sp, si), (dp, di)),
                arrows=(((sp, si), (dp, di)),),
            )
        )


# -- entry point -------------------------------------------------------------


def load_raw(
    path: Union[str, Path]
) -> Tuple[Optional[RawTrace], str, List[Finding]]:
    """Sniff, then leniently parse ``path``.

    Returns ``(raw, format, findings)``.  Unreadable/unrecognisable files
    produce a ``None`` raw trace with a T001 finding rather than raising
    (except for OS-level errors, which propagate).
    """
    from repro.trace.io import sniff_trace_format

    path = Path(path)
    try:
        fmt = sniff_trace_format(path)
    except UnknownTraceFormatError as exc:
        return None, "unknown", [_t001(str(path), str(exc))]
    if fmt == STREAM_FORMAT:
        raw, findings = parse_stream(path)
        return raw, fmt, findings
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return None, fmt, [_t001(str(path), f"not valid JSON ({exc})")]
    raw, findings = parse_batch(data, source=str(path))
    return raw, fmt, findings
