"""Reporters: render a lint :class:`Report` as text, JSON, or SARIF.

The text form is for terminals (one block per finding, witnesses
inline); the JSON form (``repro-lint/1``) is the stable machine surface
pinned by tests; SARIF 2.1.0 is the minimal subset code-review tooling
ingests (rule metadata on the driver, one result per finding, physical
locations for ``file:lineno`` witnesses and logical locations for JSON
paths).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.analysis.findings import RULES, Finding, Report, Severity

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

LINT_FORMAT = "repro-lint/1"


def render_text(report: Report) -> str:
    lines: List[str] = [f"{report.source} ({report.format})"]
    if not report.findings:
        lines.append("  clean: no findings")
    for f in sorted(
        report.findings, key=lambda f: (-int(f.severity), f.rule_id)
    ):
        loc = f" at {f.location}" if f.location else ""
        lines.append(f"  {f.rule_id} [{f.severity}]{loc}")
        lines.append(f"      {f.message}")
        if f.states:
            refs = ", ".join(f"({p},{a})" for p, a in f.states)
            lines.append(f"      witness states: {refs}")
        if f.rule.autofix:
            lines.append(f"      fix: {f.rule.autofix}")
    lines.append(report.summary())
    if report.skipped:
        lines.append(
            "skipped passes: " + ", ".join(report.skipped)
        )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    doc: Dict[str, Any] = {
        "format": LINT_FORMAT,
        "source": report.source,
        "trace_format": report.format,
        "passes": report.passes,
        "skipped": report.skipped,
        "findings": [f.to_dict() for f in report.findings],
        "summary": {
            "errors": report.errors,
            "warnings": report.warnings,
            "info": report.count(Severity.INFO),
        },
    }
    return json.dumps(doc, indent=1)


_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_FILE_LINE = re.compile(r"^(?P<file>.*):(?P<line>\d+)$")


def _sarif_location(finding: Finding) -> List[Dict[str, Any]]:
    if not finding.location:
        return []
    m = _FILE_LINE.match(finding.location)
    if m:
        return [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": m.group("file")},
                    "region": {"startLine": int(m.group("line"))},
                }
            }
        ]
    return [
        {
            "logicalLocations": [
                {"fullyQualifiedName": finding.location, "kind": "member"}
            ]
        }
    ]


#: Rule documentation anchors emitted as SARIF ``helpUri`` (stable per
#: rule id; viewers link findings to the catalogue section).
_HELP_URI = "https://example.invalid/repro/docs/ANALYSIS.md#{rid}"


def render_sarif(report: Report) -> str:
    from repro.analysis.fingerprint import FP_FORMAT, fingerprint

    used = sorted({f.rule_id for f in report.findings})
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": RULES[rid].summary},
            "helpUri": _HELP_URI.format(rid=rid.lower()),
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[RULES[rid].severity]
            },
            "properties": {"category": RULES[rid].category},
        }
        for rid in used
    ]
    # partialFingerprints reuse the baseline system's content addresses
    # (location-independent), so SARIF diffing across runs matches what
    # `repro lint --baseline` would report as new.
    fp_key = FP_FORMAT.replace("/", "-v")
    results = [
        {
            "ruleId": f.rule_id,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": _sarif_location(f),
            "partialFingerprints": {fp_key: fingerprint(f)},
            "properties": {
                "states": [list(s) for s in f.states],
                "arrows": [[list(a), list(b)] for a, b in f.arrows],
            },
        }
        for f in report.findings
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "artifacts": [{"location": {"uri": report.source}}],
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=1)


REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
