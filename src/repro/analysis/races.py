"""Pass 4: the message-race detector (rules R301--R303).

Races -- concurrent operations whose relative order the trace fixed
arbitrarily -- are the classic source of the unstable bugs predicate
control exists to reproduce (Netzer & Miller's message-race model).  All
three rules are warnings: a race is not a defect of the *trace*, it is
the place where a re-run may diverge from it.

* **R301** write races: two concurrent local states assign the same
  variable name on different processes.  "Assigns" means the value
  changed when the state was entered, so mere possession of a variable
  does not race.
* **R302** racing receives: two messages delivered to the same process
  whose *send* states are concurrent -- the receiver's delivery order
  was a coin flip.
* **R303** crossed sends: two processes message each other from
  concurrent states -- the canonical symmetric race.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding
from repro.trace.deposet import Deposet

__all__ = ["detect_races"]

Ref = Tuple[int, int]

#: Cap on witness pairs spelled out per variable (R301); the finding's
#: ``data`` always carries the total.
_MAX_WITNESSES = 3


def _writes(dep: Deposet) -> Dict[str, List[Ref]]:
    """Variable name -> states that changed it, across all processes.

    Initial states do not count as writes: every pair of initial states
    is concurrent, so counting initialisation would flag any shared
    variable name on every trace.  A write is a state whose entry
    changed the value (or introduced the name mid-run).
    """
    out: Dict[str, List[Ref]] = {}
    for i in range(dep.n):
        states = dep.proc_states(i)
        for a in range(1, len(states)):
            prev, vars = states[a - 1], states[a]
            for name, value in vars.items():
                if name not in prev or prev[name] != value:
                    out.setdefault(name, []).append((i, a))
    return out


def detect_races(dep: Deposet) -> List[Finding]:
    """Run every race rule over the underlying computation of ``dep``."""
    findings: List[Finding] = []
    order = dep.base_order

    # R301: concurrent writes to one variable name.
    for name, writers in sorted(_writes(dep).items()):
        racy: List[Tuple[Ref, Ref]] = []
        for a, b in combinations(writers, 2):
            if a[0] != b[0] and order.concurrent(a, b):
                racy.append((a, b))
        if racy:
            shown = racy[:_MAX_WITNESSES]
            pairs = ", ".join(
                f"({a[0]},{a[1]}) || ({b[0]},{b[1]})" for a, b in shown
            )
            more = f" (+{len(racy) - len(shown)} more)" if len(racy) > len(shown) else ""
            states = tuple(
                ref for pair in shown for ref in pair
            )
            findings.append(
                Finding(
                    "R301",
                    f"variable {name!r} is written by concurrent states: "
                    f"{pairs}{more}",
                    states=states,
                    data={"variable": name, "pairs": len(racy)},
                )
            )

    # R302: receives racing at one process (concurrent sends).
    by_receiver: Dict[int, List[int]] = {}
    for k, m in enumerate(dep.messages):
        by_receiver.setdefault(m.dst.proc, []).append(k)
    for proc, ks in sorted(by_receiver.items()):
        for ka, kb in combinations(sorted(ks), 2):
            ma, mb = dep.messages[ka], dep.messages[kb]
            if ma.src.proc == mb.src.proc:
                continue  # same-sender sends are chain-ordered
            if order.concurrent(ma.src, mb.src):
                first, second = sorted(
                    (ma, mb), key=lambda m: m.dst.index
                )
                findings.append(
                    Finding(
                        "R302",
                        f"process {proc} receives race: the sends "
                        f"({ma.src.proc},{ma.src.index}) and "
                        f"({mb.src.proc},{mb.src.index}) are concurrent, "
                        f"but the trace delivers "
                        f"({first.src.proc},{first.src.index}) first",
                        states=(tuple(ma.src), tuple(mb.src)),
                        arrows=(
                            (tuple(ma.src), tuple(ma.dst)),
                            (tuple(mb.src), tuple(mb.dst)),
                        ),
                    )
                )

    # R303: crossed sends between a pair of processes.
    by_pair: Dict[Tuple[int, int], List[int]] = {}
    for k, m in enumerate(dep.messages):
        by_pair.setdefault((m.src.proc, m.dst.proc), []).append(k)
    for (p, q), ks in sorted(by_pair.items()):
        if p >= q:
            continue
        back = by_pair.get((q, p), ())
        for ka in ks:
            for kb in back:
                ma, mb = dep.messages[ka], dep.messages[kb]
                if order.concurrent(ma.src, mb.src):
                    findings.append(
                        Finding(
                            "R303",
                            f"processes {p} and {q} message each other from "
                            f"concurrent states ({ma.src.proc},"
                            f"{ma.src.index}) and ({mb.src.proc},"
                            f"{mb.src.index}) (crossed sends)",
                            states=(tuple(ma.src), tuple(mb.src)),
                            arrows=(
                                (tuple(ma.src), tuple(ma.dst)),
                                (tuple(mb.src), tuple(mb.dst)),
                            ),
                        )
                    )
    return findings
