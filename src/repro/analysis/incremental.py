"""The streaming rule engine: online lint over ``repro-events/1``.

``repro lint`` (PR 5) certifies a trace in batch, after the fact; the
detection pipeline (PRs 4/6/7) went streaming long ago.  This module
closes the gap: a :class:`StreamingLinter` consumes the same records
``repro watch`` and ``repro serve`` consume and emits findings *as the
corruption arrives*, with O(delta) work per record for every rule that
admits it.

Architecture
------------

* :class:`IncrementalRule` is the protocol: ``on_event`` / ``on_arrow``
  react to the delta one record appended, ``on_epoch_reset`` reacts to a
  causality rewrite of the prefix, ``finalize`` runs once over the whole
  trace.  A rule that is inherently whole-trace implements only
  ``finalize`` -- and says so in its :data:`RULE_MODES` metadata.
* The mode split is *proved*, not guessed (pinned by the hypothesis
  prefix-identity suite in ``tests/analysis/test_incremental.py``):

  - **incremental**: T001/T009 (lenient parse, via the
    :class:`~repro.analysis.raw.StreamParser` mirror) and T002/T004/
    T006/T007 -- exactly the sanitizer rules that are monotone in
    arrival order.  On a clean stream every cross-process arrow's
    source event has completed at arrival (else T009 fired), so arrows
    activate in list order and the accumulated findings equal batch
    :func:`~repro.analysis.sanitizer.sanitize` restricted to those
    rules, on every prefix, by construction (both sides build findings
    through the shared constructors in ``sanitizer.py``).
  - **finalize**: T003 (only decidable at end of input -- a source
    state is "final" until the next event), T005 (endpoints heal as
    states arrive), T008 (needs recorded clocks; batch format only),
    T010 (retracts when the timestamp channel is dropped mid-stream),
    T011 (a cycle in clean arrival order is impossible; the witness
    search is whole-trace), and the entire C/P/R families (whole-trace
    passes over the validated deposet).

* Arrival-order violations (any T009) or an epoch reset set the
  ``dirty`` flag: the incremental engine's activation bookkeeping is no
  longer trustworthy, so affected rules degrade to finalize -- the
  report recomputes them via a full :func:`sanitize` -- while parse
  findings keep streaming.  Correctness is never lost, only latency.

Work accounting: every feed updates both the global
``analysis.lint.work.*`` metrics and the linter's own :attr:`work`
dict; the per-record cost of the incremental rules is independent of
the prefix length (heap pops and channel comparisons are
output-sensitive), which the metrics test pins.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.analysis.findings import Finding, Report
from repro.analysis.raw import RawArrow, RawTrace, StreamParser, Ref
from repro.analysis.runner import DEEP_PASSES, run_deep_passes
from repro.analysis.sanitizer import (
    sanitize,
    t002_finding,
    t004_finding,
    t006_finding,
    t007_finding,
)
from repro.obs.metrics import METRICS
from repro.predicates.base import Predicate
from repro.trace.io import STREAM_FORMAT

__all__ = [
    "IncrementalRule",
    "RuleMode",
    "RULE_MODES",
    "INCREMENTAL_SANITIZER_IDS",
    "StreamingLinter",
    "LINT_STATE_FORMAT",
]

#: Snapshot format marker for :meth:`StreamingLinter.snapshot`.
LINT_STATE_FORMAT = "repro-lint-state/1"

_W_RECORDS = METRICS.counter("analysis.lint.work.records")
_W_EVENTS = METRICS.counter("analysis.lint.work.events")
_W_ARROWS = METRICS.counter("analysis.lint.work.arrows")
_W_HEAP = METRICS.counter("analysis.lint.work.heap_ops")
_W_CHANNEL = METRICS.counter("analysis.lint.work.channel_cmps")
_W_FINDINGS = METRICS.counter("analysis.lint.work.findings")
_GLOBALS = {
    "records": _W_RECORDS,
    "events": _W_EVENTS,
    "arrows": _W_ARROWS,
    "heap_ops": _W_HEAP,
    "channel_cmps": _W_CHANNEL,
    "findings": _W_FINDINGS,
}


class IncrementalRule(Protocol):
    """One rule (or rule family) ported to the streaming engine.

    ``on_event``/``on_arrow`` receive the delta a single stream record
    appended and return the findings it provably causes on every later
    prefix; ``on_epoch_reset`` invalidates order-dependent internal
    state after a causality rewrite; ``finalize`` runs whole-trace
    checks once at end of input.  Implementations must do O(delta) work
    per ``on_*`` call (amortized, output-sensitive).
    """

    #: rule ids this implementation is responsible for
    rule_ids: Tuple[str, ...]

    def on_event(self, ref: Ref, raw: RawTrace) -> List[Finding]:
        """A state ``ref = (proc, index)`` was appended."""
        ...

    def on_arrow(
        self, arrow: RawArrow, kind: str, raw: RawTrace
    ) -> List[Finding]:
        """An arrow arrived (``kind`` is ``"message"`` or ``"control"``)."""
        ...

    def on_epoch_reset(self) -> None:
        """The prefix's causality was rewritten; drop derived state."""
        ...

    def finalize(self, raw: RawTrace) -> List[Finding]:
        """Whole-trace checks at end of input."""
        ...


@dataclass(frozen=True)
class RuleMode:
    """How one catalogue rule runs in the streaming engine."""

    mode: str  # "incremental" | "finalize"
    reason: str


#: Per-rule streaming mode, with the argument for it.  Kept in sync with
#: the catalogue by ``tests/analysis/test_incremental.py`` and rendered
#: into docs/ANALYSIS.md.
RULE_MODES: Dict[str, RuleMode] = {
    "T001": RuleMode("incremental",
                     "structural parse check; local to one record"),
    "T002": RuleMode("incremental",
                     "monotone once both endpoints exist (a stream recv "
                     "always creates its target at index >= 1, so this "
                     "fires on batch documents only)"),
    "T003": RuleMode("finalize",
                     "'source is the final state' is undecidable before "
                     "end of input: the next record may complete it"),
    "T004": RuleMode("incremental",
                     "event roles are claimed in arrival order, which on "
                     "a clean stream equals batch list order"),
    "T005": RuleMode("finalize",
                     "endpoints heal: a state that does not exist at this "
                     "prefix may be appended by the next record"),
    "T006": RuleMode("incremental",
                     "same-process arrows are condemned forever once both "
                     "endpoints exist (pending-activation heap)"),
    "T007": RuleMode("incremental",
                     "FIFO inversions are monotone over the activated "
                     "channel members; new pairs are output-sensitive"),
    "T008": RuleMode("finalize",
                     "needs recorded vector clocks (batch format only) "
                     "and a structurally sound whole trace"),
    "T009": RuleMode("incremental",
                     "arrival-order check; fires at the offending record "
                     "(and degrades order-dependent rules to finalize)"),
    "T010": RuleMode("finalize",
                     "non-monotone: the timestamp channel is dropped "
                     "entirely when any record omits 'time'"),
    "T011": RuleMode("finalize",
                     "a causality cycle cannot form in clean arrival "
                     "order; the minimal-witness search is whole-trace"),
    "C101": RuleMode("finalize",
                     "interference is judged over the complete control "
                     "relation and event graph"),
    "C102": RuleMode("finalize", "transitive redundancy is whole-relation"),
    "C103": RuleMode("finalize",
                     "enforceability depends on final state counts (D2 "
                     "generalised)"),
    "C104": RuleMode("finalize",
                     "Lemma 2 overlap is judged over complete "
                     "false-intervals"),
    "C105": RuleMode("finalize", "duplicate detection over the whole "
                     "relation keeps batch attribution order"),
    "C106": RuleMode("finalize", "needs predicate truth over final states"),
    "C107": RuleMode("finalize", "final states are only known at the end"),
    "P201": RuleMode("finalize", "predicate classification is per-trace"),
    "P202": RuleMode("finalize", "predicate classification is per-trace"),
    "P203": RuleMode("finalize", "routing estimate uses final lattice size"),
    "R301": RuleMode("finalize", "concurrency is judged over final clocks"),
    "R302": RuleMode("finalize", "concurrency is judged over final clocks"),
    "R303": RuleMode("finalize", "concurrency is judged over final clocks"),
}

#: Sanitizer rules the streaming engine owns; the report() assembly
#: filters these out of the finalize-time sanitize() to avoid
#: double-counting.
INCREMENTAL_SANITIZER_IDS = frozenset({"T002", "T004", "T006", "T007"})

EventRef = Tuple[int, int]


class _SanitizerEngine:
    """T002/T004/T006/T007 over the arrival order, in O(delta) per record.

    Activation model: an arrow participates in a rule only once the
    prefix contains the states the batch rule would require --

    * *endpoint* level (``counts[sp] >= si + 1``): both endpoints exist;
      drives T006 (same-process), T002 (initial-state target) and the
      T004 role table.
    * *order* level (``counts[sp] >= si + 2`` plus ``di >= 1`` and not a
      degenerate same-process arrow): the arrow is in
      :func:`~repro.analysis.sanitizer.valid_arrows`; drives T007.

    Arrows below a threshold wait in per-source-process min-heaps and
    are popped as states arrive (each arrow is pushed/popped at most
    twice: O(delta) amortized).  On a clean stream both levels are
    reached at arrival for every cross-process arrow -- the heaps only
    ever hold same-process arrows pointing at states not yet streamed,
    which batch meanwhile reports as T005 (finalize-mode), so the
    prefix identity is exact.
    """

    rule_ids = ("T002", "T004", "T006", "T007")

    def __init__(self, account: "_Account") -> None:
        self._account = account
        self._counts: List[int] = []
        self._seq = 0
        #: event -> (role, claiming arrow), in activation order
        self._roles: Dict[EventRef, Tuple[str, RawArrow]] = {}
        #: channel -> activated arrows sorted by source state index
        self._channels: Dict[Tuple[int, int], List[RawArrow]] = {}
        self._channel_keys: Dict[Tuple[int, int], List[int]] = {}
        self._channel_max_dst: Dict[Tuple[int, int], int] = {}
        #: per source process: heap of (threshold, seq, level, arrow)
        self._pending: Dict[int, List[Tuple[int, int, str, RawArrow]]] = {}

    def _ensure(self, n: int) -> None:
        while len(self._counts) < n:
            self._counts.append(0)

    # -- IncrementalRule ------------------------------------------------------

    def on_event(self, ref: Ref, raw: RawTrace) -> List[Finding]:
        self._ensure(raw.n)
        p = ref[0]
        self._counts[p] = max(self._counts[p], ref[1] + 1)
        self._account.add("events", 1)
        out: List[Finding] = []
        heap = self._pending.get(p)
        while heap and heap[0][0] <= self._counts[p]:
            _, _, level, arrow = heapq.heappop(heap)
            self._account.add("heap_ops", 1)
            self._advance(arrow, level, out, emit=True)
        return out

    def on_arrow(
        self, arrow: RawArrow, kind: str, raw: RawTrace
    ) -> List[Finding]:
        self._ensure(raw.n)
        self._account.add("arrows", 1)
        if kind != "message":
            # control arrows drive no incremental rule (T005/C103 are
            # finalize-mode)
            return []
        out: List[Finding] = []
        self._admit(arrow, out, emit=True)
        return out

    def on_epoch_reset(self) -> None:
        # The linter marks itself dirty and stops feeding us; drop
        # everything so a stale activation can never leak.
        self._roles.clear()
        self._channels.clear()
        self._channel_keys.clear()
        self._channel_max_dst.clear()
        self._pending.clear()

    def finalize(self, raw: RawTrace) -> List[Finding]:
        return []  # everything this engine owns was emitted on arrival

    # -- rebuild (restore path) ----------------------------------------------

    def rebuild(self, raw: RawTrace) -> None:
        """Reconstruct activation state from a restored mirror.

        The engine's end-of-prefix state is a function of the prefix
        content alone (not of the arrival interleaving), so replaying
        ``raw.messages`` in list order with emission suppressed lands on
        exactly the state the live run had at snapshot time.
        """
        self._counts = list(raw.state_counts)
        sink: List[Finding] = []
        for arrow in raw.messages:
            self._admit(arrow, sink, emit=False)

    # -- activation machinery -------------------------------------------------

    def _admit(
        self, arrow: RawArrow, out: List[Finding], emit: bool
    ) -> None:
        (sp, si), (dp, di) = arrow.src, arrow.dst
        n = len(self._counts)
        if not (0 <= sp < n and 0 <= dp < n) or si < 0 or di < 0:
            return  # permanent T005 territory (finalize)
        self._seq += 1
        if self._counts[sp] >= si + 1:
            self._advance(arrow, "endpoint", out, emit)
        else:
            heapq.heappush(
                self._pending.setdefault(sp, []),
                (si + 1, self._seq, "endpoint", arrow),
            )
            self._account.add("heap_ops", 1)

    def _advance(
        self, arrow: RawArrow, level: str, out: List[Finding], emit: bool
    ) -> None:
        (sp, si), (dp, di) = arrow.src, arrow.dst
        if level == "endpoint":
            self._endpoint_activate(arrow, out, emit)
            # chain into the order level
            if di < 1 or (sp == dp and si >= di):
                return  # never in valid_arrows; T007 does not apply
            if self._counts[sp] >= si + 2:
                self._order_activate(arrow, out, emit)
            else:
                self._seq += 1
                heapq.heappush(
                    self._pending.setdefault(sp, []),
                    (si + 2, self._seq, "order", arrow),
                )
                self._account.add("heap_ops", 1)
        else:
            self._order_activate(arrow, out, emit)

    def _endpoint_activate(
        self, arrow: RawArrow, out: List[Finding], emit: bool
    ) -> None:
        (sp, si), (dp, di) = arrow.src, arrow.dst
        if di >= self._counts[dp]:
            return  # dst missing: cannot happen for streamed recvs
        if sp == dp:
            if emit:
                out.append(t006_finding(arrow))
            return  # same-process arrows never join the T002/T004 pools
        if di < 1 and emit:
            out.append(t002_finding("message", arrow))
        for ev, role in (
            ((sp, si), "send"),
            ((dp, di - 1), "receive"),
        ):
            if ev in self._roles:
                prev_role, prev = self._roles[ev]
                if emit:
                    out.append(t004_finding(ev, prev_role, prev, role, arrow))
            else:
                self._roles[ev] = (role, arrow)

    def _order_activate(
        self, arrow: RawArrow, out: List[Finding], emit: bool
    ) -> None:
        (sp, si), (dp, di) = arrow.src, arrow.dst
        chan = (sp, dp)
        members = self._channels.setdefault(chan, [])
        keys = self._channel_keys.setdefault(chan, [])
        max_dst = self._channel_max_dst.get(chan, -1)
        if emit:
            if di > max_dst:
                # fast path: this delivery is the newest on the channel,
                # so the inversions are exactly the members sent after it
                # -- a suffix of the src-sorted list, each one a finding
                # (output-sensitive work).
                pos = bisect.bisect_right(keys, si)
                for other in members[pos:]:
                    self._account.add("channel_cmps", 1)
                    if other.src[1] > si:  # strict: equal sends never pair
                        out.append(t007_finding(sp, dp, arrow, other))
            else:
                # late activation (same-process pending arrows only):
                # general scan, O(channel)
                for other in members:
                    self._account.add("channel_cmps", 1)
                    if other.src[1] < si and other.dst[1] > di:
                        out.append(t007_finding(sp, dp, other, arrow))
                    elif other.src[1] > si and other.dst[1] < di:
                        out.append(t007_finding(sp, dp, arrow, other))
        pos = bisect.bisect_right(keys, si)
        members.insert(pos, arrow)
        keys.insert(pos, si)
        self._channel_max_dst[chan] = max(max_dst, di)


class _Account:
    """Work accounting fanned out to the global registry and a local dict."""

    def __init__(self, work: Dict[str, int]) -> None:
        self.work = work

    def add(self, key: str, units: int) -> None:
        self.work[key] = self.work.get(key, 0) + units
        counter = _GLOBALS.get(key)
        if counter is not None:
            counter.inc(units)


class StreamingLinter:
    """Online lint over a ``repro-events/1`` record stream.

    Feed it the same lines/records the ingestion layer consumes; each
    feed returns the findings that record provably causes (parse
    findings plus incremental-rule findings), and :meth:`report`
    assembles, at any prefix, a report whose findings equal batch
    :func:`~repro.analysis.runner.run_rules` over that prefix (as a
    multiset; the streamed ones are grouped first).  ``finalize``-mode
    rules run inside :meth:`report`/:meth:`finalize` only.

    The linter survives the serving layer's durable checkpoints via
    :meth:`snapshot`/:meth:`restore` (same contract as
    :class:`~repro.detection.incremental.IncrementalDetector`).
    """

    def __init__(
        self,
        source: str = "<stream>",
        predicate: Optional[Predicate] = None,
    ) -> None:
        self.parser = StreamParser(source=source)
        self.predicate = predicate
        #: per-linter work units (the global registry aggregates across
        #: concurrently-live linters; tests read this one)
        self.work: Dict[str, int] = {}
        self._account = _Account(self.work)
        self.engine = _SanitizerEngine(self._account)
        self.parse_findings: List[Finding] = []
        self.incremental_findings: List[Finding] = []
        self.dirty = False
        self.dirty_reason: Optional[str] = None
        self.records = 0
        self.epoch_resets = 0

    @property
    def source(self) -> str:
        return self.parser.source

    # -- feeding --------------------------------------------------------------

    def feed_line(
        self, line: str, where: Optional[str] = None
    ) -> List[Finding]:
        """Lint one raw stream line; returns this record's findings."""
        return self._after_feed(self.parser.feed_line(line, where))

    def feed_record(
        self, rec: Any, where: Optional[str] = None
    ) -> List[Finding]:
        """Lint one decoded record (``dict``); returns its findings."""
        return self._after_feed(self.parser.feed_record(rec, where))

    def _after_feed(self, parse_findings: List[Finding]) -> List[Finding]:
        self.records += 1
        self._account.add("records", 1)
        self.parse_findings.extend(parse_findings)
        emitted = list(parse_findings)
        if any(f.rule_id == "T009" for f in parse_findings):
            self._mark_dirty("arrival-order violation (T009)")
        if self.dirty or self.parser.raw is None:
            self._account.add("findings", len(emitted))
            return emitted
        raw = self.parser.raw
        new: List[Finding] = []
        for ref in self.parser.delta_states:
            new.extend(self.engine.on_event(ref, raw))
        for a in self.parser.delta_messages:
            new.extend(self.engine.on_arrow(a, "message", raw))
        for a in self.parser.delta_control:
            new.extend(self.engine.on_arrow(a, "control", raw))
        self.incremental_findings.extend(new)
        emitted.extend(new)
        self._account.add("findings", len(emitted))
        return emitted

    def on_epoch_reset(self) -> None:
        """The underlying store rewrote causality (arrow insert): the
        arrival-order bookkeeping is stale, so the order-dependent rules
        degrade to finalize for the rest of this stream."""
        self.epoch_resets += 1
        self.engine.on_epoch_reset()
        self._mark_dirty("epoch reset")

    def _mark_dirty(self, reason: str) -> None:
        if not self.dirty:
            self.dirty = True
            self.dirty_reason = reason

    # -- results --------------------------------------------------------------

    def findings(self) -> List[Finding]:
        """Everything streamed so far (parse + incremental rules); the
        finalize-mode rules are *not* in here -- ask :meth:`report`."""
        return list(self.parse_findings) + list(self.incremental_findings)

    def report(self) -> Report:
        """A full report over the current prefix.

        Findings equal batch :func:`~repro.analysis.runner.run_rules`
        over the same prefix as a multiset: when clean, the streamed
        incremental findings are used as-is and only the finalize-mode
        rules are computed here; when dirty, the whole sanitizer reruns
        batch-style (correctness over latency).
        """
        raw = self.parser.raw
        parse_findings = list(self.parse_findings)
        if raw is None and not self.parser.dead:
            parse_findings.append(
                Finding("T001", "empty stream (no header)",
                        location=self.parser.source)
            )
        report = Report(source=self.parser.source, format=STREAM_FORMAT)
        report.passes.append("parse")
        report.extend(parse_findings)
        if raw is None:
            report.skipped.extend(("sanitizer",) + DEEP_PASSES)
            return report
        report.passes.append("sanitizer")
        if self.dirty:
            report.extend(sanitize(raw))
        else:
            report.extend(self.incremental_findings)
            report.extend(
                f for f in sanitize(raw)
                if f.rule_id not in INCREMENTAL_SANITIZER_IDS
            )
        return run_deep_passes(raw, report, predicate=self.predicate)

    def finalize(self) -> Report:
        """End-of-stream report (alias of :meth:`report`; named for
        symmetry with the detection pipeline)."""
        return self.report()

    # -- durable state capture ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable linter state; pair with the session's store
        checkpoint exactly like the detector's snapshot."""
        return {
            "format": LINT_STATE_FORMAT,
            "parser": self.parser.snapshot(),
            "parse_findings": [f.to_dict() for f in self.parse_findings],
            "incremental_findings": [
                f.to_dict() for f in self.incremental_findings
            ],
            "dirty": self.dirty,
            "dirty_reason": self.dirty_reason,
            "records": self.records,
            "epoch_resets": self.epoch_resets,
        }

    @classmethod
    def restore(
        cls,
        state: Dict[str, Any],
        predicate: Optional[Predicate] = None,
    ) -> "StreamingLinter":
        """Rebuild a linter mid-stream from a :meth:`snapshot`; feeding
        the remaining records produces exactly the findings the original
        would have (pinned by tests/serve/test_serve_lint.py)."""
        if state.get("format") != LINT_STATE_FORMAT:
            raise ValueError(
                f"unknown lint state format {state.get('format')!r}; "
                f"expected {LINT_STATE_FORMAT!r}"
            )
        linter = cls(predicate=predicate)
        linter.parser = StreamParser.restore(state["parser"])
        linter.parse_findings = [
            Finding.from_dict(d) for d in state.get("parse_findings", ())
        ]
        linter.incremental_findings = [
            Finding.from_dict(d)
            for d in state.get("incremental_findings", ())
        ]
        linter.dirty = bool(state.get("dirty", False))
        linter.dirty_reason = state.get("dirty_reason")
        linter.records = int(state.get("records", 0))
        linter.epoch_resets = int(state.get("epoch_resets", 0))
        if not linter.dirty and linter.parser.raw is not None:
            linter.engine.rebuild(linter.parser.raw)
        return linter
