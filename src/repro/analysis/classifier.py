"""Pass 3: the predicate classifier (rules P201--P203).

Walks a :class:`~repro.predicates.base.Predicate` expression tree and
derives the *tightest* class it provably belongs to:

    constant  <  local  <  {disjunctive, conjunctive}  <  general

``local`` predicates are both disjunctive and conjunctive (a one-factor
disjunction/conjunction); conjunctive predicates are regular (Mittal &
Garg), so the polynomial slicing engine applies; disjunctive predicates
are *not* regular in general but admit the O(n^2 p) controller;
``general`` is the NP-hard path (Theorem 1).

The derivation reuses the library's own normalisers --
:func:`repro.slicing.regular.regular_form`,
:func:`repro.predicates.disjunctive.as_disjunctive`/:func:`fold_local` --
so a classifier verdict *is* a routing decision: whatever it says is
conjunctive, the slicing engine accepts, by construction.
:func:`semantically_regular` provides the brute-force lattice ground
truth (meet/join closure of the satisfying cuts) the hypothesis suite
compares against.

``repro.detection.engine`` consumes :func:`classify` to route ``auto``
mode, and :func:`recommend` is the payload of the P203 info finding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.errors import NotDisjunctiveError
from repro.predicates.base import (
    FalsePredicate,
    Predicate,
    TruePredicate,
)
from repro.predicates.disjunctive import (
    DisjunctivePredicate,
    as_disjunctive,
    fold_local,
)
from repro.predicates.local import LocalPredicate
from repro.slicing.regular import RegularForm, regular_form
from repro.trace.deposet import Deposet

__all__ = [
    "PredicateClass",
    "Classification",
    "classify",
    "raw_class",
    "semantically_regular",
    "lattice_estimate",
    "recommend",
    "analyze_predicate",
]


class PredicateClass(enum.Enum):
    CONSTANT = "constant"
    LOCAL = "local"
    DISJUNCTIVE = "disjunctive"
    CONJUNCTIVE = "conjunctive"
    GENERAL = "general"

    @property
    def tightness(self) -> int:
        """Partial order as a rank: lower = tighter (cheaper algorithms).

        ``disjunctive`` and ``conjunctive`` are incomparable; both rank
        between ``local`` and ``general``.
        """
        return {
            PredicateClass.CONSTANT: 0,
            PredicateClass.LOCAL: 1,
            PredicateClass.DISJUNCTIVE: 2,
            PredicateClass.CONJUNCTIVE: 2,
            PredicateClass.GENERAL: 3,
        }[self]


@dataclass
class Classification:
    """What the classifier proved about one predicate."""

    tightest: PredicateClass
    #: Accepted by the polynomial slicing engine.  Equivalent to
    #: ``regular_form is not None``, and (pinned by tests) to the
    #: predicate's own ``is_regular()``.
    regular: bool
    regular_form: Optional[RegularForm] = None
    disjunctive_form: Optional[DisjunctivePredicate] = None
    folded_local: Optional[LocalPredicate] = None
    reason: str = ""

    @property
    def engine(self) -> str:
        """The soundness-safe detection engine for this class."""
        return "slice" if self.regular else "exhaustive"


def classify(pred: Predicate) -> Classification:
    """Derive the tightest class of ``pred`` (purely syntactic, no trace).

    The verdict is conservative: ``GENERAL`` means "no tighter structure
    was *recognised*", not a proof of semantic generality -- exactly the
    contract of :meth:`Predicate.is_regular`.
    """
    if isinstance(pred, (TruePredicate, FalsePredicate)):
        return Classification(
            PredicateClass.CONSTANT,
            regular=True,
            regular_form=regular_form(pred),
            reason="constant predicate",
        )
    rform = regular_form(pred)
    dform: Optional[DisjunctivePredicate] = None
    n = max(pred.procs(), default=0) + 1
    try:
        dform = as_disjunctive(pred, n)
    except NotDisjunctiveError:
        dform = None
    local = fold_local(pred)
    if local is not None:
        return Classification(
            PredicateClass.LOCAL,
            regular=rform is not None,
            regular_form=rform,
            disjunctive_form=dform,
            folded_local=local,
            reason=f"touches only process {local.proc}",
        )
    if not pred.procs():
        # Zero-process but not a constant node (e.g. fold-resistant
        # wrappers); regular_form keeps such factors symbolic.
        return Classification(
            PredicateClass.CONSTANT,
            regular=rform is not None,
            regular_form=rform,
            reason="touches no process",
        )
    if rform is not None:
        return Classification(
            PredicateClass.CONJUNCTIVE,
            regular=True,
            regular_form=rform,
            disjunctive_form=dform,
            reason=(
                f"conjunction of locals on processes "
                f"{sorted(rform.conjuncts)}"
            ),
        )
    if dform is not None:
        return Classification(
            PredicateClass.DISJUNCTIVE,
            regular=False,
            disjunctive_form=dform,
            reason=(
                f"disjunction of locals on processes "
                f"{sorted(dform.locals_by_proc)}"
            ),
        )
    return Classification(
        PredicateClass.GENERAL,
        regular=False,
        reason="no local/disjunctive/conjunctive structure recognised",
    )


def raw_class(pred: Predicate) -> PredicateClass:
    """The class claimed by the *node type alone* -- what a user who never
    normalises would assume.  P202 compares this against :func:`classify`."""
    if isinstance(pred, (TruePredicate, FalsePredicate)):
        return PredicateClass.CONSTANT
    if isinstance(pred, LocalPredicate):
        return PredicateClass.LOCAL
    if isinstance(pred, DisjunctivePredicate):
        return PredicateClass.DISJUNCTIVE
    return PredicateClass.GENERAL


# -- semantic ground truth ---------------------------------------------------


def semantically_regular(dep: Deposet, pred: Predicate) -> bool:
    """Brute-force regularity: the satisfying consistent cuts are closed
    under componentwise min (meet) and max (join).

    Exponential in the trace -- ground truth for tests and small lint
    runs, never for routing.
    """
    from repro.trace.global_state import CutLattice

    lattice = CutLattice(dep)
    satisfying = [
        tuple(cut)
        for cut in lattice.iter_consistent_cuts()
        if pred.evaluate(dep, cut)
    ]
    members = set(satisfying)
    for a, b in combinations(satisfying, 2):
        meet = tuple(min(x, y) for x, y in zip(a, b))
        join = tuple(max(x, y) for x, y in zip(a, b))
        # Meet/join of consistent cuts are consistent (the cut lattice is
        # a lattice), so membership failure is a predicate failure.
        if meet not in members or join not in members:
            return False
    return True


def lattice_estimate(
    dep: Deposet, classification: Optional[Classification] = None
) -> Tuple[int, Optional[int]]:
    """``(full, sliced)`` upper bounds on the cuts a detector must visit.

    ``full`` is the exhaustive lattice bound ``prod(m_i)``; ``sliced`` is
    the bound after restricting each process to its conjunct-true states
    (``None`` when no regular form is available).
    """
    full = 1
    for m in dep.state_counts:
        full *= m
    sliced: Optional[int] = None
    if classification is not None and classification.regular_form is not None:
        sliced = 1
        for table in classification.regular_form.truth_tables(dep):
            sliced *= max(int(table.sum()), 0)
    return full, sliced


def recommend(
    dep: Deposet, classification: Classification
) -> Tuple[str, str]:
    """``(engine, reason)`` -- the routing recommendation of P203."""
    full, sliced = lattice_estimate(dep, classification)
    if classification.regular:
        return (
            "slice",
            f"predicate is {classification.tightest.value} (regular): "
            f"polynomial slicing bounds the walk to <= {sliced} of "
            f"{full} cuts",
        )
    if classification.tightest is PredicateClass.DISJUNCTIVE:
        return (
            "exhaustive",
            f"predicate is disjunctive: not regular, but the O(n^2 p) "
            f"controller applies; detection walks up to {full} cuts",
        )
    return (
        "exhaustive",
        f"predicate is {classification.tightest.value}: detection walks "
        f"up to {full} cuts (NP-hard path, Theorem 1)",
    )


# -- the pass ----------------------------------------------------------------


def analyze_predicate(dep: Deposet, pred: Predicate) -> List[Finding]:
    """Run P201--P203 for ``pred`` against ``dep``."""
    findings: List[Finding] = []
    c = classify(pred)

    # P201: the predicate's own is_regular() claim must match the
    # classifier (both recognise the same syntactic core; a subclass
    # overriding is_regular() inconsistently breaks engine routing).
    claimed = pred.is_regular()
    if claimed != c.regular:
        findings.append(
            Finding(
                "P201",
                f"{pred!r}.is_regular() returns {claimed}, but the "
                f"classifier derives {c.regular} "
                f"(tightest class: {c.tightest.value}); engine auto-routing "
                f"would pick an unsound engine",
                data={"claimed": claimed, "derived": c.regular,
                      "class": c.tightest.value},
            )
        )

    # P202: declared shape vs derived class.
    declared = raw_class(pred)
    if declared.tightness > c.tightest.tightness:
        findings.append(
            Finding(
                "P202",
                f"predicate {pred!r} is written as a "
                f"{declared.value} expression but is semantically "
                f"{c.tightest.value} ({c.reason}); a polynomial algorithm "
                f"applies",
                data={"declared": declared.value, "derived": c.tightest.value},
            )
        )

    engine, reason = recommend(dep, c)
    full, sliced = lattice_estimate(dep, c)
    findings.append(
        Finding(
            "P203",
            f"recommended engine: {engine} -- {reason}",
            data={
                "engine": engine,
                "class": c.tightest.value,
                "regular": c.regular,
                "lattice_bound": full,
                "slice_bound": sliced,
            },
        )
    )
    return findings
