"""Pass 2: the control-relation analyzer (rules C101--C107).

Statically judges a recorded control relation against the underlying
computation -- before any replay is attempted:

* **C101** interference: the extended event graph is cyclic, so the
  controlled computation deadlocks on replay.  The witness is a *minimal*
  cycle (shortest event path closing through a control arrow).
* **C102/C105** hygiene: transitively redundant and duplicate arrows --
  harmless for correctness but they inflate the token traffic of a replay
  (:meth:`~repro.core.control_relation.ControlRelation.minimized` is the
  dynamic counterpart of C102).
* **C103** enforceability: an arrow whose source never completes (final
  state) or whose target is entered before anything can be waited for
  (initial state) can never be enforced by an online controller.
* **C104** Lemma 2, re-derived statically: when a (disjunctive) predicate
  is supplied, search the false-intervals for an overlapping set; if one
  exists, *no* controller exists for this computation at all, and the
  witness is that interval set.
* **C106/C107** online-control assumptions: A1 (never block a process
  where its local predicate is false) judged at each arrow's blocking
  state, and A2 (local predicates hold in final states).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.raw import RawTrace
from repro.analysis.sanitizer import find_event_cycle, valid_arrows
from repro.causality.relations import CausalOrder
from repro.errors import NotDisjunctiveError
from repro.predicates.base import Predicate
from repro.predicates.disjunctive import as_disjunctive
from repro.trace.deposet import Deposet

__all__ = ["analyze_control"]

Ref = Tuple[int, int]


def analyze_control(
    raw: RawTrace,
    dep: Deposet,
    predicate: Optional[Predicate] = None,
) -> List[Finding]:
    """Run every control-relation rule.

    ``dep`` is the validated deposet of the *underlying* computation
    (messages only, no control relation) -- the runner constructs it once
    the sanitizer reports no errors.  ``predicate`` enables the
    predicate-dependent rules (C104, C106, C107).
    """
    findings: List[Finding] = []
    counts = raw.state_counts
    msgs = [raw.messages[k].pair for k in valid_arrows(raw, raw.messages)]
    ctl_idx = [
        k
        for k, c in enumerate(raw.control)
        if raw.has_state(c.src) and raw.has_state(c.dst)
    ]

    # C103: unenforceable endpoints.  Judged first; such arrows cannot
    # participate in the event graph (their events do not exist).
    enforceable: List[int] = []
    for k in ctl_idx:
        c = raw.control[k]
        (sp, si), (dp, di) = c.src, c.dst
        problems = []
        if si > counts[sp] - 2:
            problems.append(
                f"source ({sp},{si}) is the final state of process {sp} "
                f"and never completes"
            )
        if di < 1:
            problems.append(
                f"target ({dp},{di}) is the initial state of process {dp} "
                f"and is entered unconditionally"
            )
        if sp == dp and si >= di >= 1 and not problems:
            problems.append(
                f"same-process arrow ({sp},{si}) -> ({dp},{di}) points "
                f"backwards and can never be satisfied"
            )
        if problems:
            findings.append(
                Finding(
                    "C103",
                    "control arrow is unenforceable: " + "; ".join(problems),
                    location=c.location,
                    states=(c.src, c.dst),
                    arrows=(c.pair,),
                )
            )
        else:
            enforceable.append(k)

    # C105: duplicate arrows.  The first occurrence is canonical.
    seen: Dict[Tuple[Ref, Ref], int] = {}
    duplicates = set()
    for k in enforceable:
        c = raw.control[k]
        if c.pair in seen:
            first = raw.control[seen[c.pair]]
            duplicates.add(k)
            findings.append(
                Finding(
                    "C105",
                    f"control arrow ({c.src[0]},{c.src[1]}) -> "
                    f"({c.dst[0]},{c.dst[1]}) is declared twice",
                    location=c.location,
                    arrows=(c.pair,),
                    data={"other_location": first.location},
                )
            )
        else:
            seen[c.pair] = k

    unique = [k for k in enforceable if k not in duplicates]

    # C101: interference.  Cycle search over messages + control arrows,
    # closing only through control arrows (messages-only cycles are the
    # sanitizer's T011 and cannot occur here: the runner gates this pass
    # on a sanitizer-clean trace).
    combined = msgs + [raw.control[k].pair for k in unique]
    cycle = find_event_cycle(
        counts, combined, candidates=range(len(msgs), len(combined))
    )
    interferes = cycle is not None
    if cycle is not None:
        events, ci = cycle
        closing = raw.control[unique[ci - len(msgs)]]
        findings.append(
            Finding(
                "C101",
                f"control relation interferes with causality: waiting on "
                f"({closing.src[0]},{closing.src[1]}) -> "
                f"({closing.dst[0]},{closing.dst[1]}) closes a cycle of "
                f"{len(events)} event(s); replay would deadlock",
                location=closing.location,
                states=tuple((p, e + 1) for p, e in events),
                arrows=(closing.pair,),
                data={"cycle_events": [list(ev) for ev in events]},
            )
        )

    # C102: transitively redundant arrows -- already implied by the rest
    # of the extended relation.  Needs an acyclic relation to be
    # meaningful (an interfering relation orders everything).
    if not interferes:
        for k in unique:
            c = raw.control[k]
            rest = msgs + [
                raw.control[j].pair for j in unique if j != k
            ]
            order = CausalOrder(counts, rest)
            if order.happened_before(c.src, c.dst):
                findings.append(
                    Finding(
                        "C102",
                        f"control arrow ({c.src[0]},{c.src[1]}) -> "
                        f"({c.dst[0]},{c.dst[1]}) is transitively redundant: "
                        f"the remaining relation already orders its source "
                        f"before its target",
                        location=c.location,
                        arrows=(c.pair,),
                    )
                )

    if predicate is None:
        return findings

    # Predicate-dependent rules need the disjunctive decomposition; a
    # predicate with no such form is out of scope for A1/A2 and Lemma 2.
    try:
        disjunctive = as_disjunctive(predicate, dep.n)
    except NotDisjunctiveError:
        return findings

    from repro.core.overlap import find_overlapping_intervals
    from repro.predicates.intervals import false_intervals

    interval_lists = false_intervals(dep, disjunctive)

    # C104: Lemma 2.  An overlapping set of false-intervals (one per
    # process) proves no controller exists for this computation.
    witness = find_overlapping_intervals(dep, interval_lists)
    if witness is not None:
        states = []
        for iv in witness:
            states.extend([(iv.proc, iv.lo), (iv.proc, iv.hi)])
        findings.append(
            Finding(
                "C104",
                "No Controller Exists (Lemma 2): the false-intervals "
                + ", ".join(repr(iv) for iv in witness)
                + " overlap -- every global sequence passes through a "
                "state where the predicate is false on all processes",
                states=tuple(states),
                data={
                    "intervals": [
                        {"proc": iv.proc, "lo": iv.lo, "hi": iv.hi}
                        for iv in witness
                    ]
                },
            )
        )

    # C106 (A1): a control arrow blocks its target process in the state
    # *before* the arrow's target -- if the local predicate is false
    # there, online control would park the process in a bad state.
    for k in unique:
        c = raw.control[k]
        dp, di = c.dst
        local = disjunctive.local(dp)
        if local is None:
            continue
        blocked_at = di - 1
        if blocked_at >= 0 and not local.holds_at(dep, blocked_at):
            findings.append(
                Finding(
                    "C106",
                    f"control arrow ({c.src[0]},{c.src[1]}) -> ({dp},{di}) "
                    f"blocks process {dp} in state ({dp},{blocked_at}), "
                    f"where its local predicate is false (assumption A1)",
                    location=c.location,
                    states=((dp, blocked_at),),
                    arrows=(c.pair,),
                )
            )

    # C107 (A2): local predicates must hold in final states, or online
    # control can end a run in a bad configuration.
    for proc, local in disjunctive.locals_by_proc.items():
        if proc >= dep.n:
            continue
        top = dep.state_counts[proc] - 1
        if not local.holds_at(dep, top):
            findings.append(
                Finding(
                    "C107",
                    f"local predicate of process {proc} ({local.name}) is "
                    f"false in its final state ({proc},{top}) "
                    f"(assumption A2)",
                    states=((proc, top),),
                )
            )
    return findings
