"""Lint directly from a storage backend (``repro lint --store``).

``repro lint --store sqlite:PATH[@branch]`` opens the commit chain the
active-debugging loop writes (PR 9), snapshots the named branch, and
runs the full rule set over it -- including ``candidate-K`` control
branches, whose recorded control relation is exactly what C101
(interference) and C104 (Lemma-2 obstruction) judge.  That makes the
linter a cheap admission gate in front of ``repro replay --store``: an
interfering or obstructed candidate is rejected before a controlled
re-execution is spent on it (see :func:`gate_findings`).

Finding witnesses carry ``{branch}@c{commit}`` locations (instead of a
file:lineno that does not exist for a database), while fingerprints stay
location-independent -- the same corruption linted from a file and from
a branch shares one baseline entry.

Errors are typed and CLI-mapped to exit 3: a fresh/missing database
raises :class:`~repro.errors.StorageError` (``no such trace store``), an
unknown branch raises :class:`~repro.errors.UnknownBranchError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.analysis.findings import Finding, Report
from repro.analysis.runner import lint_deposet
from repro.errors import StorageError
from repro.predicates.base import Predicate

__all__ = ["lint_store", "gate_findings", "GATE_RULES"]

#: Rules that make a candidate branch unreplayable: an interfering
#: control relation (C101) cannot be enforced without deadlock, and a
#: Lemma-2 obstruction (C104) proves no controller exists at all.
GATE_RULES = ("C101", "C104")


def lint_store(
    target: str,
    branch: Optional[str] = None,
    predicate: Union[Predicate, str, None] = None,
) -> Tuple[Report, str, int]:
    """Lint one branch of a trace store.

    ``target`` is a ``--store`` target (``sqlite:PATH``); ``branch``
    defaults to ``main``.  ``predicate`` may be a parsed predicate or a
    CLI spec string (parsed against the branch's process count).
    Returns ``(report, branch, commit_id)`` -- the report's witnesses
    carry ``{branch}@c{commit}`` locations.  Inline suppressions in the
    branch's ``obs`` block are honoured, like file-mode ``repro lint``.
    """
    from repro.store.trace_store import TraceStore
    from repro.storage.base import parse_store_target

    scheme, _ = parse_store_target(target)
    if scheme != "sqlite":
        raise StorageError(
            f"lint --store needs a durable backend, got {target!r} "
            "(use sqlite:PATH[@branch])"
        )
    store = TraceStore.open(target, branch=branch or "main", create=False)
    try:
        branch_name = str(store.branch_name)
        if store.head is None:
            raise StorageError(
                f"{target}@{branch_name} has no commits to lint"
            )
        dep = store.snapshot()
        obs = store.obs
        commit = int(store.head)
    finally:
        store.close()

    if isinstance(predicate, str):
        from repro.cli import parse_predicate  # lazy: cli imports are heavy

        predicate = parse_predicate(predicate, dep.n)
    source = f"{target}@{branch_name}"
    report = lint_deposet(dep, predicate=predicate, source=source, obs=obs)
    anchor = f"{branch_name}@c{commit}"
    for f in report.findings:
        f.location = anchor if f.location is None else f"{anchor}/{f.location}"
    from repro.analysis.fingerprint import (
        apply_suppressions,
        suppressions_from_obs,
    )

    apply_suppressions(report, suppressions_from_obs(obs))
    return report, branch_name, commit


def gate_findings(report: Report) -> List[Finding]:
    """The findings that must refuse a replay (see :data:`GATE_RULES`)."""
    return [f for f in report.findings if f.rule_id in GATE_RULES]
