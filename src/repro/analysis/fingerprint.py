"""Content-addressed finding fingerprints, baselines, and suppressions.

A *fingerprint* is a short stable hash of what a finding **is** -- its
rule and its witness (states, arrows, structured data, message) -- and
deliberately not where it was **seen** (``location`` and location-valued
witness data are excluded).  Two consequences the test suite pins:

* re-ordering the input events in any way that preserves causal order
  (so per-process state indices are unchanged) leaves every fingerprint
  intact, even though every ``file:lineno`` location moved;
* the same corruption linted from a file and from a SQLite branch
  (``repro lint --store``) produces the same fingerprint, so one
  baseline covers both.

Baselines (``repro lint --baseline FILE`` / ``--update-baseline``) are
JSON documents mapping fingerprints to a human-readable digest; a lint
run against a baseline reports only findings whose fingerprint is new.
Inline suppressions ride in a trace's ``obs`` block::

    {"lint": {"suppress": ["T010", "fp:3f9ab0c2d1e45a67"]}}

-- a bare rule id mutes the whole rule, a ``fp:`` token mutes one
specific finding.  Both are applied at the reporting layer, never inside
the rule engine, so streaming/batch identity is unaffected.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Set, Union

from repro.analysis.findings import Finding, Report

__all__ = [
    "BASELINE_FORMAT",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "baseline_from_findings",
    "apply_baseline",
    "suppressions_from_obs",
    "apply_suppressions",
]

#: Version tag hashed into every fingerprint; bump on any payload change.
FP_FORMAT = "repro-fp/1"
#: Baseline file format marker.
BASELINE_FORMAT = "repro-lint-baseline/1"


def _stable_data(data: Dict[str, Any]) -> Dict[str, Any]:
    """Witness data minus location-valued keys (they shift when the
    input is re-serialized even though the finding did not change)."""
    return {
        k: v for k, v in data.items() if not k.endswith("location")
    }


def fingerprint(finding: Finding) -> str:
    """16-hex-char content address of ``finding`` (location-independent)."""
    payload = {
        "rule": finding.rule_id,
        "message": finding.message,
        "states": [list(s) for s in finding.states],
        "arrows": [[list(a), list(b)] for a, b in finding.arrows],
        "data": _stable_data(finding.data),
    }
    blob = FP_FORMAT + "\n" + json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- baselines ---------------------------------------------------------------


def baseline_from_findings(
    findings: Sequence[Finding],
) -> Dict[str, Any]:
    """A baseline document accepting exactly these findings."""
    fps: Dict[str, str] = {}
    for f in findings:
        fps.setdefault(fingerprint(f), f"{f.rule_id}: {f.message}")
    return {"format": BASELINE_FORMAT, "fingerprints": fps}


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> int:
    """Write a baseline accepting ``findings``; returns how many
    distinct fingerprints it records."""
    doc = baseline_from_findings(findings)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return len(doc["fingerprints"])


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """The set of accepted fingerprints in a baseline file.

    Raises ``ValueError`` on a wrong format marker so a stale or foreign
    file fails loudly instead of silently accepting nothing.
    """
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{path}: not a {BASELINE_FORMAT!r} baseline file"
        )
    fps = doc.get("fingerprints", {})
    if not isinstance(fps, dict):
        raise ValueError(f"{path}: 'fingerprints' must be an object")
    return set(fps)


def apply_baseline(
    report: Report, accepted: Set[str]
) -> List[Finding]:
    """Drop findings whose fingerprint is in ``accepted`` from the
    report (in place); returns the dropped findings."""
    kept: List[Finding] = []
    dropped: List[Finding] = []
    for f in report.findings:
        (dropped if fingerprint(f) in accepted else kept).append(f)
    report.findings[:] = kept
    return dropped


# -- inline suppressions -----------------------------------------------------


def suppressions_from_obs(obs: Any) -> Set[str]:
    """Suppression tokens carried in a trace's ``obs`` block.

    Tokens are either rule ids (``"T010"``) or fingerprint references
    (``"fp:<hex>"``); anything that is not a string is ignored -- the
    obs block is user data and must never crash the linter.
    """
    if not isinstance(obs, dict):
        return set()
    lint = obs.get("lint")
    if not isinstance(lint, dict):
        return set()
    tokens = lint.get("suppress")
    if not isinstance(tokens, (list, tuple)):
        return set()
    return {t for t in tokens if isinstance(t, str)}


def apply_suppressions(
    report: Report, tokens: Iterable[str]
) -> List[Finding]:
    """Drop findings muted by ``tokens`` (rule ids or ``fp:`` refs) from
    the report (in place); returns the dropped findings."""
    tokens = set(tokens)
    if not tokens:
        return []
    rules = {t for t in tokens if not t.startswith("fp:")}
    fps = {t[3:] for t in tokens if t.startswith("fp:")}
    kept: List[Finding] = []
    dropped: List[Finding] = []
    for f in report.findings:
        muted = f.rule_id in rules or (fps and fingerprint(f) in fps)
        (dropped if muted else kept).append(f)
    report.findings[:] = kept
    return dropped
