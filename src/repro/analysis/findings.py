"""The rule registry and the ``Finding`` model of ``repro lint``.

Every check the static analyzer can perform is declared here as a
:class:`Rule` -- a stable id, a default :class:`Severity`, a category, a
one-line summary, and an optional autofix hint.  A concrete violation is a
:class:`Finding`: the rule, a human message, a *location* (the JSON path
inside a batch document, or ``file:lineno`` inside a stream), the witness
states/arrows it anchors to, and any extra structured data.  Reporters
(:mod:`repro.analysis.reporters`) and the renderer's lint annotations
consume findings; the catalogue itself is documented in
``docs/ANALYSIS.md`` (kept in sync by ``tests/analysis/test_findings.py``).

Rule id scheme: ``T``\\ *nnn* trace sanitizer, ``C``\\ *nnn* control-relation
analyzer, ``P``\\ *nnn* predicate classifier, ``R``\\ *nnn* message-race
detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "rule",
    "Finding",
    "Report",
]


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One check of the static analyzer.

    ``autofix`` is a hint for tooling (and humans): a short imperative
    describing the mechanical fix, or ``None`` when the finding needs
    human judgement.
    """

    id: str
    severity: Severity
    category: str
    summary: str
    autofix: Optional[str] = None


def _catalogue(*rules: Rule) -> Dict[str, Rule]:
    out: Dict[str, Rule] = {}
    for r in rules:
        if r.id in out:
            raise ValueError(f"duplicate rule id {r.id}")
        out[r.id] = r
    return out


#: The complete rule catalogue, keyed by id.
RULES: Dict[str, Rule] = _catalogue(
    # -- trace sanitizer (category "trace") ---------------------------------
    Rule("T001", Severity.ERROR, "trace",
         "malformed trace structure (shape, types, or unknown record)"),
    Rule("T002", Severity.ERROR, "trace",
         "receive before the initial state (axiom D1)",
         autofix="retarget the arrow at a state with index >= 1"),
    Rule("T003", Severity.ERROR, "trace",
         "send after the final state (axiom D2)",
         autofix="resource the arrow at a state that completes"),
    Rule("T004", Severity.ERROR, "trace",
         "event carries two messages / duplicate delivery (axiom D3)",
         autofix="drop the duplicate message"),
    Rule("T005", Severity.ERROR, "trace",
         "orphan endpoint: arrow references a nonexistent process or state"),
    Rule("T006", Severity.ERROR, "trace",
         "message stays on one process or points backwards"),
    Rule("T007", Severity.WARNING, "trace",
         "FIFO inversion: deliveries cross on one channel",
         autofix="swap the crossed receive states"),
    Rule("T008", Severity.ERROR, "trace",
         "recorded vector clock disagrees with the recomputed clock"),
    Rule("T009", Severity.ERROR, "trace",
         "stream record violates causal delivery order"),
    Rule("T010", Severity.WARNING, "trace",
         "timestamps run backwards (within a process or across a message)"),
    Rule("T011", Severity.ERROR, "trace",
         "message causality is cyclic"),
    # -- control-relation analyzer (category "control") ---------------------
    Rule("C101", Severity.ERROR, "control",
         "control relation interferes with causality (cycle)",
         autofix="drop one arrow of the witness cycle"),
    Rule("C102", Severity.WARNING, "control",
         "control arrow is transitively redundant",
         autofix="drop the arrow; its ordering is already implied"),
    Rule("C103", Severity.ERROR, "control",
         "control arrow is unenforceable (source never completes or "
         "target cannot be blocked)",
         autofix="move the endpoint to an interior state"),
    Rule("C104", Severity.ERROR, "control",
         "No Controller Exists (Lemma 2): overlapping false-intervals"),
    Rule("C105", Severity.WARNING, "control",
         "duplicate control arrow",
         autofix="drop the repeated arrow"),
    Rule("C106", Severity.WARNING, "control",
         "arrow blocks a process in a predicate-false state (assumption A1)"),
    Rule("C107", Severity.WARNING, "control",
         "local predicate is false in a final state (assumption A2)"),
    # -- predicate classifier (category "predicate") ------------------------
    Rule("P201", Severity.ERROR, "predicate",
         "is_regular() claim disagrees with the derived predicate class"),
    Rule("P202", Severity.WARNING, "predicate",
         "predicate is syntactically general but semantically a tighter "
         "class; a polynomial engine applies",
         autofix="rewrite the predicate in its normalised form"),
    Rule("P203", Severity.INFO, "predicate",
         "engine routing recommendation and lattice-size estimate"),
    # -- message-race detector (category "race") ----------------------------
    Rule("R301", Severity.WARNING, "race",
         "concurrent local states write the same variable"),
    Rule("R302", Severity.WARNING, "race",
         "racing receives: concurrent sends delivered to one process"),
    Rule("R303", Severity.WARNING, "race",
         "crossed sends: two processes message each other concurrently"),
)


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises ``KeyError`` on unknown ids)."""
    return RULES[rule_id]


StatePair = Tuple[int, int]


@dataclass
class Finding:
    """One concrete violation, anchored to a witness.

    Attributes
    ----------
    rule_id:
        Id into :data:`RULES`.
    message:
        Human-readable description, including the witness inline.
    location:
        Where in the *input* the problem lives: a JSON path for batch
        documents (``messages[3].src``), ``file:lineno`` for streams, or
        ``None`` for derived/semantic findings.
    states:
        Witness local states as ``(proc, index)`` pairs -- what the
        renderer's lint annotations mark.
    arrows:
        Witness arrows as ``((proc, index), (proc, index))`` pairs.
    data:
        Extra structured witness content (JSON-ready).
    """

    rule_id: str
    message: str
    location: Optional[str] = None
    states: Tuple[StatePair, ...] = ()
    arrows: Tuple[Tuple[StatePair, StatePair], ...] = ()
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    @property
    def category(self) -> str:
        return self.rule.category

    def describe(self) -> str:
        loc = f" at {self.location}" if self.location else ""
        return f"{self.rule_id} [{self.severity}]{loc}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "category": self.category,
            "message": self.message,
            "location": self.location,
            "states": [list(s) for s in self.states],
            "arrows": [[list(a), list(b)] for a, b in self.arrows],
            "data": self.data,
            "autofix": self.rule.autofix,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            rule_id=str(d["rule"]),
            message=str(d.get("message", "")),
            location=d.get("location"),
            states=tuple((int(s[0]), int(s[1])) for s in d.get("states", ())),
            arrows=tuple(
                ((int(a[0]), int(a[1])), (int(b[0]), int(b[1])))
                for a, b in d.get("arrows", ())
            ),
            data=dict(d.get("data", {})),
        )


@dataclass
class Report:
    """The outcome of one lint run."""

    source: str
    format: str
    findings: List[Finding] = field(default_factory=list)
    #: analysis passes that ran, in order
    passes: List[str] = field(default_factory=list)
    #: passes skipped (e.g. deep passes gated behind a clean sanitizer run)
    skipped: List[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def by_rule(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    def ok(self, strict: bool = False) -> bool:
        """Clean under the given gate?  ``strict`` promotes warnings."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        return all(f.severity < threshold for f in self.findings)

    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s): {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.count(Severity.INFO)} info"
        )
