"""Static analysis of traces, control relations, and predicates.

The ``repro lint`` subsystem: proves or refutes the pipeline's standing
assumptions over a recorded trace -- deposet axioms D1--D3, channel
integrity, non-interference of the control relation, predicate class --
without executing any detector, controller, or replay, and explains every
violation with a concrete witness.

Entry points: :func:`lint_trace` / :func:`lint_deposet` run all passes
and return a :class:`Report`; :func:`classify` is the predicate
classifier the detection engine's ``auto`` mode routes through; the rule
catalogue lives in :data:`RULES` (documented in ``docs/ANALYSIS.md``).
"""

from repro.analysis.classifier import (
    Classification,
    PredicateClass,
    classify,
    raw_class,
    semantically_regular,
)
from repro.analysis.findings import RULES, Finding, Report, Rule, Severity
from repro.analysis.fingerprint import (
    apply_baseline,
    apply_suppressions,
    fingerprint,
    load_baseline,
    suppressions_from_obs,
    write_baseline,
)
from repro.analysis.incremental import (
    RULE_MODES,
    IncrementalRule,
    RuleMode,
    StreamingLinter,
)
from repro.analysis.raw import (
    RawTrace,
    StreamParser,
    load_raw,
    parse_batch,
    parse_stream,
    parse_stream_lines,
)
from repro.analysis.reporters import REPORTERS, render_json, render_sarif, render_text
from repro.analysis.runner import (
    lint_deposet,
    lint_raw,
    lint_trace,
    run_deep_passes,
    run_rules,
)
from repro.analysis.storelint import gate_findings, lint_store

__all__ = [
    "Classification",
    "Finding",
    "IncrementalRule",
    "PredicateClass",
    "RawTrace",
    "Report",
    "REPORTERS",
    "RULES",
    "RULE_MODES",
    "Rule",
    "RuleMode",
    "Severity",
    "StreamParser",
    "StreamingLinter",
    "apply_baseline",
    "apply_suppressions",
    "classify",
    "fingerprint",
    "gate_findings",
    "lint_deposet",
    "lint_raw",
    "lint_store",
    "lint_trace",
    "load_baseline",
    "load_raw",
    "parse_batch",
    "parse_stream",
    "parse_stream_lines",
    "raw_class",
    "render_json",
    "render_sarif",
    "render_text",
    "run_deep_passes",
    "run_rules",
    "semantically_regular",
    "suppressions_from_obs",
    "write_baseline",
]
