"""Static analysis of traces, control relations, and predicates.

The ``repro lint`` subsystem: proves or refutes the pipeline's standing
assumptions over a recorded trace -- deposet axioms D1--D3, channel
integrity, non-interference of the control relation, predicate class --
without executing any detector, controller, or replay, and explains every
violation with a concrete witness.

Entry points: :func:`lint_trace` / :func:`lint_deposet` run all passes
and return a :class:`Report`; :func:`classify` is the predicate
classifier the detection engine's ``auto`` mode routes through; the rule
catalogue lives in :data:`RULES` (documented in ``docs/ANALYSIS.md``).
"""

from repro.analysis.classifier import (
    Classification,
    PredicateClass,
    classify,
    raw_class,
    semantically_regular,
)
from repro.analysis.findings import RULES, Finding, Report, Rule, Severity
from repro.analysis.raw import RawTrace, load_raw, parse_batch, parse_stream
from repro.analysis.reporters import REPORTERS, render_json, render_sarif, render_text
from repro.analysis.runner import lint_deposet, lint_raw, lint_trace

__all__ = [
    "Classification",
    "Finding",
    "PredicateClass",
    "RawTrace",
    "Report",
    "REPORTERS",
    "RULES",
    "Rule",
    "Severity",
    "classify",
    "lint_deposet",
    "lint_raw",
    "lint_trace",
    "load_raw",
    "parse_batch",
    "parse_stream",
    "raw_class",
    "render_json",
    "render_sarif",
    "render_text",
    "semantically_regular",
]
