"""Lint orchestration: parse leniently, run the passes, build the report.

Pass order and gating:

1. **parse** -- lenient parsing (:mod:`repro.analysis.raw`) collects
   structural (T001) and stream delivery-order (T009) findings.
2. **sanitizer** -- T002..T011 over the raw trace; always runs when a raw
   trace exists.
3. The deep passes need a *validated* deposet of the underlying
   computation (messages only -- the control relation under scrutiny is
   deliberately left out).  Construction is attempted after the
   sanitizer; when it fails (the trace has structural errors), the
   **control**, **classifier**, and **races** passes are recorded as
   skipped rather than crashing on garbage.
4. **control** -- C101..C107 (C104/C106/C107 only with a predicate).
5. **classifier** -- P201..P203, only with a predicate.
6. **races** -- R301..R303.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.analysis.findings import Finding, Report
from repro.analysis.raw import RawTrace, load_raw, parse_batch
from repro.analysis.sanitizer import sanitize
from repro.errors import ReproError
from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet

__all__ = [
    "lint_raw",
    "lint_trace",
    "lint_deposet",
    "run_rules",
    "run_deep_passes",
]

DEEP_PASSES = ("control", "classifier", "races")


def lint_raw(
    raw: Optional[RawTrace],
    report: Report,
    predicate: Optional[Predicate] = None,
) -> Report:
    """Run all passes over an already-parsed raw trace, into ``report``."""
    if raw is None:
        report.skipped.extend(("sanitizer",) + DEEP_PASSES)
        return report

    report.passes.append("sanitizer")
    report.extend(sanitize(raw))

    return run_deep_passes(raw, report, predicate=predicate)


def run_deep_passes(
    raw: RawTrace,
    report: Report,
    predicate: Optional[Predicate] = None,
) -> Report:
    """The deep passes (control / classifier / races) over ``raw``, into
    ``report`` -- including the validated-deposet gate.  Shared between
    the batch pipeline above and the streaming linter's finalize
    (:mod:`repro.analysis.incremental`): these passes are whole-trace by
    nature, so both pipelines run the identical code."""
    dep = _underlying_deposet(raw, report)
    if dep is None:
        report.skipped.extend(DEEP_PASSES)
        return report

    from repro.analysis.control import analyze_control

    report.passes.append("control")
    report.extend(analyze_control(raw, dep, predicate=predicate))

    if predicate is not None:
        from repro.analysis.classifier import analyze_predicate

        report.passes.append("classifier")
        report.extend(analyze_predicate(dep, predicate))
    else:
        report.skipped.append("classifier")

    from repro.analysis.races import detect_races

    report.passes.append("races")
    report.extend(detect_races(dep))
    return report


def run_rules(
    raw: Optional[RawTrace],
    *,
    predicate: Optional[Predicate] = None,
    parse_findings: Sequence[Finding] = (),
    source: str = "<raw>",
    fmt: str = "",
) -> Report:
    """The canonical batch entry point over a parsed raw trace: a full
    report (parse + sanitizer + deep passes) from ``raw`` and the parse
    findings that produced it.  The streaming linter's prefix-identity
    contract is stated against this function."""
    report = Report(
        source=source, format=fmt or (raw.format if raw is not None else "")
    )
    report.passes.append("parse")
    report.extend(list(parse_findings))
    return lint_raw(raw, report, predicate=predicate)


def _underlying_deposet(raw: RawTrace, report: Report) -> Optional[Deposet]:
    """The validated *underlying* computation (control arrows excluded --
    judging them is the control pass's job, and an interfering relation
    must produce a C101 finding, not a constructor crash).

    ``None`` when construction fails; a failure the sanitizer did not
    already explain is reported as T001 (it means a check here and a
    check there disagree -- still a finding, never a crash).
    """
    from repro.causality.relations import StateRef
    from repro.trace.states import MessageArrow

    try:
        return Deposet(
            raw.states,
            [
                MessageArrow(
                    StateRef(*m.src), StateRef(*m.dst),
                    payload=m.payload, tag=m.tag,
                )
                for m in raw.messages
            ],
            (),
            proc_names=raw.proc_names or None,
            timestamps=raw.timestamps,
        )
    except (ReproError, ValueError) as exc:
        # ValueError covers constructor-level guards that predate the
        # typed hierarchy (e.g. MessageArrow refusing same-process
        # arrows) -- the sanitizer already reported those as T006.
        if not any(f.severity.name == "ERROR" for f in report.findings):
            report.add(
                Finding(
                    "T001",
                    f"trace could not be validated: {exc}",
                )
            )
        return None


def lint_trace(
    path: Union[str, Path],
    predicate: Optional[Predicate] = None,
) -> Report:
    """Lint a trace file (either format).  Never raises on bad content --
    only on OS-level errors."""
    raw, fmt, findings = load_raw(path)
    report = Report(source=str(path), format=fmt)
    report.passes.append("parse")
    report.extend(findings)
    return lint_raw(raw, report, predicate=predicate)


def lint_deposet(
    dep: Deposet,
    predicate: Optional[Predicate] = None,
    source: str = "<deposet>",
    obs: Optional[Dict[str, Any]] = None,
) -> Report:
    """Lint an in-memory deposet (round-trips through the batch schema so
    every pass sees the same shape a file would produce)."""
    from repro.trace.io import FORMAT, deposet_to_dict

    raw, findings = parse_batch(deposet_to_dict(dep, obs=obs), source=source)
    report = Report(source=source, format=FORMAT)
    report.passes.append("parse")
    report.extend(findings)
    return lint_raw(raw, report, predicate=predicate)
