"""Pass 1: the trace sanitizer (rules T002--T011).

Statically re-checks everything the strict loaders enforce dynamically --
the deposet axioms D1--D3, channel integrity, acyclicity of the message
causality -- plus properties no loader checks at all: FIFO inversions,
recorded-vs-recomputed vector clocks, and timestamp regressions.  Works
over a :class:`~repro.analysis.raw.RawTrace`, so a single run reports
*every* violation, each with a concrete witness (states, arrows, and the
input location remembered by the lenient parser).

The cycle witness machinery (:func:`find_event_cycle`) is shared with the
control-relation analyzer: both passes search the same event graph, the
sanitizer over message arrows only (T011), the control pass over the
extended relation (C101).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.raw import RawArrow, RawTrace

__all__ = [
    "sanitize",
    "find_event_cycle",
    "valid_arrows",
    "t002_finding",
    "t003_finding",
    "t004_finding",
    "t005_findings",
    "t006_finding",
    "t007_finding",
]

Ref = Tuple[int, int]
EventRef = Tuple[int, int]


# -- event-graph cycle witnesses ---------------------------------------------


def _event_edges(
    counts: Sequence[int], arrows: Sequence[Tuple[Ref, Ref]]
) -> Tuple[Dict[EventRef, List[EventRef]], List[Tuple[EventRef, EventRef]]]:
    """Successor map of the event graph plus the arrow-induced edges.

    Each arrow ``src -> dst`` contributes the edge ``leave(src) ->
    enter(dst)``, i.e. event ``(src.proc, src.index)`` to event
    ``(dst.proc, dst.index - 1)``; arrows collapsing to a single event
    (``complete(s) == enter(s+1)``) are trivially satisfied and skipped,
    mirroring :class:`~repro.causality.relations.CausalOrder`.
    """
    succ: Dict[EventRef, List[EventRef]] = {}
    event_counts = [m - 1 for m in counts]
    for i, ec in enumerate(event_counts):
        for e in range(ec - 1):
            succ.setdefault((i, e), []).append((i, e + 1))
    arrow_edges: List[Tuple[EventRef, EventRef]] = []
    for src, dst in arrows:
        u: EventRef = (src[0], src[1])
        v: EventRef = (dst[0], dst[1] - 1)
        if u == v:
            arrow_edges.append((u, v))
            continue
        succ.setdefault(u, []).append(v)
        arrow_edges.append((u, v))
    return succ, arrow_edges


def find_event_cycle(
    counts: Sequence[int],
    arrows: Sequence[Tuple[Ref, Ref]],
    candidates: Optional[Sequence[int]] = None,
) -> Optional[Tuple[List[EventRef], int]]:
    """A minimal cycle of the event graph, or ``None`` when acyclic.

    Tries to close a cycle through each arrow in ``candidates`` (indices
    into ``arrows``; all of them by default): BFS from the arrow's target
    event back to its source event over the full graph yields the
    shortest path, so the returned cycle is minimal among cycles through
    any candidate.  Returns ``(events, arrow_index)`` -- the cycle as an
    event sequence (closing arrow implied from last back to first) and
    the index of the arrow that closes it.
    """
    succ, arrow_edges = _event_edges(counts, arrows)
    best: Optional[Tuple[List[EventRef], int]] = None
    for k in candidates if candidates is not None else range(len(arrows)):
        u, v = arrow_edges[k]
        if u == v:
            continue
        # Shortest path v ->* u; appending the closing edge u -> v (arrow
        # k) turns it into a cycle.
        parents: Dict[EventRef, Optional[EventRef]] = {v: None}
        queue: deque[EventRef] = deque([v])
        found = False
        while queue and not found:
            node = queue.popleft()
            for nxt in succ.get(node, ()):
                if nxt in parents:
                    continue
                parents[nxt] = node
                if nxt == u:
                    found = True
                    break
                queue.append(nxt)
        if not found:
            continue
        path: List[EventRef] = []
        cur: Optional[EventRef] = u
        while cur is not None:
            path.append(cur)
            cur = parents[cur]
        path.reverse()  # v .. u
        if best is None or len(path) < len(best[0]):
            best = (path, k)
    return best


def valid_arrows(raw: RawTrace, arrows: Sequence[RawArrow]) -> List[int]:
    """Indices of arrows satisfying the structural preconditions of
    :class:`CausalOrder` (endpoints exist, D1/D2 hold, not a backwards or
    degenerate same-process arrow) -- the subset deeper passes may use."""
    counts = raw.state_counts
    out = []
    for k, a in enumerate(arrows):
        (sp, si), (dp, di) = a.src, a.dst
        if not (raw.has_state(a.src) and raw.has_state(a.dst)):
            continue
        if di < 1 or si > counts[sp] - 2:
            continue
        if sp == dp and si >= di:
            continue
        out.append(k)
    return out


# -- shared finding constructors ---------------------------------------------
#
# Both the batch pass below and the streaming engine
# (:mod:`repro.analysis.incremental`) build their findings through these,
# so streaming/batch identity holds by construction for the shared rules.


def t005_findings(
    what: str, a: RawArrow, counts: Sequence[int], n: int
) -> List[Finding]:
    """T005 findings for ``a``'s out-of-range endpoints (possibly none)."""
    out: List[Finding] = []
    for ref, role in ((a.src, "src"), (a.dst, "dst")):
        p, x = ref
        if not (0 <= p < n):
            out.append(
                Finding(
                    "T005",
                    f"{what} {role} ({p},{x}): no process {p} "
                    f"(trace has {n})",
                    location=a.location,
                    arrows=(a.pair,),
                )
            )
        elif not (0 <= x < counts[p]):
            out.append(
                Finding(
                    "T005",
                    f"{what} {role} ({p},{x}): process {p} has no "
                    f"state {x} (it has {counts[p]})",
                    location=a.location,
                    states=((p, min(max(x, 0), counts[p] - 1)),),
                    arrows=(a.pair,),
                )
            )
    return out


def t006_finding(a: RawArrow) -> Finding:
    (sp, si), (dp, di) = a.src, a.dst
    direction = "points backwards on" if si >= di else "stays on"
    return Finding(
        "T006",
        f"message ({sp},{si}) -> ({dp},{di}) {direction} process {sp}",
        location=a.location,
        states=(a.src, a.dst),
        arrows=(a.pair,),
    )


def t002_finding(what: str, a: RawArrow) -> Finding:
    (sp, si), (dp, di) = a.src, a.dst
    return Finding(
        "T002",
        f"{what} ({sp},{si}) -> ({dp},{di}): target is the "
        f"initial state of process {dp}, which is entered "
        f"before any receive can happen (D1)",
        location=a.location,
        states=(a.dst,),
        arrows=(a.pair,),
    )


def t003_finding(what: str, a: RawArrow) -> Finding:
    (sp, si), (dp, di) = a.src, a.dst
    return Finding(
        "T003",
        f"{what} ({sp},{si}) -> ({dp},{di}): source is the "
        f"final state of process {sp}, which never completes "
        f"(D2)",
        location=a.location,
        states=(a.src,),
        arrows=(a.pair,),
    )


def t004_finding(
    ev: EventRef, prev_role: str, prev: RawArrow, role: str, a: RawArrow
) -> Finding:
    dup = (
        "duplicate delivery"
        if role == "receive" and prev_role == "receive"
        else "event carries two messages"
    )
    return Finding(
        "T004",
        f"event ({ev[0]},{ev[1]}) is the {prev_role} of "
        f"{_arrow_str(prev)} and the {role} of "
        f"{_arrow_str(a)} ({dup}; D3)",
        location=a.location,
        states=((ev[0], ev[1]),),
        arrows=(prev.pair, a.pair),
        data={"other_location": prev.location},
    )


def t007_finding(
    sp: int, dp: int, first: RawArrow, second: RawArrow
) -> Finding:
    return Finding(
        "T007",
        f"channel {sp} -> {dp} is not FIFO: "
        f"{_arrow_str(first)} was sent before "
        f"{_arrow_str(second)} but delivered after it",
        location=second.location,
        states=(first.dst, second.dst),
        arrows=(first.pair, second.pair),
        data={"other_location": first.location},
    )


# -- the pass ----------------------------------------------------------------


def sanitize(raw: RawTrace) -> List[Finding]:
    """Run every trace-sanitizer rule over ``raw``."""
    findings: List[Finding] = []
    counts = raw.state_counts
    n = raw.n

    # T005 / T006 / T002 / T003: per-arrow structural axioms.
    for what, arrows in (("message", raw.messages), ("control arrow", raw.control)):
        for a in arrows:
            (sp, si), (dp, di) = a.src, a.dst
            bad = t005_findings(what, a, counts, n)
            if bad:
                findings.extend(bad)
                continue
            if what != "message":
                # Control-arrow semantics (D1/D2 generalised, direction,
                # enforceability) belong to the control pass's C103.
                continue
            if sp == dp:
                findings.append(t006_finding(a))
                continue
            if di < 1:
                findings.append(t002_finding(what, a))
            if si > counts[sp] - 2:
                findings.append(t003_finding(what, a))

    # T004: one message per event (D3).  Judged over messages with
    # existing endpoints so T005 problems don't cascade.
    roles: Dict[EventRef, Tuple[str, RawArrow]] = {}
    for a in raw.messages:
        if not (raw.has_state(a.src) and raw.has_state(a.dst)):
            continue
        if a.src[0] == a.dst[0]:
            # already condemned by T006; its send and receive collapse
            # onto one process and would fake a D3 violation here
            continue
        for ev, role in (
            ((a.src[0], a.src[1]), "send"),
            ((a.dst[0], a.dst[1] - 1), "receive"),
        ):
            if ev in roles:
                prev_role, prev = roles[ev]
                findings.append(t004_finding(ev, prev_role, prev, role, a))
            else:
                roles[ev] = (role, a)

    # T011: cyclic message causality, with a minimal cycle witness.
    ok_msgs = valid_arrows(raw, raw.messages)
    cycle = find_event_cycle(
        counts,
        [raw.messages[k].pair for k in ok_msgs],
    )
    if cycle is not None:
        events, k = cycle
        closing = raw.messages[ok_msgs[k]]
        findings.append(
            Finding(
                "T011",
                f"message causality is cyclic: a chain of "
                f"{len(events)} event(s) leads from the receive of "
                f"{_arrow_str(closing)} back to its send",
                location=closing.location,
                states=tuple((p, e + 1) for p, e in events),
                arrows=(closing.pair,),
                data={"cycle_events": [list(ev) for ev in events]},
            )
        )

    # T007: FIFO inversions, per directed channel.
    by_channel: Dict[Tuple[int, int], List[RawArrow]] = {}
    for k in ok_msgs:
        a = raw.messages[k]
        by_channel.setdefault((a.src[0], a.dst[0]), []).append(a)
    for (sp, dp), msgs in by_channel.items():
        msgs.sort(key=lambda a: a.src[1])
        for i in range(len(msgs)):
            for j in range(i + 1, len(msgs)):
                first, second = msgs[i], msgs[j]
                if (
                    first.src[1] < second.src[1]
                    and first.dst[1] > second.dst[1]
                ):
                    findings.append(t007_finding(sp, dp, first, second))

    # T010: timestamp regressions (warnings; wall clocks are advisory).
    if raw.timestamps is not None:
        ts = raw.timestamps
        for i, row in enumerate(ts):
            for a in range(1, len(row)):
                if row[a] < row[a - 1]:
                    findings.append(
                        Finding(
                            "T010",
                            f"process {i} time runs backwards: state "
                            f"({i},{a}) at {row[a]} after ({i},{a - 1}) "
                            f"at {row[a - 1]}",
                            states=((i, a - 1), (i, a)),
                        )
                    )
        for k in ok_msgs:
            a = raw.messages[k]
            (sp, si), (dp, di) = a.src, a.dst
            if ts[dp][di] < ts[sp][si]:
                findings.append(
                    Finding(
                        "T010",
                        f"message {_arrow_str(a)} is received at "
                        f"{ts[dp][di]}, before it was sent at {ts[sp][si]}",
                        location=a.location,
                        states=(a.src, a.dst),
                        arrows=(a.pair,),
                    )
                )

    # T008: recorded vector clocks vs clocks recomputed from the arrows.
    # Only when every arrow is structurally sound: a dropped arrow changes
    # the recomputed order, and flagging every downstream clock would bury
    # the one T005/T006 finding that actually explains the trace.
    ok_ctl = valid_arrows(raw, raw.control)
    all_arrows_ok = (
        len(ok_msgs) == len(raw.messages) and len(ok_ctl) == len(raw.control)
    )
    if raw.clocks is not None and cycle is None and all_arrows_ok:
        findings.extend(_check_clocks(raw, ok_msgs))

    return findings


def _check_clocks(raw: RawTrace, ok_msgs: List[int]) -> List[Finding]:
    from repro.causality.relations import CausalOrder

    arrows = [raw.messages[k].pair for k in ok_msgs]
    arrows += [raw.control[k].pair for k in valid_arrows(raw, raw.control)]
    try:
        order = CausalOrder(raw.state_counts, arrows)
    except Exception:
        # Structural problems already reported elsewhere; without a valid
        # order there is nothing to compare against.
        return []
    out: List[Finding] = []
    recorded = raw.clocks
    assert recorded is not None
    for i in range(raw.n):
        for a in range(len(raw.states[i])):
            want = [int(c) for c in order.clock((i, a))]
            got = recorded[i][a]
            if got != want:
                out.append(
                    Finding(
                        "T008",
                        f"state ({i},{a}): recorded clock {got} differs "
                        f"from the clock recomputed from the arrows {want}",
                        location=f"clocks[{i}][{a}]",
                        states=((i, a),),
                        data={"recorded": got, "recomputed": want},
                    )
                )
    return out


def _arrow_str(a: RawArrow) -> str:
    tag = f" [{a.tag}]" if a.tag else ""
    return f"({a.src[0]},{a.src[1]}) -> ({a.dst[0]},{a.dst[1]}){tag}"
