"""Incremental causality: the index layer of the trace stack.

:class:`~repro.causality.relations.CausalOrder` is batch-only -- every
vector clock is recomputed from scratch on construction, so extending a
trace by one event or one control arrow costs a full Kahn pass over the
event graph.  :class:`CausalIndex` keeps the exact same query API (it *is*
a ``CausalOrder``) while supporting the two mutations a streaming trace
store needs:

* :meth:`append_event` -- one new event arriving in **causal delivery
  order** (every arrow source already completed).  The new state's clock
  is ``max`` over its predecessors' clocks: O(n) per event, the classic
  Fidge/Mattern maintenance.
* :meth:`insert_arrows` / :meth:`extended` -- a new arrow between existing
  states (a control arrow, or a message attached after the fact).  Only
  the **downstream cone** of the arrow's target event can change, so the
  index re-runs Kahn's propagation restricted to that cone instead of the
  whole graph.

Sharing discipline
------------------
Clock matrices are shared between an index, its :meth:`freeze` snapshots,
and its :meth:`extended` children; rows are copied only when a cone update
would touch a row a snapshot can see (copy-on-write, tracked per process
via ``_owned`` / ``_watermark``).  Appends never conflict with snapshots:
they only write rows beyond every snapshot's state counts.  Only one index
in a sharing family may be *appendable* (the live store's), which is what
makes the append fast path safe without locks or copies.

Equality with the batch order -- clocks, happened-before / concurrency /
consistency answers, and ``CycleError`` payloads -- is pinned by the
hypothesis suite in ``tests/store/test_causal_index.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.causality.relations import Arrow, CausalOrder, CycleError, EventRef, StateRef
from repro.errors import MalformedTraceError
from repro.obs.metrics import METRICS

__all__ = ["CausalIndex"]

_APPENDS = METRICS.counter("index.appends")
_INSERTS = METRICS.counter("index.arrow_inserts")
_CONE_EVENTS = METRICS.counter("index.cone_events")


class CausalIndex(CausalOrder):
    """An incrementally-maintained :class:`CausalOrder`.

    Construction is identical to ``CausalOrder`` (a batch build over the
    given counts and arrows); the instance can then grow in place.
    """

    __slots__ = ("_in", "_out", "_appendable", "_owned", "_watermark")

    def __init__(
        self,
        state_counts: Sequence[int],
        arrows: Iterable[Arrow] = (),
        appendable: bool = True,
    ):
        super().__init__(state_counts, arrows)
        # Lazy adjacency over *events* (built on first arrow insert; the
        # append fast path never needs it unless it already exists).
        self._in: Optional[Dict[EventRef, List[EventRef]]] = None
        self._out: Optional[Dict[EventRef, List[EventRef]]] = None
        self._appendable = appendable
        self._owned = [True] * self.n
        self._watermark = [0] * self.n

    @classmethod
    def from_order(cls, order: CausalOrder) -> "CausalIndex":
        """A fresh index over an existing order's counts and arrows."""
        return cls(order.state_counts, order.arrows)

    # -- sharing / derivation ----------------------------------------------

    def _clone_shared(self, appendable: bool) -> "CausalIndex":
        """A twin sharing clock matrices; both sides lose row ownership so
        any subsequent in-place cone update copies before writing."""
        twin = CausalIndex.__new__(CausalIndex)
        twin.n = self.n
        twin.state_counts = self.state_counts
        twin._clocks = list(self._clocks)
        twin._arrows = list(self._arrows)
        twin._in = None
        twin._out = None
        twin._appendable = appendable
        twin._owned = [False] * self.n
        twin._watermark = [0] * self.n
        self._owned = [False] * self.n
        return twin

    def freeze(self) -> "CausalIndex":
        """An immutable snapshot of the current counts/arrows.

        The snapshot shares the clock matrices; the live index protects the
        rows the snapshot can see (everything below the current counts) by
        copy-on-write before any later in-place arrow insert touches them.
        """
        snap = self._clone_shared(appendable=False)
        # The live side keeps ownership of rows *beyond* the snapshot.
        self._owned = [True] * self.n
        self._watermark = list(self.state_counts)
        return snap

    def extended(self, extra_arrows: Iterable[Arrow]) -> "CausalIndex":
        """A new order with additional arrows, without a full rebuild.

        Same contract as :meth:`CausalOrder.extended` (``CycleError`` when
        the arrows interfere, ``MalformedTraceError`` on bad endpoints;
        arrows already present are skipped), but the cost is the downstream
        cone of each new arrow, not a whole-trace Kahn pass.  ``self`` is
        not modified.
        """
        twin = self._clone_shared(appendable=False)
        twin._insert(extra_arrows)
        return twin

    def insert_arrows(self, arrows: Iterable[Arrow]) -> List[Arrow]:
        """Insert arrows **in place** (the live store's mutation path).

        Returns the arrows actually inserted (duplicates of existing
        arrows are skipped).  Raises before any mutation on endpoint
        validation errors; a ``CycleError`` (interference) leaves the index
        on the last acyclic prefix of the batch.
        """
        if not self._appendable:
            raise RuntimeError(
                "this CausalIndex is a frozen snapshot or derived view; "
                "insert arrows on the live store index, or use extended()"
            )
        return self._insert(arrows)

    # -- append fast path ---------------------------------------------------

    def append_event(
        self, proc: int, sources: Iterable[StateRef | Tuple[int, int]] = ()
    ) -> StateRef:
        """Process ``proc`` takes one event and enters a new state.

        ``sources`` are arrow sources (message sends, exact control
        sources) targeting the entered state.  Streaming ingestion must be
        in **causal delivery order**: each source state has already
        completed (``src.index <= m_src - 2`` at call time), which is what
        makes the O(n) clock extension sound -- every predecessor clock is
        final.  Returns the entered state.
        """
        if not self._appendable:
            raise RuntimeError(
                "this CausalIndex is a frozen snapshot or derived view; "
                "append on the live store index"
            )
        n = self.n
        if not (0 <= proc < n):
            raise MalformedTraceError(f"no process {proc}")
        counts = self.state_counts
        m = counts[proc]  # index of the state being entered
        row = self._clocks[proc][m - 1].copy()  # V(previous state)
        srcs: List[StateRef] = []
        for src in sources:
            src = StateRef(*src)
            if not (0 <= src.proc < n):
                raise MalformedTraceError(f"arrow endpoint {src!r}: no such process")
            if src.proc == proc:
                if src.index >= m:
                    raise MalformedTraceError(
                        f"same-process arrow {src!r} -> s[{proc},{m}] points backwards"
                    )
                # Subsumed by the in-process chain: no clock contribution.
            else:
                if not (0 <= src.index < counts[src.proc]):
                    raise MalformedTraceError(f"arrow endpoint {src!r}: no such state")
                if src.index > counts[src.proc] - 2:
                    raise MalformedTraceError(
                        f"arrow source {src!r} has not completed yet; streaming "
                        f"appends must arrive in causal delivery order (D2)"
                    )
                # Event clock of leave(src): state clock of src.index+1 with
                # the diagonal convention undone on the source component.
                keep = max(int(row[src.proc]), src.index)
                np.maximum(row, self._clocks[src.proc][src.index + 1], out=row)
                row[src.proc] = keep
            srcs.append(src)
        row[proc] = m

        arr = self._clocks[proc]
        if m >= arr.shape[0]:  # grow capacity (amortised O(1) appends)
            grown = np.full((max(8, 2 * arr.shape[0]), n), -1, dtype=np.int32)
            grown[:m] = arr[:m]
            self._clocks[proc] = arr = grown
            self._owned[proc] = True
            self._watermark[proc] = 0
        arr[m] = row
        self.state_counts = counts[:proc] + (m + 1,) + counts[proc + 1 :]

        dst = StateRef(proc, m)
        dst_ev: EventRef = (proc, m - 1)
        for src in srcs:
            self._arrows.append((src, dst))
            src_ev: EventRef = (src.proc, src.index)
            if src_ev != dst_ev and self._out is not None:
                self._out.setdefault(src_ev, []).append(dst_ev)
                self._in.setdefault(dst_ev, []).append(src_ev)
        _APPENDS.inc()
        return dst

    # -- arrow insertion (cone recompute) -----------------------------------

    def _validate_arrow(self, src: StateRef, dst: StateRef) -> None:
        for ref in (src, dst):
            if not (0 <= ref.proc < self.n):
                raise MalformedTraceError(f"arrow endpoint {ref!r}: no such process")
            if not (0 <= ref.index < self.state_counts[ref.proc]):
                raise MalformedTraceError(f"arrow endpoint {ref!r}: no such state")
        if src.index > self.state_counts[src.proc] - 2:
            raise MalformedTraceError(
                f"arrow source {src!r} is a final state: it never "
                f"completes, so the arrow could never be satisfied (D2)"
            )
        if dst.index < 1:
            raise MalformedTraceError(
                f"arrow target {dst!r} is a start state: it is entered "
                f"before anything can be waited for (D1)"
            )
        if src.proc == dst.proc and src.index >= dst.index:
            raise MalformedTraceError(
                f"same-process arrow {src!r} -> {dst!r} points backwards"
            )

    def _insert(self, arrows: Iterable[Arrow]) -> List[Arrow]:
        base = list(self._arrows)
        seen = set(base)
        fresh: List[Arrow] = []
        for a, b in arrows:
            arrow = (StateRef(*a), StateRef(*b))
            if arrow in seen:
                continue  # duplicate arrows add no causality
            seen.add(arrow)
            fresh.append(arrow)
        if not fresh:
            return fresh
        for src, dst in fresh:
            self._validate_arrow(src, dst)
        for src, dst in fresh:
            try:
                self._insert_one(src, dst)
            except CycleError:
                # Delegate to a batch build over the same arrow set so the
                # error payload (`remaining`) matches CausalOrder exactly.
                CausalOrder(self.state_counts, base + fresh)
                raise AssertionError(
                    "batch rebuild did not reproduce the cycle"
                )  # pragma: no cover
        _INSERTS.inc(len(fresh))
        return fresh

    def _ensure_adjacency(self) -> None:
        if self._out is not None:
            return
        self._in = {}
        self._out = {}
        for a, b in self._arrows:
            src_ev = (a.proc, a.index)
            dst_ev = (b.proc, b.index - 1)
            if src_ev == dst_ev:
                continue  # complete(s) == enter(s+1): trivially satisfied
            self._out.setdefault(src_ev, []).append(dst_ev)
            self._in.setdefault(dst_ev, []).append(src_ev)

    def _insert_one(self, src: StateRef, dst: StateRef) -> None:
        src_ev: EventRef = (src.proc, src.index)
        dst_ev: EventRef = (dst.proc, dst.index - 1)
        if src_ev == dst_ev:
            self._arrows.append((src, dst))
            return
        # Adding edge src_ev -> dst_ev creates a cycle iff dst_ev already
        # happens-before-or-equals src_ev.
        (sp, se), (dp, de) = src_ev, dst_ev
        if sp == dp:
            cyclic = de <= se
        else:
            # EC[sp][se][dp] (event clock of leave(src), component dp).
            cyclic = int(self._clocks[sp][se + 1][dp]) >= de
        if cyclic:
            raise CycleError([dst_ev])
        self._ensure_adjacency()
        self._arrows.append((src, dst))
        self._out.setdefault(src_ev, []).append(dst_ev)
        self._in.setdefault(dst_ev, []).append(src_ev)
        self._recompute_cone(dst_ev)

    def _recompute_cone(self, root: EventRef) -> None:
        """Recompute clocks of every event downstream of ``root`` (incl.)."""
        counts = self.state_counts
        out = self._out
        cone = {root}
        stack = [root]
        while stack:
            p, e = stack.pop()
            if e + 1 < counts[p] - 1 and (p, e + 1) not in cone:
                cone.add((p, e + 1))
                stack.append((p, e + 1))
            for nxt in out.get((p, e), ()):
                if nxt not in cone:
                    cone.add(nxt)
                    stack.append(nxt)
        _CONE_EVENTS.inc(len(cone))
        # Kahn's propagation restricted to the cone (acyclic: the new edge
        # was cycle-checked above, and the rest of the graph was acyclic).
        inn = self._in
        indeg: Dict[EventRef, int] = {}
        for ev in cone:
            p, e = ev
            deg = 1 if e > 0 and (p, e - 1) in cone else 0
            for s in inn.get(ev, ()):
                if s in cone:
                    deg += 1
            indeg[ev] = deg
        ready = deque(ev for ev, d in indeg.items() if d == 0)
        processed = 0
        while ready:
            ev = ready.popleft()
            self._recompute_event(ev)
            processed += 1
            p, e = ev
            nxt = (p, e + 1)
            if nxt in indeg:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
            for d in out.get(ev, ()):
                if d in indeg:
                    indeg[d] -= 1
                    if indeg[d] == 0:
                        ready.append(d)
        if processed != len(cone):  # pragma: no cover - guarded by cycle check
            raise CycleError([ev for ev, d in indeg.items() if d > 0])

    def _recompute_event(self, ev: EventRef) -> None:
        """Recompute the clock of the state entered by event ``ev``."""
        p, e = ev
        if not self._owned[p] or (e + 1) < self._watermark[p]:
            # A snapshot or twin can see this row: copy before writing.
            self._clocks[p] = self._clocks[p][: self.state_counts[p]].copy()
            self._owned[p] = True
            self._watermark[p] = 0
        clocks = self._clocks
        row = clocks[p][e].copy()  # V(state left by ev)
        for q, f in self._in.get(ev, ()):
            keep = max(int(row[q]), f)
            np.maximum(row, clocks[q][f + 1], out=row)
            row[q] = keep
        row[p] = e + 1
        clocks[p][e + 1] = row

    # -- queries whose implementation must respect capacity slack -----------

    def clock_matrix(self, proc: int) -> np.ndarray:
        """All clocks of one process, shape ``(m_proc, n)``.

        Overridden: the live index over-allocates rows for amortised
        appends, so the view is trimmed to the current state count.
        """
        return self._clocks[proc][: self.state_counts[proc]]
