"""Columnar variable packing: numpy columns out of per-state dict rows.

The trace stack stores local-state variables as one dict per state
(`TraceStore._vars` / `Deposet.state_vars`), which is the right shape for
appends and for arbitrary predicates, but the wrong shape for the O(n*p)
inner loops of detection: evaluating one local conjunct over a process's
whole state sequence should be one vectorised numpy pass, not ``m``
dict-lookup-and-call round trips.

:func:`pack_block` extracts the referenced variables of one process into
a :class:`ColumnBlock` -- per-variable numpy arrays, one entry per local
state.  A column gets a **native** dtype (bool/int64/float64, or what
numpy infers for the homogeneous scalar run) only when the values round
trip *exactly*; anything else -- missing keys, ``None``, strings, mixed
precision beyond float64's integer range -- falls back to an object
column, which the expression kernels evaluate with Python semantics.
Native columns are what the parallel driver ships through
``multiprocessing.shared_memory``: a flat buffer plus ``(dtype, shape)``
is the whole wire format, so workers attach zero-copy.

Exactness contract: for every variable ``v`` and state ``a``,
``block.columns[v][a]`` compares (``==``) and truth-tests (``bool``)
exactly like ``state_vars((proc, a)).get(v)`` does.  Missing keys pack as
``None`` (``bool(None) is False`` and ``None == x`` matches ``dict.get``
semantics), which is why packing never needs a separate presence mask.
Pinned by the hypothesis suite in ``tests/slicing/test_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["ColumnBlock", "pack_block", "pack_values"]

#: ints whose |value| stays below this survive a cast to float64 exactly;
#: a mixed int/float column with anything larger must stay object-typed
#: or equality against a nearby int would collapse distinct values.
_FLOAT_EXACT_INT = 2 ** 53


def pack_values(raw: Sequence[Any]) -> np.ndarray:
    """One variable's values as a numpy column, native dtype when exact.

    ``raw`` is the per-state value sequence (``None`` for missing keys).
    Returns a bool/int/float array only when numpy's coercion is
    value-preserving under ``==`` and ``bool``; otherwise an object array
    holding the original values.
    """
    types = {type(v) for v in raw}
    if types and types <= {bool, int, float}:
        if int in types and float in types:
            # float64 cannot represent every int: keep exactness.
            if any(
                isinstance(v, int) and not isinstance(v, bool)
                and abs(v) > _FLOAT_EXACT_INT
                for v in raw
            ):
                return _object_column(raw)
        try:
            arr = np.asarray(raw)
        except (OverflowError, ValueError):
            return _object_column(raw)
        if arr.dtype.kind in "bif":
            return arr
    return _object_column(raw)


def _object_column(raw: Sequence[Any]) -> np.ndarray:
    out = np.empty(len(raw), dtype=object)
    out[:] = list(raw)
    return out


@dataclass(frozen=True)
class ColumnBlock:
    """Packed columns of one process: ``columns[name][a]`` holds the value
    at local state ``offset + a``.

    ``offset`` is zero for a full-process block; :meth:`narrow` produces
    sub-blocks whose rows keep their *absolute* state identity, which is
    what index-test expressions (``at_or_after``/``before``) evaluate
    against.
    """

    m: int
    columns: Dict[str, np.ndarray]
    offset: int = 0

    def narrow(self, lo: int, hi: int) -> "ColumnBlock":
        """A view over rows ``[lo, hi)`` -- used to ship one chunk's worth
        of data to an executor without copying the rest of the column."""
        return ColumnBlock(
            m=hi - lo,
            columns={k: v[lo:hi] for k, v in self.columns.items()},
            offset=self.offset + lo,
        )

    @property
    def all_native(self) -> bool:
        """True when every column has a fixed-size (shared-memory-able) dtype."""
        return all(c.dtype != object for c in self.columns.values())


def pack_block(
    states: Sequence[Mapping[str, Any]], names: Iterable[str]
) -> ColumnBlock:
    """Pack the given variables of one process's state sequence."""
    wanted: Tuple[str, ...] = tuple(names)
    cols: Dict[str, np.ndarray] = {}
    for name in wanted:
        cols[name] = pack_values([s.get(name) for s in states])
    return ColumnBlock(m=len(states), columns=cols)
