"""Append-only trace storage: the user-facing façade of the trace stack.

A :class:`TraceStore` accumulates a distributed computation as it happens:
per-process columns of variable assignments (and optional timestamps),
plus message and control arrows that remain appendable after construction.
It maintains a live :class:`~repro.store.index.CausalIndex` in lockstep,
so causal queries are always available over the current prefix -- this is
what streaming ingestion (``repro ingest`` / ``repro watch``) and the
simulator's recorder write into.

Storage engines
---------------
The store is a thin façade over a :class:`~repro.storage.base.StorageBackend`:

* the default :class:`~repro.storage.memory.MemoryBackend` keeps the
  original columnar in-memory layout;
* :class:`~repro.storage.sqlite.SqliteBackend` (``TraceStore.open
  ("sqlite:trace.db")``) persists the computation as an immutable,
  CRC-checked commit chain with branch/copy-on-write semantics, paging
  variable columns through a bounded LRU cache so traces larger than RAM
  stream in and out.

Every backend is behaviorally identical (the hypothesis suite in
``tests/storage/`` enforces it), so nothing downstream -- snapshots,
detection, replay, serving -- cares which engine is underneath.  The
commit-chain verbs (:meth:`commit`, :meth:`branch`, :attr:`head`) are
no-ops/`None` on the in-memory engine.

Append discipline
-----------------
* :meth:`append_state` -- one event in causal delivery order.  When the
  event is a receive, pass ``received_from`` so the message arrow joins at
  append time (O(n)); D3 (one message per event) is enforced here.
* :meth:`append_control` -- a control arrow between existing states;
  updates only the downstream cone of the target.  Bumps :attr:`epoch`
  (arrows rewrite the causal past, so incremental detectors must
  re-examine earlier conclusions).
* :meth:`snapshot` -- an immutable :class:`~repro.trace.deposet.Deposet`
  view over the current prefix, sharing columns and a frozen index with
  the store (no copies of variable dicts, no clock rebuild).

The view layer (``Deposet``) stays the universal currency of the library;
the store is how one *grows*.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.causality.relations import Arrow, EventRef, StateRef
from repro.errors import MalformedTraceError, UnknownFreezeFormatError
from repro.obs.metrics import METRICS
from repro.store.columns import ColumnBlock
from repro.store.index import CausalIndex
from repro.storage.base import StorageBackend, open_backend
from repro.storage.memory import MemoryBackend
from repro.trace.states import MessageArrow

__all__ = ["TraceStore", "iter_delivery_events", "FREEZE_FORMAT"]

ControlArrow = Tuple[StateRef, StateRef]

#: version tag of :meth:`TraceStore.freeze` payloads
FREEZE_FORMAT = "repro-freeze/1"

_SNAPSHOTS = METRICS.counter("store.snapshots")


class TraceStore:
    """Append-only storage for one distributed computation.

    Parameters
    ----------
    n:
        Number of processes.
    start_vars:
        Initial variable assignment per process (defaults to empty).
    proc_names:
        Optional human-readable names (defaults to ``P0..P{n-1}``).
    start_times:
        Per-process start timestamps (or one scalar for all).  When given,
        the store tracks a timestamp column and snapshots carry it.
    backend:
        An already-open :class:`StorageBackend` to wrap instead of
        creating a fresh in-memory one (the other parameters are then
        ignored -- the backend carries the shape).  See also
        :meth:`open`.
    """

    def __init__(
        self,
        n: int = 0,
        start_vars: Optional[Sequence[Dict[str, Any]]] = None,
        proc_names: Optional[Sequence[str]] = None,
        start_times: Optional[Sequence[float] | float] = None,
        *,
        backend: Optional[StorageBackend] = None,
    ):
        if backend is None:
            backend = MemoryBackend(
                n, start_vars=start_vars, proc_names=proc_names,
                start_times=start_times,
            )
        self._backend = backend

    @classmethod
    def open(cls, target: str, **kwargs: Any) -> "TraceStore":
        """Open (or create) a store by ``--store`` target string.

        ``"memory"`` needs the shape (``n=...``); ``"sqlite:PATH"``
        reopens an existing commit chain at ``branch`` (default
        ``main``) or creates one when the shape is given.
        """
        return cls(backend=open_backend(target, **kwargs))

    # -- the engine underneath ----------------------------------------------

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def n(self) -> int:
        return self._backend.n

    @property
    def epoch(self) -> int:
        return self._backend.epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self._backend.epoch = value

    @property
    def obs(self) -> Any:
        return self._backend.obs

    @obs.setter
    def obs(self, value: Any) -> None:
        self._backend.obs = value

    # -- shape --------------------------------------------------------------

    @property
    def state_counts(self) -> Tuple[int, ...]:
        return self._backend.state_counts

    @property
    def num_states(self) -> int:
        return self._backend.num_states

    @property
    def proc_names(self) -> Tuple[str, ...]:
        return self._backend.proc_names

    @property
    def messages(self) -> Tuple[MessageArrow, ...]:
        return self._backend.messages

    @property
    def control_arrows(self) -> Tuple[ControlArrow, ...]:
        return self._backend.control_arrows

    @property
    def index(self) -> CausalIndex:
        """The live causal index over the current prefix (do not mutate)."""
        return self._backend.index

    def state_vars(self, ref: StateRef | Tuple[int, int]) -> Dict[str, Any]:
        """The variable assignment of a local state (do not mutate)."""
        return self._backend.state_vars(ref)

    def latest_vars(self, proc: int) -> Dict[str, Any]:
        return self._backend.latest_vars(proc)

    def column_block(self, proc: int, names: Sequence[str]) -> ColumnBlock:
        """Packed columns of ``proc``'s current state prefix (cached).

        Detection over snapshots hits the same cache (snapshots share the
        store's cache dict), so repeated detect calls over a growing trace
        pay one pack per (variable set, prefix length).
        """
        return self._backend.column_block(proc, names)

    def state_time(self, ref: StateRef | Tuple[int, int]) -> Optional[float]:
        return self._backend.state_time(ref)

    def vars_prefix(self, proc: int) -> Tuple[Dict[str, Any], ...]:
        """All of ``proc``'s variable assignments, materialised."""
        return self._backend.vars_prefix(proc)

    def times_prefix(self, proc: int) -> Optional[Tuple[float, ...]]:
        return self._backend.times_prefix(proc)

    def used_message(self, ev: EventRef) -> Optional[MessageArrow]:
        return self._backend.used_message(ev)

    def snapshot_cache(self) -> Dict[Any, Any]:
        return self._backend.snapshot_cache()

    # -- appends ------------------------------------------------------------

    def append_state(
        self,
        proc: int,
        updates: Optional[Dict[str, Any]] = None,
        *,
        vars: Optional[Dict[str, Any]] = None,
        time: Optional[float] = None,
        received_from: Optional[StateRef | Tuple[int, int]] = None,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> StateRef:
        """One event of ``proc``; the process enters a new state.

        ``updates`` overlay the previous state's variables; ``vars``
        replaces the assignment wholesale (needed when a key disappears).
        When the event is a message receive, pass ``received_from`` (the
        sender's pre-send state): the message arrow joins the index during
        the O(n) append instead of a later cone recompute, and D3 is
        checked.  Returns the entered state.
        """
        if not (0 <= proc < self.n):
            raise MalformedTraceError(f"no process {proc}")
        if vars is not None:
            new_vars = dict(vars)
        else:
            new_vars = dict(self._backend.latest_vars(proc))
            new_vars.update(updates or {})
        return self._backend.append_state(
            proc, new_vars, time=time, received_from=received_from,
            payload=payload, tag=tag,
        )

    def append_message(
        self,
        src: StateRef | Tuple[int, int],
        dst: StateRef | Tuple[int, int],
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> MessageArrow:
        """Attach a message arrow between two *existing* states.

        Compatibility path for writers that only learn the receive state
        after recording it; costs a cone recompute where
        ``append_state(received_from=...)`` costs O(n).  Bumps
        :attr:`epoch`.
        """
        return self._backend.append_message(src, dst, payload=payload, tag=tag)

    def append_control(
        self, src: StateRef | Tuple[int, int], dst: StateRef | Tuple[int, int]
    ) -> ControlArrow:
        """Insert a control arrow between existing states (deduped).

        Raises :class:`~repro.causality.relations.CycleError` when the
        arrow interferes with the recorded causality.  Bumps :attr:`epoch`
        when the arrow is new.
        """
        return self._backend.append_control(src, dst)

    # -- the commit chain ----------------------------------------------------

    def commit(self, kind: str = "append", message: Optional[str] = None,
               meta: Optional[Dict[str, Any]] = None) -> Optional[int]:
        """Persist appends since the last commit (durable backends only).

        Returns the new head commit id, or ``None`` on the in-memory
        engine (which has no chain and nothing to persist).
        """
        return self._backend.commit(kind=kind, message=message, meta=meta)

    @property
    def head(self) -> Optional[int]:
        """Head commit id of the open branch (``None``: no chain)."""
        return self._backend.head

    @property
    def branch_name(self) -> Optional[str]:
        return self._backend.branch_name

    def branch(self, name: str) -> "TraceStore":
        """A copy-on-write fork of the current state under ``name``.

        On the SQLite engine this commits pending appends and adds one
        branch row -- the fork shares every ancestor commit and page; on
        the in-memory engine it is an O(states) pointer-sharing copy.
        Either way, appends to the fork never touch this store.
        """
        return TraceStore(backend=self._backend.branch(name))

    def close(self) -> None:
        self._backend.close()

    # -- snapshots ----------------------------------------------------------

    def snapshot(self, proc_names: Optional[Sequence[str]] = None) -> "Deposet":
        """An immutable :class:`Deposet` view of the current prefix.

        Shares variable dicts and clock rows with the store (copy-on-write
        protects them from later arrow inserts); later appends extend the
        store without touching the snapshot.
        """
        from repro.trace.deposet import Deposet

        _SNAPSHOTS.inc()
        return Deposet._from_store(self, proc_names=proc_names)

    # -- durable state capture ----------------------------------------------

    def freeze(self) -> Dict[str, Any]:
        """The store's full state as one JSON-serializable dict.

        Everything :meth:`restore` needs to rebuild an equivalent store --
        columns, arrows, epoch -- with no live index internals (the index
        is re-derived on restore, so the wire format stays stable across
        index implementations).  Payloads carry ``format``
        (:data:`FREEZE_FORMAT`) so an incompatible build fails with a
        typed :class:`~repro.errors.UnknownFreezeFormatError` instead of
        an opaque ``KeyError``.  This is the checkpoint payload of the
        serving layer's durability machinery (``docs/ROBUSTNESS.md``);
        payloads/tags must be JSON-serializable, which holds for every
        store fed from a ``repro-events/1`` stream.
        """
        b = self._backend
        return {
            "format": FREEZE_FORMAT,
            "n": self.n,
            "proc_names": list(self.proc_names),
            "vars": [[dict(v) for v in b.vars_prefix(i)] for i in range(self.n)],
            "times": (
                [list(b.times_prefix(i)) for i in range(self.n)]
                if b.times_prefix(0) is not None else None
            ),
            "messages": [
                {
                    "src": [m.src.proc, m.src.index],
                    "dst": [m.dst.proc, m.dst.index],
                    "payload": m.payload,
                    "tag": m.tag,
                }
                for m in b.messages
            ],
            "control": [
                [[a.proc, a.index], [b_.proc, b_.index]]
                for a, b_ in b.control_arrows
            ],
            "epoch": self.epoch,
            "obs": self.obs,
        }

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "TraceStore":
        """Rebuild an in-memory store from a :meth:`freeze` payload.

        The causal index is rebuilt batch-style over the restored counts
        and arrows, so the result answers every causal query identically
        to the frozen original (same clocks, same epoch, same D3
        bookkeeping) and remains appendable.  Payloads without a
        ``format`` field are accepted as the legacy (pre-versioned)
        layout; an unknown format raises
        :class:`~repro.errors.UnknownFreezeFormatError`.
        """
        fmt = state.get("format")
        if fmt is not None and fmt != FREEZE_FORMAT:
            raise UnknownFreezeFormatError(
                f"cannot restore freeze payload of format {fmt!r}; this "
                f"build understands {FREEZE_FORMAT!r} (and legacy payloads "
                f"with no format field)"
            )
        n = int(state["n"])
        vars_cols = state["vars"]
        store = cls(
            n,
            start_vars=[col[0] for col in vars_cols],
            proc_names=state.get("proc_names"),
            start_times=(
                [col[0] for col in state["times"]]
                if state.get("times") is not None else None
            ),
        )
        b = store._backend
        b._vars = [[dict(v) for v in col] for col in vars_cols]
        if state.get("times") is not None:
            b._times = [list(map(float, col)) for col in state["times"]]
        arrows: List[Arrow] = []
        for m in state.get("messages", ()):
            src = StateRef(*m["src"])
            dst = StateRef(*m["dst"])
            msg = MessageArrow(src, dst, payload=m.get("payload"),
                               tag=m.get("tag"))
            b._messages.append(msg)
            b._used_events[(src.proc, src.index)] = msg
            b._used_events[(dst.proc, dst.index - 1)] = msg
            arrows.append((src, dst))
        for a, c in state.get("control", ()):
            arrow = (StateRef(*a), StateRef(*c))
            b._control.append(arrow)
            b._control_set.add(arrow)
            arrows.append(arrow)
        b._index = CausalIndex([len(col) for col in vars_cols], arrows)
        b.epoch = int(state.get("epoch", 0))
        b.obs = state.get("obs")
        return store

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def from_deposet(
        cls, dep: "Deposet", *, backend: Optional[StorageBackend] = None,
    ) -> "TraceStore":
        """Replay an existing deposet through the incremental path.

        Events are fed in a causal delivery order (see
        :func:`iter_delivery_events`), so the resulting store -- columns,
        arrows, and live index -- is equivalent to the batch-built ``dep``.
        Pass ``backend`` (a freshly-created engine whose start states
        match ``dep``'s, e.g. a new SQLite branch store) to materialise
        the deposet into it instead of a new in-memory store.
        """
        ts = dep.timestamps
        if backend is None:
            store = cls(
                dep.n,
                start_vars=[dep.state_vars((i, 0)) for i in range(dep.n)],
                proc_names=dep.proc_names,
                start_times=[row[0] for row in ts] if ts is not None else None,
            )
        else:
            if backend.num_states != backend.n:
                raise MalformedTraceError(
                    "from_deposet needs an empty backend (start states only)"
                )
            store = cls(backend=backend)
        for proc, entered, msg, ctls in iter_delivery_events(dep):
            time = ts[proc][entered] if ts is not None else None
            if msg is not None:
                store.append_state(
                    proc,
                    vars=dep.state_vars((proc, entered)),
                    time=time,
                    received_from=msg.src,
                    payload=msg.payload,
                    tag=msg.tag,
                )
            else:
                store.append_state(
                    proc, vars=dep.state_vars((proc, entered)), time=time
                )
            for a, b in ctls:
                store.append_control(a, b)
        return store

    def __repr__(self) -> str:
        ctrl = (
            f", control={len(self.control_arrows)}" if self.control_arrows
            else ""
        )
        chain = (
            f", branch={self.branch_name!r}@{self.head}"
            if self.branch_name is not None else ""
        )
        return (
            f"TraceStore[{self._backend.kind}](n={self.n}, "
            f"states={self.state_counts}, messages={len(self.messages)}"
            f"{ctrl}{chain}, epoch={self.epoch})"
        )


def iter_delivery_events(
    dep: "Deposet",
) -> Iterator[Tuple[int, int, Optional[MessageArrow], Tuple[ControlArrow, ...]]]:
    """Linearise ``dep``'s events into a causal delivery order.

    Yields ``(proc, entered_state_index, message_or_None, control_arrows)``
    such that every arrow source event (message *and* control) is emitted
    before its target event, and control arrows are reported with the
    event entering their target state.  This is the order in which a
    streaming writer must emit records and a :class:`TraceStore` can
    ingest them with O(n) appends.
    """
    counts = dep.state_counts
    n = dep.n
    recv: Dict[EventRef, MessageArrow] = {}
    gates: Dict[EventRef, List[EventRef]] = {}
    for msg in dep.messages:
        recv_ev = (msg.dst.proc, msg.dst.index - 1)
        recv[recv_ev] = msg
        gates.setdefault(recv_ev, []).append((msg.src.proc, msg.src.index))
    ctl_after: Dict[Tuple[int, int], List[ControlArrow]] = {}
    for a, b in dep.control_arrows:
        gates.setdefault((b.proc, b.index - 1), []).append((a.proc, a.index))
        ctl_after.setdefault((b.proc, b.index), []).append((a, b))
    emitted = [0] * n
    remaining = sum(counts) - n
    while remaining:
        progressed = False
        for i in range(n):
            while emitted[i] < counts[i] - 1:
                ev = (i, emitted[i])
                if any(f >= emitted[q] for q, f in gates.get(ev, ())):
                    break  # some arrow source has not completed yet
                entered = emitted[i] + 1
                yield i, entered, recv.get(ev), tuple(ctl_after.get((i, entered), ()))
                emitted[i] = entered
                remaining -= 1
                progressed = True
        if remaining and not progressed:  # pragma: no cover - dep.order is acyclic
            raise MalformedTraceError("deposet admits no causal delivery order")
