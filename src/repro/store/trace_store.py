"""Append-only columnar trace storage: the storage layer of the trace stack.

A :class:`TraceStore` accumulates a distributed computation as it happens:
per-process columns of variable assignments (and optional timestamps),
plus message and control arrows that remain appendable after construction.
It maintains a live :class:`~repro.store.index.CausalIndex` in lockstep,
so causal queries are always available over the current prefix -- this is
what streaming ingestion (``repro ingest`` / ``repro watch``) and the
simulator's recorder write into.

Append discipline
-----------------
* :meth:`append_state` -- one event in causal delivery order.  When the
  event is a receive, pass ``received_from`` so the message arrow joins at
  append time (O(n)); D3 (one message per event) is enforced here.
* :meth:`append_control` -- a control arrow between existing states;
  updates only the downstream cone of the target.  Bumps :attr:`epoch`
  (arrows rewrite the causal past, so incremental detectors must
  re-examine earlier conclusions).
* :meth:`snapshot` -- an immutable :class:`~repro.trace.deposet.Deposet`
  view over the current prefix, sharing columns and a frozen index with
  the store (no copies of variable dicts, no clock rebuild).

The view layer (``Deposet``) stays the universal currency of the library;
the store is how one *grows*.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.causality.relations import Arrow, EventRef, StateRef
from repro.errors import MalformedTraceError
from repro.obs.metrics import METRICS
from repro.store.columns import ColumnBlock, pack_block
from repro.store.index import CausalIndex
from repro.trace.states import MessageArrow

__all__ = ["TraceStore", "iter_delivery_events"]

ControlArrow = Tuple[StateRef, StateRef]

_STATES = METRICS.counter("store.states")
_MESSAGES = METRICS.counter("store.messages")
_CONTROL = METRICS.counter("store.control_arrows")
_SNAPSHOTS = METRICS.counter("store.snapshots")


class TraceStore:
    """Columnar, append-only storage for one distributed computation.

    Parameters
    ----------
    n:
        Number of processes.
    start_vars:
        Initial variable assignment per process (defaults to empty).
    proc_names:
        Optional human-readable names (defaults to ``P0..P{n-1}``).
    start_times:
        Per-process start timestamps (or one scalar for all).  When given,
        the store tracks a timestamp column and snapshots carry it.
    """

    def __init__(
        self,
        n: int,
        start_vars: Optional[Sequence[Dict[str, Any]]] = None,
        proc_names: Optional[Sequence[str]] = None,
        start_times: Optional[Sequence[float] | float] = None,
    ):
        if n <= 0:
            raise MalformedTraceError(f"need at least one process, got n={n}")
        if start_vars is not None and len(start_vars) != n:
            raise MalformedTraceError(
                f"{len(start_vars)} start assignments for {n} processes"
            )
        if proc_names is not None and len(proc_names) != n:
            raise MalformedTraceError(f"{len(proc_names)} names for {n} processes")
        self.n = n
        self._vars: List[List[Dict[str, Any]]] = [
            [dict(start_vars[i]) if start_vars is not None else {}] for i in range(n)
        ]
        self._names: Tuple[str, ...] = (
            tuple(proc_names) if proc_names is not None
            else tuple(f"P{i}" for i in range(n))
        )
        self._times: Optional[List[List[float]]] = None
        if start_times is not None:
            if isinstance(start_times, (int, float)):
                start_times = [float(start_times)] * n
            if len(start_times) != n:
                raise MalformedTraceError(
                    f"{len(start_times)} start times for {n} processes"
                )
            self._times = [[float(t)] for t in start_times]
        self._messages: List[MessageArrow] = []
        self._control: List[ControlArrow] = []
        self._control_set: set = set()
        self._index = CausalIndex([1] * n)
        # Packed variable columns, keyed (proc, names, prefix length).
        # Shared with every snapshot (state dicts are append-only, so a
        # block packed for one prefix stays valid forever).
        self._column_cache: Dict[Tuple[int, Tuple[str, ...], int], ColumnBlock] = {}
        # D3 bookkeeping: which events already carry a message.
        self._used_events: Dict[EventRef, MessageArrow] = {}
        #: bumped whenever an arrow lands between *existing* states --
        #: consumers holding incremental conclusions must re-derive them.
        self.epoch = 0

    # -- shape --------------------------------------------------------------

    @property
    def state_counts(self) -> Tuple[int, ...]:
        return self._index.state_counts

    @property
    def num_states(self) -> int:
        return sum(self._index.state_counts)

    @property
    def proc_names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def messages(self) -> Tuple[MessageArrow, ...]:
        return tuple(self._messages)

    @property
    def control_arrows(self) -> Tuple[ControlArrow, ...]:
        return tuple(self._control)

    @property
    def index(self) -> CausalIndex:
        """The live causal index over the current prefix (do not mutate)."""
        return self._index

    def state_vars(self, ref: StateRef | Tuple[int, int]) -> Dict[str, Any]:
        """The variable assignment of a local state (do not mutate)."""
        proc, index = ref
        return self._vars[proc][index]

    def latest_vars(self, proc: int) -> Dict[str, Any]:
        return self._vars[proc][-1]

    def column_block(self, proc: int, names: Sequence[str]) -> ColumnBlock:
        """Packed columns of ``proc``'s current state prefix (cached).

        Detection over snapshots hits the same cache (snapshots share the
        store's cache dict), so repeated detect calls over a growing trace
        pay one pack per (variable set, prefix length).
        """
        states = self._vars[proc]
        key = (proc, tuple(names), len(states))
        block = self._column_cache.get(key)
        if block is None:
            block = pack_block(states[: key[2]], key[1])
            self._column_cache[key] = block
        return block

    def state_time(self, ref: StateRef | Tuple[int, int]) -> Optional[float]:
        if self._times is None:
            return None
        proc, index = ref
        return self._times[proc][index]

    # -- appends ------------------------------------------------------------

    def append_state(
        self,
        proc: int,
        updates: Optional[Dict[str, Any]] = None,
        *,
        vars: Optional[Dict[str, Any]] = None,
        time: Optional[float] = None,
        received_from: Optional[StateRef | Tuple[int, int]] = None,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> StateRef:
        """One event of ``proc``; the process enters a new state.

        ``updates`` overlay the previous state's variables; ``vars``
        replaces the assignment wholesale (needed when a key disappears).
        When the event is a message receive, pass ``received_from`` (the
        sender's pre-send state): the message arrow joins the index during
        the O(n) append instead of a later cone recompute, and D3 is
        checked.  Returns the entered state.
        """
        if not (0 <= proc < self.n):
            raise MalformedTraceError(f"no process {proc}")
        if vars is not None:
            new_vars = dict(vars)
        else:
            new_vars = dict(self._vars[proc][-1])
            new_vars.update(updates or {})
        sources: List[StateRef] = []
        src: Optional[StateRef] = None
        if received_from is not None:
            src = StateRef(*received_from)
            if src.proc == proc:
                raise MalformedTraceError("a process cannot receive its own message")
            send_ev: EventRef = (src.proc, src.index)
            if send_ev in self._used_events:
                raise MalformedTraceError(
                    f"event {send_ev} used by both "
                    f"{self._used_events[send_ev]!r} and the message from "
                    f"{src!r} (D3 / one message per event)"
                )
            sources.append(src)
        entered = self._index.append_event(proc, sources)  # validates endpoints
        self._vars[proc].append(new_vars)
        if self._times is not None:
            self._times[proc].append(
                float(time) if time is not None else self._times[proc][-1]
            )
        if src is not None:
            msg = MessageArrow(src, entered, payload=payload, tag=tag)
            self._messages.append(msg)
            self._used_events[(src.proc, src.index)] = msg
            self._used_events[(proc, entered.index - 1)] = msg
            _MESSAGES.inc()
        _STATES.inc()
        return entered

    def append_message(
        self,
        src: StateRef | Tuple[int, int],
        dst: StateRef | Tuple[int, int],
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> MessageArrow:
        """Attach a message arrow between two *existing* states.

        Compatibility path for writers that only learn the receive state
        after recording it; costs a cone recompute where
        ``append_state(received_from=...)`` costs O(n).  Bumps
        :attr:`epoch`.
        """
        src, dst = StateRef(*src), StateRef(*dst)
        if src.proc == dst.proc:
            raise MalformedTraceError("a process cannot receive its own message")
        send_ev: EventRef = (src.proc, src.index)
        recv_ev: EventRef = (dst.proc, dst.index - 1)
        msg = MessageArrow(src, dst, payload=payload, tag=tag)
        for ev in (send_ev, recv_ev):
            if ev in self._used_events:
                raise MalformedTraceError(
                    f"event {ev} used by both {self._used_events[ev]!r} and "
                    f"{msg!r} (D3 / one message per event)"
                )
        self._index.insert_arrows([(src, dst)])
        self._messages.append(msg)
        self._used_events[send_ev] = msg
        self._used_events[recv_ev] = msg
        self.epoch += 1
        _MESSAGES.inc()
        return msg

    def append_control(
        self, src: StateRef | Tuple[int, int], dst: StateRef | Tuple[int, int]
    ) -> ControlArrow:
        """Insert a control arrow between existing states (deduped).

        Raises :class:`~repro.causality.relations.CycleError` when the
        arrow interferes with the recorded causality.  Bumps :attr:`epoch`
        when the arrow is new.
        """
        arrow = (StateRef(*src), StateRef(*dst))
        if arrow in self._control_set:
            return arrow  # duplicated control arrows add no causality
        # The index also dedupes against message arrows with the same
        # endpoints (the edge already exists; the *role* is still recorded).
        self._index.insert_arrows([arrow])
        self._control.append(arrow)
        self._control_set.add(arrow)
        self.epoch += 1
        _CONTROL.inc()
        return arrow

    # -- snapshots ----------------------------------------------------------

    def snapshot(self, proc_names: Optional[Sequence[str]] = None) -> "Deposet":
        """An immutable :class:`Deposet` view of the current prefix.

        Shares variable dicts and clock rows with the store (copy-on-write
        protects them from later arrow inserts); later appends extend the
        store without touching the snapshot.
        """
        from repro.trace.deposet import Deposet

        _SNAPSHOTS.inc()
        return Deposet._from_store(self, proc_names=proc_names)

    # -- durable state capture ----------------------------------------------

    def freeze(self) -> Dict[str, Any]:
        """The store's full state as one JSON-serializable dict.

        Everything :meth:`restore` needs to rebuild an equivalent store --
        columns, arrows, epoch -- with no live index internals (the index
        is re-derived on restore, so the wire format stays stable across
        index implementations).  This is the checkpoint payload of the
        serving layer's durability machinery (``docs/ROBUSTNESS.md``);
        payloads/tags must be JSON-serializable, which holds for every
        store fed from a ``repro-events/1`` stream.
        """
        return {
            "n": self.n,
            "proc_names": list(self._names),
            "vars": [[dict(v) for v in col] for col in self._vars],
            "times": (
                [list(col) for col in self._times]
                if self._times is not None else None
            ),
            "messages": [
                {
                    "src": [m.src.proc, m.src.index],
                    "dst": [m.dst.proc, m.dst.index],
                    "payload": m.payload,
                    "tag": m.tag,
                }
                for m in self._messages
            ],
            "control": [
                [[a.proc, a.index], [b.proc, b.index]]
                for a, b in self._control
            ],
            "epoch": self.epoch,
            "obs": getattr(self, "obs", None),
        }

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "TraceStore":
        """Rebuild a store from a :meth:`freeze` payload.

        The causal index is rebuilt batch-style over the restored counts
        and arrows, so the result answers every causal query identically
        to the frozen original (same clocks, same epoch, same D3
        bookkeeping) and remains appendable.
        """
        n = int(state["n"])
        vars_cols = state["vars"]
        store = cls(
            n,
            start_vars=[col[0] for col in vars_cols],
            proc_names=state.get("proc_names"),
            start_times=(
                [col[0] for col in state["times"]]
                if state.get("times") is not None else None
            ),
        )
        store._vars = [[dict(v) for v in col] for col in vars_cols]
        if state.get("times") is not None:
            store._times = [list(map(float, col)) for col in state["times"]]
        arrows: List[Arrow] = []
        for m in state.get("messages", ()):
            src = StateRef(*m["src"])
            dst = StateRef(*m["dst"])
            msg = MessageArrow(src, dst, payload=m.get("payload"),
                               tag=m.get("tag"))
            store._messages.append(msg)
            store._used_events[(src.proc, src.index)] = msg
            store._used_events[(dst.proc, dst.index - 1)] = msg
            arrows.append((src, dst))
        for a, b in state.get("control", ()):
            arrow = (StateRef(*a), StateRef(*b))
            store._control.append(arrow)
            store._control_set.add(arrow)
            arrows.append(arrow)
        store._index = CausalIndex(
            [len(col) for col in vars_cols], arrows
        )
        store.epoch = int(state.get("epoch", 0))
        store.obs = state.get("obs")
        return store

    # -- bulk construction ---------------------------------------------------

    @classmethod
    def from_deposet(cls, dep: "Deposet") -> "TraceStore":
        """Replay an existing deposet through the incremental path.

        Events are fed in a causal delivery order (see
        :func:`iter_delivery_events`), so the resulting store -- columns,
        arrows, and live index -- is equivalent to the batch-built ``dep``.
        """
        ts = dep.timestamps
        store = cls(
            dep.n,
            start_vars=[dep.state_vars((i, 0)) for i in range(dep.n)],
            proc_names=dep.proc_names,
            start_times=[row[0] for row in ts] if ts is not None else None,
        )
        for proc, entered, msg, ctls in iter_delivery_events(dep):
            time = ts[proc][entered] if ts is not None else None
            if msg is not None:
                store.append_state(
                    proc,
                    vars=dep.state_vars((proc, entered)),
                    time=time,
                    received_from=msg.src,
                    payload=msg.payload,
                    tag=msg.tag,
                )
            else:
                store.append_state(
                    proc, vars=dep.state_vars((proc, entered)), time=time
                )
            for a, b in ctls:
                store.append_control(a, b)
        return store

    def __repr__(self) -> str:
        ctrl = f", control={len(self._control)}" if self._control else ""
        return (
            f"TraceStore(n={self.n}, states={self.state_counts}, "
            f"messages={len(self._messages)}{ctrl}, epoch={self.epoch})"
        )


def iter_delivery_events(
    dep: "Deposet",
) -> Iterator[Tuple[int, int, Optional[MessageArrow], Tuple[ControlArrow, ...]]]:
    """Linearise ``dep``'s events into a causal delivery order.

    Yields ``(proc, entered_state_index, message_or_None, control_arrows)``
    such that every arrow source event (message *and* control) is emitted
    before its target event, and control arrows are reported with the
    event entering their target state.  This is the order in which a
    streaming writer must emit records and a :class:`TraceStore` can
    ingest them with O(n) appends.
    """
    counts = dep.state_counts
    n = dep.n
    recv: Dict[EventRef, MessageArrow] = {}
    gates: Dict[EventRef, List[EventRef]] = {}
    for msg in dep.messages:
        recv_ev = (msg.dst.proc, msg.dst.index - 1)
        recv[recv_ev] = msg
        gates.setdefault(recv_ev, []).append((msg.src.proc, msg.src.index))
    ctl_after: Dict[Tuple[int, int], List[ControlArrow]] = {}
    for a, b in dep.control_arrows:
        gates.setdefault((b.proc, b.index - 1), []).append((a.proc, a.index))
        ctl_after.setdefault((b.proc, b.index), []).append((a, b))
    emitted = [0] * n
    remaining = sum(counts) - n
    while remaining:
        progressed = False
        for i in range(n):
            while emitted[i] < counts[i] - 1:
                ev = (i, emitted[i])
                if any(f >= emitted[q] for q, f in gates.get(ev, ())):
                    break  # some arrow source has not completed yet
                entered = emitted[i] + 1
                yield i, entered, recv.get(ev), tuple(ctl_after.get((i, entered), ()))
                emitted[i] = entered
                remaining -= 1
                progressed = True
        if remaining and not progressed:  # pragma: no cover - dep.order is acyclic
            raise MalformedTraceError("deposet admits no causal delivery order")
