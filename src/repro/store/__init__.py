"""The layered trace stack's storage and index layers.

* :class:`TraceStore` -- append-only columnar storage for one distributed
  computation: per-process variable/timestamp columns plus message and
  control arrows that stay appendable after construction (storage layer).
* :class:`CausalIndex` -- an incrementally-maintained
  :class:`~repro.causality.relations.CausalOrder`: O(n) clock extension
  per appended event, downstream-cone recompute per inserted arrow
  (index layer).
* :func:`iter_delivery_events` -- linearise an existing deposet into the
  causal delivery order the streaming format and the store require.

The view layer on top is :class:`~repro.trace.deposet.Deposet`
(:meth:`TraceStore.snapshot`); see ``docs/ARCHITECTURE.md``.
"""

from repro.store.index import CausalIndex
from repro.store.trace_store import TraceStore, iter_delivery_events

__all__ = ["CausalIndex", "TraceStore", "iter_delivery_events"]
