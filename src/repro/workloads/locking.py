"""Two-phase-locking workloads: the deadlock-avoidance application.

The paper's Conclusions name *system-wide deadlock avoidance* as a property
expressible with locally-independent predicates.  The classic hazard: two
processes acquire the same two locks in opposite orders; the global state
"P holds a & wants b, Q holds b & wants a" deadlocks the application.

Avoidance as predicate control: for each unordered lock pair and process
pair, require "never both hold-one-want-other simultaneously" -- each such
requirement is a two-process *disjunctive* clause, so the conjunction is a
CNF over disjunctive clauses handled by :func:`repro.core.separated.control_cnf`,
and (on traces where transactions are separated by lock-free states) the
clauses are mutually separated.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.predicates.boolean import Not
from repro.predicates.disjunctive import DisjunctivePredicate, as_disjunctive
from repro.predicates.local import LocalPredicate
from repro.trace.builder import ComputationBuilder
from repro.trace.deposet import Deposet

__all__ = [
    "opposed_transactions_trace",
    "deadlock_hazard_clauses",
    "holds_and_wants",
]


def holds_and_wants(proc: int, held: str, wanted: str) -> LocalPredicate:
    """Local predicate: ``proc`` holds ``held`` and is waiting for ``wanted``."""
    return LocalPredicate.from_vars(
        proc,
        lambda v, _h=held, _w=wanted: bool(v.get(_h)) and v.get("wants") == _w,
        name=f"holds({held})&wants({wanted})@{proc}",
    )


def deadlock_hazard_clauses(
    procs: Sequence[int], lock_a: str, lock_b: str, n: int
) -> List[DisjunctivePredicate]:
    """One disjunctive clause per ordered process pair: not (i holds a &
    wants b while j holds b & wants a).  A cycle in the wait-for graph over
    two locks requires one of these global states, so enforcing every
    clause makes the AB/BA deadlock pattern unreachable."""
    clauses: List[DisjunctivePredicate] = []
    for i in procs:
        for j in procs:
            if i >= j:
                continue
            for first, second in ((lock_a, lock_b), (lock_b, lock_a)):
                clause = as_disjunctive(
                    Not(holds_and_wants(i, first, second))
                    | Not(holds_and_wants(j, second, first)),
                    n=n,
                )
                clauses.append(clause)
    return clauses


def opposed_transactions_trace(
    rounds: int = 1,
    n: int = 2,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Deposet:
    """Transactions taking locks ``a`` then ``b`` (even processes) or ``b``
    then ``a`` (odd processes), with lock-free gaps between rounds.

    Lock acquisition is modelled optimistically (this is a *trace*; in the
    recorded run nobody actually deadlocked), but the hazard states are
    concurrent across processes, so the untreated trace admits global
    states where the wait-for cycle exists -- the bug predicate control
    removes.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    start = [{"a": False, "b": False, "wants": None} for _ in range(n)]
    b = ComputationBuilder(n, start_vars=start)
    for _ in range(rounds):
        for i in range(n):
            first, second = ("a", "b") if i % 2 == 0 else ("b", "a")
            for _ in range(int(rng.integers(1, 3))):
                b.local(i)  # lock-free gap (separates the clauses)
            b.local(i, **{first: True, "wants": second})   # hold 1st, want 2nd
            b.local(i, **{second: True, "wants": None})    # got both
            b.local(i, **{first: False})                   # release 1st
            b.local(i, **{second: False})                  # release 2nd
        for i in range(n):
            b.local(i)  # trailing gap
    return b.build()
