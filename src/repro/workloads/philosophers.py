"""Dining-philosophers-flavoured traces.

"At least one philosopher is thinking" is example predicate (4) of the
paper's Section 5.  The trace generator produces think/eat cycles with
fork-request messages between neighbours (ring topology), giving message-
rich inputs for the off-line controller.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.local import LocalPredicate
from repro.trace.builder import ComputationBuilder
from repro.trace.deposet import Deposet

__all__ = ["philosophers_trace", "thinking_predicate"]


def thinking_predicate(n: int) -> DisjunctivePredicate:
    """``thinking_1 v ... v thinking_n``."""
    return DisjunctivePredicate(
        [LocalPredicate.var_true(i, "thinking") for i in range(n)], n=n
    )


def philosophers_trace(
    n: int,
    meals_per_philosopher: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Deposet:
    """Philosophers cycling think -> eat, trading fork tokens on a ring.

    Each philosopher, per meal: thinks for a few events, sends a fork
    request to the right-hand neighbour, eats (``thinking=False``), and
    later the neighbour receives the request.  Message delivery is delayed
    randomly, so eating phases overlap across the ring.
    """
    if n < 2:
        raise ValueError("need at least two philosophers")
    if rng is None:
        rng = np.random.default_rng(seed)
    b = ComputationBuilder(
        n,
        names=[f"phil{i}" for i in range(n)],
        start_vars=[{"thinking": True}] * n,
    )
    pending = []
    # round-robin over philosophers to keep phases loosely aligned
    for _ in range(meals_per_philosopher):
        for proc in range(n):
            for _ in range(1 + int(rng.integers(2))):
                b.local(proc, thinking=True)
            pending.append(b.send(proc, tag="fork-req"))
            for _ in range(1 + int(rng.integers(2))):
                b.local(proc, thinking=False)
            # deliver a random deliverable pending request
            deliverable = [m for m in pending if m.src.proc != proc]
            if deliverable and rng.random() < 0.7:
                msg = deliverable[int(rng.integers(len(deliverable)))]
                pending.remove(msg)
                b.receive(proc, msg)
    for proc in range(n):
        b.local(proc, thinking=True)  # all end up thinking
    for msg in pending:
        candidates = [p for p in range(n) if p != msg.src.proc]
        proc = candidates[int(rng.integers(len(candidates)))]
        b.receive(proc, msg)
    return b.build()
