"""Replicated-server availability workloads (the paper's running example).

The system invariant is "at least one server is available at all times"
(example predicate (2) of Section 5).  :func:`figure4_c1` transcribes the
computation ``C1`` of Figure 4: three servers whose unavailability
("thicker") intervals are mutually concurrent, creating exactly the two
violating consistent global states ``G`` and ``H``; the states ``e``
(S2 back up) and ``f`` (S3 going down) of the walkthrough are labelled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.causality.relations import StateRef
from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.local import LocalPredicate
from repro.trace.builder import ComputationBuilder
from repro.trace.deposet import Deposet

__all__ = ["figure4_c1", "random_server_trace", "availability_predicate"]


def availability_predicate(n: int, var: str = "avail") -> DisjunctivePredicate:
    """``avail_1 v avail_2 v ... v avail_n`` -- at least one server up."""
    return DisjunctivePredicate(
        [LocalPredicate.var_true(i, var) for i in range(n)], n=n
    )


def figure4_c1() -> Tuple[Deposet, Dict[str, StateRef]]:
    """The computation ``C1`` of Figure 4 and its labelled states.

    Returns the trace plus labels: ``e`` (S2's recovery state), ``f``
    (S3's first unavailable state), and ``G``/``H`` are the two violating
    cuts ``(1, 1, 1)`` and ``(2, 1, 1)`` (S1 down twice as long).
    """
    b = ComputationBuilder(
        3, names=["S1", "S2", "S3"], start_vars=[{"avail": True}] * 3
    )
    b.local(0, avail=False)  # S1 goes down: s[0,1]
    b.local(1, avail=False)  # S2 goes down: s[1,1]
    b.local(2, avail=False)  # S3 goes down: s[2,1] -- state "f"
    b.mark(2, "f")
    b.local(0, avail=False)  # S1 still down: s[0,2]
    b.local(1, avail=True)   # S2 recovers:  s[1,2] -- state "e"
    b.mark(1, "e")
    b.local(0, avail=True)   # S1 recovers:  s[0,3]
    b.local(2, avail=True)   # S3 recovers:  s[2,2]
    m = b.send(1)            # gossip S2 -> S3 after both recovered
    b.receive(2, m)
    return b.build(), dict(b.labels)


def random_server_trace(
    n: int,
    outages_per_server: int,
    up_run: int = 3,
    down_run: int = 2,
    message_rate: float = 0.2,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Deposet:
    """Servers cycling through up/down phases with gossip messages.

    Each server performs ``outages_per_server`` outages; phase lengths are
    geometric with means ``up_run``/``down_run``.  Gossip sends happen at
    random events and are delivered at random later events (never breaking
    the deposet constraints).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    b = ComputationBuilder(
        n,
        names=[f"S{i + 1}" for i in range(n)],
        start_vars=[{"avail": True}] * n,
    )
    # Per-server remaining plan: list of (value, length) phases.
    plans = []
    for _ in range(n):
        phases = []
        for _ in range(outages_per_server):
            phases.append((True, 1 + int(rng.geometric(1.0 / up_run))))
            phases.append((False, 1 + int(rng.geometric(1.0 / down_run))))
        phases.append((True, 1 + int(rng.geometric(1.0 / up_run))))
        plans.append([v for v, length in phases for _ in range(length)])

    pending = []
    cursors = [0] * n
    live = list(range(n))
    while live:
        proc = live[int(rng.integers(len(live)))]
        value = plans[proc][cursors[proc]]
        cursors[proc] += 1
        if cursors[proc] >= len(plans[proc]):
            live.remove(proc)
        deliverable = [m for m in pending if m.src.proc != proc]
        if n > 1 and rng.random() < message_rate:
            if deliverable and rng.random() < 0.5:
                msg = deliverable[int(rng.integers(len(deliverable)))]
                pending.remove(msg)
                b.receive(proc, msg, avail=value)
            else:
                pending.append(b.send(proc, avail=value))
        else:
            b.local(proc, avail=value)
    for msg in pending:
        candidates = [p for p in range(n) if p != msg.src.proc]
        proc = candidates[int(rng.integers(len(candidates)))]
        b.receive(proc, msg)
    return b.build()
