"""Critical-section traces for the mutual-exclusion experiments.

Two-process mutual exclusion is example predicate (1) of Section 5:
``B = not cs_1 v not cs_2``.  The paper's Section 5 evaluation notes that
controlling a two-process mutex trace emits at most one control message per
critical section; experiment E5 measures that bound on these traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.local import LocalPredicate
from repro.trace.builder import ComputationBuilder
from repro.trace.deposet import Deposet

__all__ = ["mutex_trace", "mutex_predicate"]


def mutex_predicate(n: int = 2, var: str = "cs") -> DisjunctivePredicate:
    """``(n-1)``-mutual-exclusion safety: someone is outside the CS.

    For ``n = 2`` this is the classic two-process mutual exclusion
    ``not cs_1 v not cs_2``.
    """
    return DisjunctivePredicate(
        [LocalPredicate.var_false(i, var) for i in range(n)], n=n
    )


def mutex_trace(
    cs_per_proc: int,
    n: int = 2,
    think_run: int = 2,
    cs_run: int = 1,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Deposet:
    """Processes alternating think / critical-section phases, uncoordinated.

    No messages are exchanged, so every interleaving is possible and the
    critical sections of different processes are all mutually concurrent --
    the worst case for a controller, which must serialise them.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    b = ComputationBuilder(n, start_vars=[{"cs": False}] * n)
    for proc in range(n):
        for _ in range(cs_per_proc):
            for _ in range(1 + int(rng.integers(think_run))):
                b.local(proc, cs=False)
            for _ in range(1 + int(rng.integers(cs_run))):
                b.local(proc, cs=True)
        b.local(proc, cs=False)  # A2-style: end outside the CS
    return b.build()
