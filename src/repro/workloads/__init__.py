"""Workload generators: traces and programs used by tests and benchmarks.

* :mod:`repro.workloads.random_traces` -- seeded random deposets with a
  single boolean variable per process (availability-style predicates);
* :mod:`repro.workloads.servers` -- replicated-server availability traces,
  including the exact computation ``C1`` of the paper's Figure 4;
* :mod:`repro.workloads.mutex_traces` -- critical-section traces for the
  two-process mutual-exclusion experiments (E5);
* :mod:`repro.workloads.philosophers` -- "at least one philosopher is
  thinking" traces (example predicate (4) of Section 5).
"""

from repro.workloads.random_traces import random_deposet, random_bool_patterns
from repro.workloads.servers import figure4_c1, random_server_trace, availability_predicate
from repro.workloads.mutex_traces import mutex_trace, mutex_predicate
from repro.workloads.philosophers import philosophers_trace, thinking_predicate
from repro.workloads.locking import (
    opposed_transactions_trace,
    deadlock_hazard_clauses,
    holds_and_wants,
)

__all__ = [
    "opposed_transactions_trace",
    "deadlock_hazard_clauses",
    "holds_and_wants",
    "random_deposet",
    "random_bool_patterns",
    "figure4_c1",
    "random_server_trace",
    "availability_predicate",
    "mutex_trace",
    "mutex_predicate",
    "philosophers_trace",
    "thinking_predicate",
]
