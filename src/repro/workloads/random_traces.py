"""Seeded random deposets.

Each process carries one boolean variable (default ``"up"``) that flips at
random events; random messages weave the processes together.  All
generation is deterministic under ``seed`` (or an explicit
``numpy.random.Generator``), per the reproducibility conventions of the
benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.trace.builder import ComputationBuilder
from repro.trace.deposet import Deposet

__all__ = ["random_deposet", "random_bool_patterns"]


def random_bool_patterns(
    n: int,
    length: int,
    flip_rate: float,
    rng: np.random.Generator,
    start_true_prob: float = 0.8,
) -> List[List[bool]]:
    """Per-process boolean state sequences with geometric-ish runs."""
    patterns: List[List[bool]] = []
    for _ in range(n):
        value = bool(rng.random() < start_true_prob)
        seq = [value]
        for _ in range(length):
            if rng.random() < flip_rate:
                value = not value
            seq.append(value)
        patterns.append(seq)
    return patterns


def random_deposet(
    n: int,
    events_per_proc: int,
    message_rate: float = 0.3,
    var: str = "up",
    flip_rate: float = 0.3,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    start_true_prob: float = 0.8,
) -> Deposet:
    """A random valid deposet.

    Events are scheduled by a random interleaving; with probability
    ``message_rate`` an event is a communication step (receiving a pending
    message when one exists, otherwise sending to a random peer), else a
    local event.  Every event may flip the process's ``var`` with
    probability ``flip_rate``.  Pending messages are drained at the end so
    channels are reliable (no lost messages).
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")

    values = [bool(rng.random() < start_true_prob) for _ in range(n)]
    b = ComputationBuilder(n, start_vars=[{var: v} for v in values])
    pending: List = []  # undelivered PendingMessage handles

    def maybe_flip(proc: int) -> dict:
        if rng.random() < flip_rate:
            values[proc] = not values[proc]
        return {var: values[proc]}

    total = n * events_per_proc
    for _ in range(total):
        proc = int(rng.integers(n))
        updates = maybe_flip(proc)
        if n > 1 and rng.random() < message_rate:
            deliverable = [m for m in pending if m.src.proc != proc]
            if deliverable and rng.random() < 0.5:
                msg = deliverable[int(rng.integers(len(deliverable)))]
                pending.remove(msg)
                b.receive(proc, msg, **updates)
            else:
                pending.append(b.send(proc, **updates))
        else:
            b.local(proc, **updates)

    # Drain: deliver leftovers to random other processes (reliable channels).
    for msg in pending:
        candidates = [p for p in range(n) if p != msg.src.proc]
        proc = candidates[int(rng.integers(len(candidates)))]
        b.receive(proc, msg, **maybe_flip(proc))

    return b.build()
