"""Experiment harness: parameter sweeps and table rendering.

The paper's evaluation is analytic; the benchmark suite regenerates each
claim as a measured table (EXPERIMENTS.md records paper-vs-measured).  This
package holds the shared plumbing so ``benchmarks/`` and ``examples/`` can
print identically-shaped tables.
"""

from repro.bench.harness import (
    Sweep,
    fault_columns,
    format_metrics_snapshot,
    format_table,
    geometric_fit,
)

__all__ = [
    "format_table",
    "format_metrics_snapshot",
    "fault_columns",
    "geometric_fit",
    "Sweep",
]
