"""Table formatting and scaling-fit helpers for the experiment suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "format_table",
    "geometric_fit",
    "format_metrics_snapshot",
    "fault_columns",
    "Sweep",
]


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title or '(empty table)'}\n"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[ci]) for r in cells))
        for ci, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def geometric_fit(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x): the scaling exponent.

    Used to check complexity claims: measuring work ``w`` at sizes ``s``,
    ``geometric_fit(s, w)`` near ``2`` supports an ``O(s^2)`` claim.
    Zero-valued measurements are dropped.
    """
    pts = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pts) < 2:
        raise ValueError("need at least two positive points to fit")
    lx = np.log([p[0] for p in pts])
    ly = np.log([p[1] for p in pts])
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)


def format_metrics_snapshot(diff: Dict[str, Any]) -> str:
    """A one-line rendering of a metrics-snapshot diff for bench tables.

    Takes the structure produced by
    :meth:`repro.obs.metrics.MetricsRegistry.diff` and keeps only the
    instruments that moved, so the line stays short and greppable in
    ``bench_tables.txt``.
    """
    parts = []
    for name, value in diff.get("counters", {}).items():
        if value:
            parts.append(f"{name}={value}")
    for name, summ in diff.get("histograms", {}).items():
        if summ.get("count"):
            parts.append(f"{name}.count={summ['count']}")
            parts.append(f"{name}.mean={summ['mean']:.4g}")
    return " ".join(parts)


def fault_columns(
    faults: Dict[str, int], channel: Optional[Dict[str, int]] = None
) -> Dict[str, int]:
    """The ``faults`` column group for bench tables.

    Takes the per-run fault-injection counts (``RunResult.faults`` /
    ``MutexReport.faults``) and the reliable-channel counters
    (``MutexReport.channel``), and flattens them to the three columns the
    fault-tolerance tables share: how many faults were injected, how many
    retransmissions the control plane paid, and how many duplicate
    deliveries it suppressed.
    """
    channel = channel or {}
    return {
        "injected": sum(faults.values()),
        "retransmits": channel.get("retransmits", 0),
        "dup_supp": channel.get("dup_suppressed", 0),
    }


@dataclass
class Sweep:
    """Accumulates rows of one experiment and renders/asserts over them."""

    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        return format_table(self.rows, columns=columns, title=self.title)

    def __str__(self) -> str:
        return self.render()
