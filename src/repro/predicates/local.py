"""Local predicates: boolean functions of one process's local state."""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Optional, Sequence, TYPE_CHECKING

from repro.predicates.base import Predicate, StateInfo
from repro.predicates.expr import (
    Expr,
    IndexAtLeast,
    IndexLess,
    NotExpr,
    VarEquals,
    VarTruthy,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.deposet import Deposet

__all__ = ["LocalPredicate"]


class LocalPredicate(Predicate):
    """A predicate of process ``proc``'s local state.

    The canonical form takes a :class:`StateInfo` (variables plus the state
    index); the classmethod constructors cover the common shapes:

    * :meth:`from_vars` -- a function of the variable assignment;
    * :meth:`var_true` / :meth:`var_equals` -- single-variable tests;
    * :meth:`after` / :meth:`at_or_after` / :meth:`before` -- index tests,
      which express the paper's "x must happen before y" controls.

    The structured constructors additionally carry ``expr``, a picklable
    :class:`~repro.predicates.expr.Expr` with the same semantics as ``fn``.
    The slicing engines use it for vectorised and multi-process evaluation;
    ``expr is None`` (raw callables, :meth:`from_vars`) means the predicate
    can only be evaluated in-process via ``fn``.
    """

    def __init__(
        self,
        proc: int,
        fn: Callable[[StateInfo], bool],
        name: str = "",
        expr: Optional[Expr] = None,
    ):
        if proc < 0:
            raise ValueError(f"invalid process {proc}")
        self.proc = proc
        self.fn = fn
        self.name = name or f"l_{proc}"
        self.expr = expr

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_vars(
        cls, proc: int, fn: Callable[[dict], bool], name: str = ""
    ) -> "LocalPredicate":
        """A predicate of the variable assignment only."""
        return cls(proc, lambda s: bool(fn(s.vars)), name or f"l_{proc}")

    @classmethod
    def var_true(cls, proc: int, var: str) -> "LocalPredicate":
        """``vars[var]`` is truthy (missing variables read as false)."""
        return cls(
            proc,
            lambda s: bool(s.vars.get(var, False)),
            f"{var}@{proc}",
            expr=VarTruthy(var),
        )

    @classmethod
    def var_false(cls, proc: int, var: str) -> "LocalPredicate":
        """``vars[var]`` is falsy or missing."""
        return cls(
            proc,
            lambda s: not s.vars.get(var, False),
            f"!{var}@{proc}",
            expr=NotExpr(VarTruthy(var)),
        )

    @classmethod
    def var_equals(cls, proc: int, var: str, value: Any) -> "LocalPredicate":
        return cls(
            proc,
            lambda s: s.vars.get(var) == value,
            f"{var}=={value!r}@{proc}",
            expr=VarEquals(var, value),
        )

    @classmethod
    def at_or_after(cls, proc: int, index: int) -> "LocalPredicate":
        """True once the process has reached local state ``index``.

        The paper's "after x": the event producing state ``index`` has
        happened.
        """
        return cls(
            proc,
            lambda s: s.index >= index,
            f"after[{proc},{index}]",
            expr=IndexAtLeast(index),
        )

    @classmethod
    def before(cls, proc: int, index: int) -> "LocalPredicate":
        """True while the process has not yet reached state ``index``.

        The paper's "before y".
        """
        return cls(
            proc,
            lambda s: s.index < index,
            f"before[{proc},{index}]",
            expr=IndexLess(index),
        )

    # -- Predicate protocol ----------------------------------------------------

    def holds_at(self, dep: "Deposet", index: int) -> bool:
        """Evaluate on one local state of ``self.proc``."""
        info = StateInfo(self.proc, index, dep.state_vars((self.proc, index)))
        return bool(self.fn(info))

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return self.holds_at(dep, cut[self.proc])

    def procs(self) -> FrozenSet[int]:
        return frozenset({self.proc})

    def __repr__(self) -> str:
        return f"Local({self.name})"
