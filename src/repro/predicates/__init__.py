"""Global predicates over deposets.

The paper's predicate hierarchy:

* a *local predicate* of process ``i`` is a boolean function of ``P_i``'s
  variables (we also allow its state index, which expresses the paper's
  "after x" / "before y" event-ordering predicates);
* a *global predicate* combines local predicates with ``and``/``or``/``not``;
* a *disjunctive predicate* is ``B = l_1 v l_2 v ... v l_n`` with ``l_i``
  local to ``P_i`` -- the class for which predicate control is tractable.

:func:`as_disjunctive` normalises arbitrary boolean combinations into
disjunctive form when possible (local-only subtrees on the same process are
folded into a single local predicate), raising
:class:`~repro.errors.NotDisjunctiveError` otherwise.
"""

from repro.predicates.base import Predicate, StateInfo, TRUE, FALSE
from repro.predicates.local import LocalPredicate
from repro.predicates.boolean import And, Or, Not
from repro.predicates.disjunctive import DisjunctivePredicate, as_disjunctive
from repro.predicates.intervals import FalseInterval, false_intervals, local_truth_table

__all__ = [
    "Predicate",
    "StateInfo",
    "TRUE",
    "FALSE",
    "LocalPredicate",
    "And",
    "Or",
    "Not",
    "DisjunctivePredicate",
    "as_disjunctive",
    "FalseInterval",
    "false_intervals",
    "local_truth_table",
]
