"""Boolean combinators over predicates."""

from __future__ import annotations

from typing import FrozenSet, Sequence, TYPE_CHECKING, Tuple

from repro.predicates.base import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.deposet import Deposet

__all__ = ["And", "Or", "Not"]


class _NaryOp(Predicate):
    symbol = "?"

    def __init__(self, *operands: Predicate):
        if not operands:
            raise ValueError(f"{type(self).__name__} needs at least one operand")
        flat = []
        for op in operands:
            if type(op) is type(self):
                flat.extend(op.operands)  # associativity: flatten nested same-ops
            else:
                flat.append(op)
        self.operands: Tuple[Predicate, ...] = tuple(flat)

    def procs(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for op in self.operands:
            out |= op.procs()
        return out

    def __repr__(self) -> str:
        return "(" + f" {self.symbol} ".join(map(repr, self.operands)) + ")"


class And(_NaryOp):
    """Conjunction; short-circuits."""

    symbol = "&"

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return all(op.evaluate(dep, cut) for op in self.operands)


class Or(_NaryOp):
    """Disjunction; short-circuits."""

    symbol = "|"

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return any(op.evaluate(dep, cut) for op in self.operands)


class Not(Predicate):
    """Negation."""

    def __init__(self, operand: Predicate):
        self.operand = operand

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return not self.operand.evaluate(dep, cut)

    def procs(self) -> FrozenSet[int]:
        return self.operand.procs()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"
