"""False-intervals: maximal runs of local states violating a local predicate.

The off-line algorithm (Figure 2 of the paper) and Lemma 2's *overlap*
condition are phrased entirely in terms of these intervals: ``I.lo`` /
``I.hi`` are the first and last states of a maximal run where ``l_i`` is
false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, TYPE_CHECKING

import numpy as np

from repro.causality.relations import StateRef
from repro.predicates.disjunctive import DisjunctivePredicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.deposet import Deposet

__all__ = ["FalseInterval", "local_truth_table", "false_intervals"]


@dataclass(frozen=True)
class FalseInterval:
    """A maximal run ``[lo, hi]`` of consecutive false states on ``proc``."""

    proc: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def lo_ref(self) -> StateRef:
        return StateRef(self.proc, self.lo)

    @property
    def hi_ref(self) -> StateRef:
        return StateRef(self.proc, self.hi)

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def __contains__(self, index: int) -> bool:
        return self.lo <= index <= self.hi

    def __repr__(self) -> str:
        return f"I[{self.proc}: {self.lo}..{self.hi}]"


def local_truth_table(dep: "Deposet", pred: DisjunctivePredicate) -> List[np.ndarray]:
    """``table[i][a]`` = value of ``l_i`` at state ``a`` of process ``i``.

    Processes without a disjunct get all-false rows (they can never satisfy
    the disjunction).
    """
    if pred.n > dep.n:
        raise ValueError(
            f"predicate spans {pred.n} processes, deposet has {dep.n}"
        )
    table: List[np.ndarray] = []
    for i in range(dep.n):
        local = pred.local(i)
        m = dep.state_counts[i]
        if local is None:
            table.append(np.zeros(m, dtype=bool))
        elif local.expr is not None:
            # Structured disjunct: one vectorised pass over the packed
            # columns instead of m StateInfo round trips.
            block = dep.column_block(i, sorted(local.expr.var_names()))
            table.append(local.expr.eval_block(block, 0, m))
        else:
            table.append(
                np.fromiter(
                    (local.holds_at(dep, a) for a in range(m)),
                    dtype=bool,
                    count=m,
                )
            )
    return table


def false_intervals(
    dep: "Deposet", pred: DisjunctivePredicate
) -> List[List[FalseInterval]]:
    """Per-process lists of maximal false-intervals, in execution order."""
    return intervals_from_truth(local_truth_table(dep, pred))


def intervals_from_truth(table: Sequence[np.ndarray]) -> List[List[FalseInterval]]:
    """Extract maximal false runs from per-process truth arrays."""
    out: List[List[FalseInterval]] = []
    for proc, truth in enumerate(table):
        ivs: List[FalseInterval] = []
        m = len(truth)
        if m:
            # boundaries of runs of False: diff over the inverted array
            fal = ~np.asarray(truth, dtype=bool)
            idx = np.flatnonzero(np.diff(np.concatenate(([False], fal, [False])).astype(np.int8)))
            # idx pairs are (start, end+1) of each False run
            for lo, hi_plus in zip(idx[0::2], idx[1::2]):
                ivs.append(FalseInterval(proc, int(lo), int(hi_plus) - 1))
        out.append(ivs)
    return out
