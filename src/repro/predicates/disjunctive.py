"""Disjunctive predicates and normalisation into them.

``B = l_1 v l_2 v ... v l_n`` with ``l_i`` local to ``P_i``.  A process may
have no disjunct, in which case it contributes the constant *false* (it can
never "save" the predicate); the paper's examples -- two-process mutual
exclusion, at-least-one-server-available, "x before y", at-least-one-
philosopher-thinking -- are all of this shape.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import NotDisjunctiveError
from repro.predicates.base import Predicate, StateInfo, TruePredicate, FalsePredicate
from repro.predicates.boolean import And, Not, Or
from repro.predicates.expr import (
    AllExpr,
    AnyExpr,
    ConstExpr,
    Expr,
    NotExpr,
)
from repro.predicates.local import LocalPredicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.deposet import Deposet

__all__ = [
    "DisjunctivePredicate",
    "as_disjunctive",
    "fold_local",
    "lower_one_proc",
]


class DisjunctivePredicate(Predicate):
    """A disjunction of per-process local predicates.

    Parameters
    ----------
    disjuncts:
        One :class:`LocalPredicate` (or ``None``) per entry; each disjunct's
        ``proc`` must be unique.  ``None`` entries are allowed so callers can
        pass positional lists aligned with process indices.
    n:
        Total number of processes of the deposets this predicate will be
        applied to (defaults to ``max proc + 1``).
    """

    def __init__(
        self,
        disjuncts: Sequence[Optional[LocalPredicate]],
        n: Optional[int] = None,
    ):
        by_proc: Dict[int, LocalPredicate] = {}
        for d in disjuncts:
            if d is None:
                continue
            if not isinstance(d, LocalPredicate):
                raise NotDisjunctiveError(
                    f"disjunct {d!r} is not a LocalPredicate"
                )
            if d.proc in by_proc:
                raise NotDisjunctiveError(
                    f"two disjuncts for process {d.proc}; fold them into one "
                    f"local predicate first"
                )
            by_proc[d.proc] = d
        if not by_proc:
            raise NotDisjunctiveError("a disjunctive predicate needs >= 1 disjunct")
        self.n = n if n is not None else max(by_proc) + 1
        if max(by_proc) >= self.n:
            raise NotDisjunctiveError(
                f"disjunct for process {max(by_proc)} but n={self.n}"
            )
        self._by_proc = by_proc

    # -- access ----------------------------------------------------------------

    def local(self, proc: int) -> Optional[LocalPredicate]:
        """The disjunct of process ``proc`` (``None`` = constant false)."""
        return self._by_proc.get(proc)

    @property
    def locals_by_proc(self) -> Dict[int, LocalPredicate]:
        return dict(self._by_proc)

    def local_holds(self, dep: "Deposet", proc: int, index: int) -> bool:
        """``l_proc`` at local state ``index`` (false if no disjunct)."""
        d = self._by_proc.get(proc)
        return d.holds_at(dep, index) if d is not None else False

    # -- Predicate protocol -------------------------------------------------------

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return any(
            d.holds_at(dep, cut[proc]) for proc, d in self._by_proc.items()
        )

    def procs(self) -> FrozenSet[int]:
        return frozenset(self._by_proc)

    def negated(self) -> Predicate:
        """``not B`` as a conjunction of negated locals -- the "bad" predicate
        whose *possibly*/*definitely* detection drives verification."""
        return And(*(Not(d) for d in self._by_proc.values()))

    def __repr__(self) -> str:
        parts = " v ".join(d.name for d in self._by_proc.values())
        return f"Disjunctive({parts})"


def fold_local(pred: Predicate) -> Optional[LocalPredicate]:
    """Collapse a predicate touching at most one process into one local.

    Returns ``None`` when the subtree touches two or more processes, or
    when it touches zero processes and is a constant true/false (the
    caller decides what a constant means).  Used by disjunctive
    normalisation here and by conjunctive normalisation in
    :mod:`repro.slicing.regular`.
    """
    ps = pred.procs()
    if len(ps) > 1:
        return None
    if isinstance(pred, LocalPredicate):
        return pred
    if not ps:
        return None  # constants handled by the caller
    (proc,) = ps

    def fn(info: StateInfo, _pred=pred) -> bool:
        return _EvalOneProc(proc, info).run(_pred)

    return LocalPredicate(
        proc, fn, name=f"fold({pred!r})", expr=lower_one_proc(pred)
    )


def lower_one_proc(pred: Predicate) -> Optional[Expr]:
    """Lower a one-process predicate subtree into the picklable IR.

    Mirrors :class:`_EvalOneProc` node for node; returns ``None`` when any
    leaf is an opaque callable (a :class:`LocalPredicate` built without an
    ``expr``), in which case callers fall back to closure evaluation.
    """
    if isinstance(pred, LocalPredicate):
        return pred.expr
    if isinstance(pred, TruePredicate):
        return ConstExpr(True)
    if isinstance(pred, FalsePredicate):
        return ConstExpr(False)
    if isinstance(pred, Not):
        sub = lower_one_proc(pred.operand)
        return NotExpr(sub) if sub is not None else None
    if isinstance(pred, (And, Or)):
        subs = [lower_one_proc(op) for op in pred.operands]
        if any(s is None for s in subs):
            return None
        if not subs:  # pragma: no cover - _NaryOp requires operands
            return ConstExpr(isinstance(pred, And))
        node = AllExpr if isinstance(pred, And) else AnyExpr
        return node(tuple(subs))
    if isinstance(pred, DisjunctivePredicate):
        subs = [lower_one_proc(d) for d in pred.locals_by_proc.values()]
        if any(s is None for s in subs):
            return None
        return AnyExpr(tuple(subs))
    return None


class _EvalOneProc:
    """Evaluate a one-process predicate subtree given that process's state."""

    def __init__(self, proc: int, info: StateInfo):
        self.proc = proc
        self.info = info

    def run(self, pred: Predicate) -> bool:
        if isinstance(pred, LocalPredicate):
            if pred.proc != self.proc:  # pragma: no cover - guarded by procs()
                raise NotDisjunctiveError("mixed processes in local fold")
            return bool(pred.fn(self.info))
        if isinstance(pred, TruePredicate):
            return True
        if isinstance(pred, FalsePredicate):
            return False
        if isinstance(pred, Not):
            return not self.run(pred.operand)
        if isinstance(pred, And):
            return all(self.run(op) for op in pred.operands)
        if isinstance(pred, Or):
            return any(self.run(op) for op in pred.operands)
        if isinstance(pred, DisjunctivePredicate):
            return any(self.run(d) for d in pred.locals_by_proc.values())
        raise NotDisjunctiveError(f"cannot fold predicate node {pred!r}")


def as_disjunctive(pred: Predicate, n: int) -> DisjunctivePredicate:
    """Normalise ``pred`` into disjunctive form over ``n`` processes.

    Accepts:

    * a :class:`DisjunctivePredicate` (re-widened to ``n``);
    * a :class:`LocalPredicate` (one-disjunct predicate);
    * an :class:`Or` whose operands each touch exactly one process, several
      operands per process allowed (they are or-folded into one local);
      nested one-process subtrees (``And``/``Not``/constants) are folded too.

    Raises
    ------
    NotDisjunctiveError
        When any operand genuinely couples two or more processes.
    """
    if isinstance(pred, DisjunctivePredicate):
        return DisjunctivePredicate(list(pred.locals_by_proc.values()), n=n)
    if isinstance(pred, LocalPredicate):
        return DisjunctivePredicate([pred], n=n)
    if not isinstance(pred, Or):
        folded = fold_local(pred)
        if folded is not None:
            return DisjunctivePredicate([folded], n=n)
        raise NotDisjunctiveError(
            f"{pred!r} is not a disjunction of local predicates"
        )

    per_proc: Dict[int, List[Predicate]] = {}
    for op in pred.operands:
        if isinstance(op, FalsePredicate):
            continue  # a false disjunct contributes nothing
        if isinstance(op, TruePredicate):
            raise NotDisjunctiveError(
                "a constant-true disjunct makes the predicate trivially "
                "true everywhere; no control is needed (and no disjunctive "
                "form exists)"
            )
        ps = op.procs()
        if len(ps) != 1:
            raise NotDisjunctiveError(
                f"disjunct {op!r} touches processes {sorted(ps)}; each "
                f"disjunct must be local to one process"
            )
        (proc,) = ps
        per_proc.setdefault(proc, []).append(op)
    if not per_proc:
        raise NotDisjunctiveError("no non-constant disjunct")

    disjuncts: List[LocalPredicate] = []
    for proc, ops in per_proc.items():
        sub = ops[0] if len(ops) == 1 else Or(*ops)
        folded = fold_local(sub)
        if folded is None:  # pragma: no cover - len(procs)==1 guarantees fold
            raise NotDisjunctiveError(f"could not fold {sub!r}")
        disjuncts.append(folded)
    return DisjunctivePredicate(disjuncts, n=n)
