"""A picklable expression IR for local predicates.

``LocalPredicate.fn`` is a closure, which pins the whole slicing stack to
in-process evaluation: closures cannot cross a process boundary, and a
per-state Python call cannot be vectorised.  This module is the escape
hatch: a tiny expression language over *one process's local state* --
variable truthiness/equality and state-index comparisons, closed under
not/and/or -- that the structured ``LocalPredicate`` constructors lower
into at build time.

Every node offers two evaluation modes with identical semantics:

* :meth:`Expr.eval_state` -- one state at a time, mirroring exactly what
  the corresponding lambda computes (``vars.get`` defaults, ``bool``
  coercion, ``==`` dispatch);
* :meth:`Expr.eval_block` -- a whole state interval at once over a packed
  :class:`~repro.store.columns.ColumnBlock`, as one numpy kernel.

Nodes are frozen dataclasses of plain data, so an expression pickles --
this is what lets the parallel slicing driver ship *compiled conjuncts*
to worker processes instead of (unpicklable, and in the old driver
silently-wrong) closures.  Predicates built from raw callables
(``LocalPredicate.from_vars`` / direct construction) have no IR; callers
must treat ``expr is None`` as "evaluate in-process only".

Bit-for-bit agreement between the two modes and the lambda path is pinned
by ``tests/slicing/test_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Tuple

import numpy as np

from repro.store.columns import ColumnBlock

__all__ = [
    "Expr",
    "VarTruthy",
    "VarEquals",
    "IndexAtLeast",
    "IndexLess",
    "NotExpr",
    "AllExpr",
    "AnyExpr",
    "ConstExpr",
]

#: value types whose numpy comparison semantics coincide with Python's.
_NATIVE_SCALARS = (bool, int, float, np.bool_, np.integer, np.floating)


class Expr:
    """Base class; subclasses are frozen dataclasses (hashable, picklable)."""

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        """The expression at one local state (``vars``, state ``index``)."""
        raise NotImplementedError

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        """Boolean array over states ``[lo, hi)`` of a packed column block."""
        raise NotImplementedError

    def var_names(self) -> FrozenSet[str]:
        """Variables the expression reads (what a block must pack)."""
        return frozenset()


def _truthy(col: np.ndarray, lo: int, hi: int) -> np.ndarray:
    part = col[lo:hi]
    if part.dtype == np.bool_:
        return part.astype(bool, copy=True)
    if part.dtype != object:
        return part != 0
    return np.fromiter((bool(v) for v in part), dtype=bool, count=hi - lo)


@dataclass(frozen=True)
class VarTruthy(Expr):
    """``bool(vars.get(name, False))`` -- the ``var_true`` test."""

    name: str

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return bool(vars.get(self.name, False))

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        return _truthy(block.columns[self.name], lo, hi)

    def var_names(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class VarEquals(Expr):
    """``vars.get(name) == value`` -- the ``var_equals`` test."""

    name: str
    value: Any

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return bool(vars.get(self.name) == self.value)

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        part = block.columns[self.name][lo:hi]
        if part.dtype != object and isinstance(self.value, _NATIVE_SCALARS):
            return np.asarray(part == self.value, dtype=bool)
        if part.dtype != object:
            # native column vs a non-numeric constant: never equal, same
            # as Python's cross-type ``==`` on these scalar types.
            return np.zeros(hi - lo, dtype=bool)
        return np.fromiter(
            (bool(v == self.value) for v in part), dtype=bool, count=hi - lo
        )

    def var_names(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class IndexAtLeast(Expr):
    """``index >= k`` -- the ``at_or_after`` test."""

    k: int

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return index >= self.k

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        return np.arange(block.offset + lo, block.offset + hi) >= self.k


@dataclass(frozen=True)
class IndexLess(Expr):
    """``index < k`` -- the ``before`` test."""

    k: int

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return index < self.k

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        return np.arange(block.offset + lo, block.offset + hi) < self.k


@dataclass(frozen=True)
class NotExpr(Expr):
    operand: Expr

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return not self.operand.eval_state(vars, index)

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        return ~self.operand.eval_block(block, lo, hi)

    def var_names(self) -> FrozenSet[str]:
        return self.operand.var_names()


@dataclass(frozen=True)
class AllExpr(Expr):
    operands: Tuple[Expr, ...]

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return all(op.eval_state(vars, index) for op in self.operands)

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        out = self.operands[0].eval_block(block, lo, hi)
        for op in self.operands[1:]:
            out &= op.eval_block(block, lo, hi)
        return out

    def var_names(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.var_names()
        return out


@dataclass(frozen=True)
class AnyExpr(Expr):
    operands: Tuple[Expr, ...]

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return any(op.eval_state(vars, index) for op in self.operands)

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        out = self.operands[0].eval_block(block, lo, hi)
        for op in self.operands[1:]:
            out |= op.eval_block(block, lo, hi)
        return out

    def var_names(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.var_names()
        return out


@dataclass(frozen=True)
class ConstExpr(Expr):
    value: bool

    def eval_state(self, vars: Mapping[str, Any], index: int) -> bool:
        return self.value

    def eval_block(self, block: ColumnBlock, lo: int, hi: int) -> np.ndarray:
        return np.full(hi - lo, self.value, dtype=bool)
