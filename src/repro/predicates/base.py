"""Predicate abstract base class and constants."""

from __future__ import annotations

import abc
from typing import Any, Dict, FrozenSet, NamedTuple, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.deposet import Deposet

__all__ = ["StateInfo", "Predicate", "TruePredicate", "FalsePredicate", "TRUE", "FALSE"]


class StateInfo(NamedTuple):
    """What a local predicate may observe about one local state."""

    proc: int
    index: int
    vars: Dict[str, Any]


class Predicate(abc.ABC):
    """A boolean function of global states of a deposet.

    ``B(G)`` is evaluated by :meth:`evaluate` on a cut (tuple of one state
    index per process).  Subclasses must also report which processes their
    truth value depends on (:meth:`procs`), which drives disjunctive
    normalisation.
    """

    @abc.abstractmethod
    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        """The value ``B(G)`` at global state ``cut``."""

    @abc.abstractmethod
    def procs(self) -> FrozenSet[int]:
        """Processes whose local state can influence this predicate."""

    # -- capability checks ---------------------------------------------------

    def is_regular(self) -> bool:
        """Can this predicate be detected by the polynomial slicing engine?

        A predicate is *regular* when its satisfying consistent cuts are
        closed under the lattice meet and join -- the class for which
        Mittal & Garg's computation slicing yields polynomial detection.
        This check recognises the syntactic core of that class: anything
        normalisable into a conjunction of per-process local predicates
        (``And`` of locals, negated disjunctions, one-process subtrees,
        constants).  ``False`` means the detection engines fall back to
        the exhaustive lattice walk, not that the predicate is
        semantically irregular.

        Contract: subclasses must NOT override this with a cheaper or
        looser answer -- engine auto-routing and the static classifier
        (:func:`repro.analysis.classifier.classify`) both assume
        ``is_regular()`` and ``regular_form(self) is not None`` are the
        same statement, for every subclass.  The equivalence is pinned by
        ``tests/predicates/test_is_regular_contract.py``.
        """
        from repro.slicing.regular import regular_form  # cycle-free at call time

        return regular_form(self) is not None

    # -- operator sugar ------------------------------------------------------

    def __or__(self, other: "Predicate") -> "Predicate":
        from repro.predicates.boolean import Or

        return Or(self, other)

    def __and__(self, other: "Predicate") -> "Predicate":
        from repro.predicates.boolean import And

        return And(self, other)

    def __invert__(self) -> "Predicate":
        from repro.predicates.boolean import Not

        return Not(self)


class TruePredicate(Predicate):
    """The constant ``true``."""

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return True

    def procs(self) -> FrozenSet[int]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


class FalsePredicate(Predicate):
    """The constant ``false``."""

    def evaluate(self, dep: "Deposet", cut: Sequence[int]) -> bool:
        return False

    def procs(self) -> FrozenSet[int]:
        return frozenset()

    def __repr__(self) -> str:
        return "FALSE"


TRUE = TruePredicate()
FALSE = FalsePredicate()
