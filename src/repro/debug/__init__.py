"""Active debugging: the observe -> control -> replay cycle (Section 7).

* :mod:`repro.debug.properties` -- the paper's example safety properties as
  ready-made disjunctive predicates, including the event-ordering property
  "x must happen before y";
* :mod:`repro.debug.session` -- :class:`DebugSession`, a small driver for
  the walkthrough of Figure 4: detect a bug on a traced computation, apply
  off-line control, replay, inspect, repeat; and hand the winning predicate
  to the on-line controller for future runs.
"""

from repro.debug.properties import (
    at_least_one,
    mutual_exclusion,
    happens_before,
)
from repro.debug.session import DebugSession

__all__ = [
    "at_least_one",
    "mutual_exclusion",
    "happens_before",
    "DebugSession",
]
