"""Debug sessions: drive the active-debugging cycle of Section 7.

A :class:`DebugSession` wraps one traced computation and offers the three
moves of the paper's methodology:

* :meth:`detect` -- find the consistent global states violating a safety
  predicate (the bug's "where");
* :meth:`control` -- apply off-line predicate control and *replay* the
  computation under it, yielding a new session over the controlled
  computation ("does the bug survive if I forbid this?");
* :meth:`online_guard` -- once a safety predicate has been validated
  off-line, produce the on-line controller that prevents the bug in fresh
  runs.

Sessions are immutable; every ``control`` produces a new one, and
``history`` records the chain (C1 -> C2 -> ... in the paper's Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.control_relation import ControlRelation
from repro.core.offline import control_disjunctive
from repro.core.online import OnlineDisjunctiveControl
from repro.detection.conjunctive import possibly_bad
from repro.detection.lattice_walk import violating_cuts
from repro.predicates.base import Predicate
from repro.predicates.disjunctive import as_disjunctive
from repro.replay.engine import replay
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = ["DebugSession", "ControlStep"]


@dataclass(frozen=True)
class ControlStep:
    """One applied control in a session's history."""

    predicate: str
    control: ControlRelation
    from_name: str
    to_name: str


class DebugSession:
    """One computation under inspection."""

    def __init__(
        self,
        dep: Deposet,
        name: str = "C1",
        history: Optional[List[ControlStep]] = None,
    ):
        self.dep = dep
        self.name = name
        self.history: List[ControlStep] = list(history or [])

    # -- observe -------------------------------------------------------------

    def detect(self, safety: Predicate, exhaustive: bool = False):
        """Consistent global states violating ``safety``.

        By default returns the single least witness from the efficient
        weak-conjunctive detector (``None`` when the bug is impossible);
        with ``exhaustive=True`` returns *all* violating consistent cuts
        (exponential; fine for debugging-sized traces -- this is how the
        paper's Figure 4 talks about "the global states G and H").
        """
        if exhaustive:
            return violating_cuts(self.dep, safety)
        disj = as_disjunctive(safety, self.dep.n)
        return possibly_bad(self.dep, disj)

    def bug_possible(self, safety: Predicate) -> bool:
        """Can ``safety`` be violated in this computation?"""
        disj = as_disjunctive(safety, self.dep.n)
        return possibly_bad(self.dep, disj) is not None

    def is_consistent(self, cut: Cut) -> bool:
        """Is ``cut`` a consistent global state of this computation?"""
        return self.dep.order.is_consistent_cut(cut)

    # -- control + replay ---------------------------------------------------------

    def control(
        self,
        safety: Predicate,
        name: Optional[str] = None,
        seed: int = 0,
    ) -> Tuple["DebugSession", ControlRelation]:
        """Off-line control for ``safety``, then a controlled replay.

        Returns the new session (over the recorded controlled computation)
        and the control relation used.  Raises
        :class:`~repro.errors.NoControllerExistsError` when the bug occurs
        in every execution of this trace.
        """
        disj = as_disjunctive(safety, self.dep.n)
        if possibly_bad(self.dep, disj) is None:
            # already satisfied (e.g. by controls applied earlier in the
            # session): nothing to add, but keep the cycle's bookkeeping
            result_control = ControlRelation()
            replayed = replay(self.dep, result_control, seed=seed)
        else:
            result = control_disjunctive(self.dep, disj, seed=seed)
            result_control = result.control
            replayed = replay(self.dep, result_control, seed=seed)
        new_name = name or f"C{len(self.history) + 2}"
        step = ControlStep(
            predicate=repr(safety),
            control=result_control,
            from_name=self.name,
            to_name=new_name,
        )
        return (
            DebugSession(replayed.deposet, new_name, self.history + [step]),
            result_control,
        )

    # -- prevention -------------------------------------------------------------------

    def online_guard(
        self, safety: Predicate, strategy: str = "unicast", seed: int = 0
    ) -> OnlineDisjunctiveControl:
        """An on-line controller enforcing ``safety`` on *future* runs.

        The predicate must be disjunctive over variable-based local
        predicates (index-based predicates like ``happens_before`` refer to
        trace positions of *this* computation and do not transfer to new
        runs unless the new run has the same event structure).
        """
        disj = as_disjunctive(safety, self.dep.n)
        conditions = []
        for i in range(self.dep.n):
            local = disj.local(i)
            if local is None:
                conditions.append(lambda vars: False)
            else:
                conditions.append(
                    lambda vars, _l=local, _i=i: bool(
                        _l.fn(_StateProxy(_i, vars))
                    )
                )
        return OnlineDisjunctiveControl(conditions, strategy=strategy, seed=seed)

    # -- reporting ----------------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"session {self.name}: {self.dep!r}"]
        for step in self.history:
            lines.append(
                f"  {step.from_name} --[{step.predicate}, "
                f"{len(step.control)} control msg(s)]--> {step.to_name}"
            )
        return "\n".join(lines)


class _StateProxy:
    """Adapts on-line variable dicts to the StateInfo protocol.

    On-line controllers see only the current variables; state indices are
    unknown mid-run, so index-based predicates cannot be evaluated (they
    raise through the attribute access below).
    """

    __slots__ = ("proc", "vars")

    def __init__(self, proc: int, vars: dict):
        self.proc = proc
        self.vars = vars

    @property
    def index(self) -> int:
        raise ValueError(
            "index-based local predicates (after/before) cannot be enforced "
            "on-line: a fresh run's state indices are not known in advance"
        )
