"""The paper's Section 5 example predicates, packaged.

(1) two-process mutual exclusion     ``not cs_1 v not cs_2``
(2) at least one server available    ``avail_1 v ... v avail_n``
(3) x must happen before y           ``after_x v before_y``
(4) at least one philosopher thinks  ``think_1 v ... v think_n``

All are disjunctive, hence controllable by the efficient algorithms.  (3)
shows the fine-grained power of the class: "after x" / "before y" are local
predicates over the state *index*, so ordering two specific states across
processes is just another disjunction.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.causality.relations import StateRef
from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.local import LocalPredicate

__all__ = ["at_least_one", "mutual_exclusion", "happens_before"]

StateLike = Union[StateRef, Tuple[int, int]]


def at_least_one(n: int, var: str, procs: Sequence[int] | None = None) -> DisjunctivePredicate:
    """``var_1 v var_2 v ... v var_n`` over the given processes.

    Properties (2) and (4) of the paper: server availability, philosopher
    thinking -- any "at least one of them is fine" invariant.
    """
    if procs is None:
        procs = range(n)
    return DisjunctivePredicate(
        [LocalPredicate.var_true(i, var) for i in procs], n=n
    )


def mutual_exclusion(n: int, var: str = "cs", procs: Sequence[int] | None = None) -> DisjunctivePredicate:
    """``not cs_1 v ... v not cs_n``: at most ``len(procs) - 1`` inside.

    With two processes this is property (1); with all ``n`` it is the
    ``(n-1)``-mutual exclusion of Section 6.
    """
    if procs is None:
        procs = range(n)
    return DisjunctivePredicate(
        [LocalPredicate.var_false(i, var) for i in procs], n=n
    )


def happens_before(x: StateLike, y: StateLike, n: int) -> DisjunctivePredicate:
    """Property (3): state ``x`` must happen before state ``y``.

    ``B = after_x v before_y``: every global state either has ``x``'s
    process already at/past ``x``, or ``y``'s process strictly before
    ``y``.  Controlling ``B`` forces ``x -> y`` in the controlled
    computation.
    """
    x = StateRef(*x)
    y = StateRef(*y)
    if x.proc == y.proc:
        raise ValueError(
            "happens-before control is only needed across processes; "
            "same-process order is fixed by the program"
        )
    return DisjunctivePredicate(
        [
            LocalPredicate.at_or_after(x.proc, x.index),
            LocalPredicate.before(y.proc, y.index),
        ],
        n=n,
    )
