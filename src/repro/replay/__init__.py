"""Controlled replay: re-execute a traced computation under a control relation.

This is the operational half of off-line predicate control: the trace fixes
each process's event sequence and message pairing; the control relation is
enforced by control messages -- the controller of the arrow's source sends
at the instant its process *leaves* the source state, and the controller of
the target blocks its process from *entering* the target state until the
message arrives.  Replaying a controlled deposet therefore yields a real
execution whose recorded trace is the original plus the control arrows.

A replay deadlocks exactly when the control relation interferes with the
computation's causality (an event-level cycle); the engine detects this and
raises :class:`~repro.errors.ReplayDeadlockError`.
"""

from repro.replay.engine import replay, ReplayResult

__all__ = ["replay", "ReplayResult"]
