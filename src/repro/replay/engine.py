"""The replay engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.causality.relations import StateRef
from repro.core.control_relation import ControlRelation
from repro.errors import ReplayDeadlockError
from repro.sim.system import ProcessContext, RunResult, System, TransitionGuard
from repro.trace.deposet import Deposet
from repro.trace.states import EventKind

__all__ = ["replay", "ReplayResult"]


@dataclass
class ReplayResult:
    """Outcome of a controlled replay."""

    #: the recorded (controlled) computation
    deposet: Deposet
    #: raw simulator result (durations, message counts, ...)
    run: RunResult
    #: control messages used (== arrows actually enforced)
    control_messages: int


class _ReplayGuard(TransitionGuard):
    """Blocks each process before entering a state with pending incoming
    control arrows; emits control tokens when source states are left."""

    def __init__(self, arrows: List[Tuple[StateRef, StateRef]]):
        #: tokens required before entering (proc, state): set of arrow ids
        self.need: Dict[Tuple[int, int], Set[int]] = {}
        #: tokens to send when (proc, state) is left: list of (id, dst proc)
        self.out: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.got: Set[int] = set()
        self.pending: Dict[int, Tuple[Set[int], Callable[[], None]]] = {}
        for aid, (src, dst) in enumerate(arrows):
            self.need.setdefault((dst.proc, dst.index), set()).add(aid)
            self.out.setdefault((src.proc, src.index), []).append((aid, dst.proc))

    def request_transition(self, proc, updates, next_vars, commit):
        target = (proc, self.system.recorder.current_state(proc) + 1)
        required = self.need.get(target, set())
        missing = required - self.got
        if missing:
            self.pending[proc] = (missing, lambda: self._commit(proc, commit))
        else:
            self._commit(proc, commit)

    def _commit(self, proc: int, commit: Callable[[], None]) -> None:
        left = (proc, self.system.recorder.current_state(proc))
        # Leaving `left` completes it: release its outgoing control arrows.
        for aid, dst in self.out.get(left, ()):
            self.system.send_control(
                proc, dst, aid, self._on_token, tag="replay-ctl",
                record_mode="exact",
            )
        commit()

    def _on_token(self, delivery) -> None:
        self.got.add(delivery.payload)
        entry = self.pending.get(delivery.dst)
        if entry is None:
            return
        missing, run = entry
        missing.discard(delivery.payload)
        if not missing:
            del self.pending[delivery.dst]
            run()


def _make_program(dep: Deposet, proc: int, step: float):
    """A generator function replaying one process's event sequence."""
    events = dep.events[proc]
    states = dep.proc_states(proc)
    msg_by_idx = dep.messages

    def program(ctx: ProcessContext):
        for ev in events:
            new_vars = states[ev.index + 1]
            # Updates = full next assignment (overwrites are idempotent).
            if step > 0:
                yield ctx.compute(step)
            if ev.kind is EventKind.LOCAL:
                yield ctx.set(**new_vars)
            elif ev.kind is EventKind.SEND:
                msg = msg_by_idx[ev.message]
                yield ctx.send(
                    msg.dst.proc, msg.payload, tag=f"m{ev.message}", **new_vars
                )
            else:  # RECEIVE
                yield ctx.receive(tag=f"m{ev.message}", **new_vars)

    return program


def replay(
    dep: Deposet,
    control: Optional[ControlRelation] = None,
    mean_delay: float = 1.0,
    jitter: float = 0.0,
    seed: int = 0,
    step: float = 0.1,
) -> ReplayResult:
    """Re-execute ``dep`` under ``control``.

    Parameters
    ----------
    dep:
        The traced computation.  Its own control arrows (if it is already a
        controlled deposet) are enforced too.
    control:
        Additional control relation to enforce (e.g. the output of
        :func:`repro.core.offline.control_disjunctive` on ``dep``).
    step:
        Simulated compute time before each replayed event (spreads events
        in time so the trace is readable; 0 for instantaneous replays).

    Returns
    -------
    ReplayResult
        The recorded controlled computation; its underlying states and
        messages equal ``dep``'s, and its control arrows are exactly the
        enforced relation (arrows already implied by message causality
        still appear -- they were enforced, merely redundantly).

    Raises
    ------
    ReplayDeadlockError
        When the combined control relation interferes with the
        computation's causality, which manifests operationally as a
        deadlock.  The error's ``blocked`` attribute says which processes
        were stuck and why.
    """
    arrows: List[Tuple[StateRef, StateRef]] = [
        (StateRef(*a), StateRef(*b)) for a, b in dep.control_arrows
    ]
    if control is not None:
        arrows.extend(control.arrows)

    guard = _ReplayGuard(arrows)
    system = System(
        [_make_program(dep, i, step) for i in range(dep.n)],
        start_vars=[dict(dep.proc_states(i)[0]) for i in range(dep.n)],
        mean_delay=mean_delay,
        jitter=jitter,
        guard=guard,
        seed=seed,
        proc_names=list(dep.proc_names),
    )
    result = system.run()
    if result.deadlocked:
        raise ReplayDeadlockError(
            "controlled replay deadlocked (control relation interferes with "
            "the computation's causality)",
            blocked=result.blocked,
        )
    return ReplayResult(
        deposet=result.deposet,
        run=result,
        control_messages=result.control_messages,
    )
