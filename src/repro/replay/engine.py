"""The replay engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.causality.relations import StateRef
from repro.core.control_relation import ControlRelation
from repro.errors import ReplayDeadlockError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.system import ProcessContext, RunResult, System, TransitionGuard
from repro.trace.deposet import Deposet
from repro.trace.states import EventKind

__all__ = ["replay", "ReplayResult"]

_RECOVERED = METRICS.counter("replay.tokens_recovered")

#: resend attempts per lost token before the progress watchdog declares it
#: unrecoverable and lets the run drain into a diagnosed deadlock
MAX_TOKEN_RESENDS = 16


@dataclass
class ReplayResult:
    """Outcome of a controlled replay."""

    #: the recorded (controlled) computation
    deposet: Deposet
    #: raw simulator result (durations, message counts, ...)
    run: RunResult
    #: control messages used (== arrows actually enforced)
    control_messages: int
    #: control tokens the progress watchdog resent after loss
    recovered_tokens: int = 0


class _ReplayGuard(TransitionGuard):
    """Blocks each process before entering a state with pending incoming
    control arrows; emits control tokens when source states are left.

    With a ``progress_timeout``, a watchdog fires whenever a full window
    passes with no committed step: a token that was *sent* (its source
    state was left) but never arrived was lost in transit and is resent --
    the recorded arrow keeps the source state captured at the original
    send, so the recovered arrow equals the one the fault erased.  A
    missing token that was never sent means the source process itself is
    stuck: genuine interference, which no resend can fix.
    """

    def __init__(
        self,
        arrows: List[Tuple[StateRef, StateRef]],
        progress_timeout: Optional[float] = None,
    ):
        self.arrows = arrows
        #: tokens required before entering (proc, state): set of arrow ids
        self.need: Dict[Tuple[int, int], Set[int]] = {}
        #: tokens to send when (proc, state) is left: list of (id, dst proc)
        self.out: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.got: Set[int] = set()
        self.pending: Dict[int, Tuple[Set[int], Callable[[], None]]] = {}
        for aid, (src, dst) in enumerate(arrows):
            self.need.setdefault((dst.proc, dst.index), set()).add(aid)
            self.out.setdefault((src.proc, src.index), []).append((aid, dst.proc))
        self.progress_timeout = progress_timeout
        #: arrow id -> source state index captured at the original send
        self.sent: Dict[int, int] = {}
        self.commits = 0
        self.recovered_tokens = 0
        self._last_commits = -1
        self._resends: Dict[int, int] = {}

    def attach(self, system) -> None:
        super().attach(system)
        if self.progress_timeout is not None:
            system.queue.schedule(self.progress_timeout, self._progress_check)

    def request_transition(self, proc, updates, next_vars, commit):
        target = (proc, self.system.recorder.current_state(proc) + 1)
        required = self.need.get(target, set())
        missing = required - self.got
        if missing:
            self.pending[proc] = (missing, lambda: self._commit(proc, commit))
        else:
            self._commit(proc, commit)

    def _commit(self, proc: int, commit: Callable[[], None]) -> None:
        left = (proc, self.system.recorder.current_state(proc))
        # Leaving `left` completes it: release its outgoing control arrows.
        for aid, dst in self.out.get(left, ()):
            self.sent[aid] = left[1]
            self.system.send_control(
                proc, dst, aid, self._on_token, tag="replay-ctl",
                record_mode="exact",
            )
        self.commits += 1
        commit()

    def _on_token(self, delivery) -> None:
        self.got.add(delivery.payload)
        entry = self.pending.get(delivery.dst)
        if entry is None:
            return
        missing, run = entry
        missing.discard(delivery.payload)
        if not missing:
            del self.pending[delivery.dst]
            run()

    # -- the progress watchdog ---------------------------------------------

    def _lost_tokens(self) -> Set[int]:
        """Missing tokens whose source state *was* left: lost in transit."""
        lost: Set[int] = set()
        for missing, _resume in self.pending.values():
            lost |= {aid for aid in missing if aid in self.sent}
        return lost

    def _progress_check(self) -> None:
        if all(
            self.system.is_finished(i) or self.system.is_crashed(i)
            for i in range(self.system.n)
        ):
            return
        if self.commits != self._last_commits:
            # something moved this window: keep watching
            self._last_commits = self.commits
        else:
            recoverable = {
                aid for aid in self._lost_tokens()
                if self._resends.get(aid, 0) < MAX_TOKEN_RESENDS
            }
            if not recoverable:
                # nothing a resend can fix (genuine interference, or the
                # resend budget is spent): stand down and let the run
                # drain into the diagnosed deadlock
                return
            for aid in sorted(recoverable):
                self._resend(aid)
        self.system.queue.schedule(self.progress_timeout, self._progress_check)

    def _resend(self, aid: int) -> None:
        src, dst = self.arrows[aid]
        src_state = self.sent[aid]
        self._resends[aid] = self._resends.get(aid, 0) + 1
        self.recovered_tokens += 1
        _RECOVERED.inc()
        if TRACER.enabled:
            TRACER.event(
                "replay.token_recovered", proc=src.proc, dst=dst.proc,
                arrow=aid, attempt=self._resends[aid],
                sim_time=self.system.queue.now,
            )

        def on_arrival(delivery) -> None:
            if delivery.payload in self.got:
                return  # an earlier copy got through after all
            # record the arrow with the source state of the original send,
            # not the resend instant -- the recovered arrow must equal the
            # one the fault erased
            self.system.control_arrow(
                src.proc, dst.proc, src_state, mode="exact", tag="replay-ctl"
            )
            self._on_token(delivery)

        self.system.network.send(
            src.proc, dst.proc, aid, on_arrival, tag="replay-ctl", control=True
        )


def _make_program(dep: Deposet, proc: int, step: float):
    """A generator function replaying one process's event sequence."""
    events = dep.events[proc]
    states = dep.proc_states(proc)
    msg_by_idx = dep.messages

    def program(ctx: ProcessContext):
        for ev in events:
            new_vars = states[ev.index + 1]
            # Updates = full next assignment (overwrites are idempotent).
            if step > 0:
                yield ctx.compute(step)
            if ev.kind is EventKind.LOCAL:
                yield ctx.set(**new_vars)
            elif ev.kind is EventKind.SEND:
                msg = msg_by_idx[ev.message]
                yield ctx.send(
                    msg.dst.proc, msg.payload, tag=f"m{ev.message}", **new_vars
                )
            else:  # RECEIVE
                yield ctx.receive(tag=f"m{ev.message}", **new_vars)

    return program


def replay(
    dep: Deposet,
    control: Optional[ControlRelation] = None,
    mean_delay: float = 1.0,
    jitter: float = 0.0,
    seed: int = 0,
    step: float = 0.1,
    faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    progress_timeout: Optional[float] = None,
) -> ReplayResult:
    """Re-execute ``dep`` under ``control``.

    Parameters
    ----------
    dep:
        The traced computation.  Its own control arrows (if it is already a
        controlled deposet) are enforced too.
    control:
        Additional control relation to enforce (e.g. the output of
        :func:`repro.core.offline.control_disjunctive` on ``dep``).
    step:
        Simulated compute time before each replayed event (spreads events
        in time so the trace is readable; 0 for instantaneous replays).
    faults:
        Optional fault plan/injector the replay runs under -- replays of a
        recorded computation can themselves meet lossy channels.
    progress_timeout:
        Arm the progress watchdog: whenever this much sim time passes with
        no committed step, control tokens that were sent but lost in
        transit are resent (up to ``MAX_TOKEN_RESENDS`` each).  Pick it
        larger than the worst-case token flight time (one channel delay
        plus any fault-plan delay spike).

    Returns
    -------
    ReplayResult
        The recorded controlled computation; its underlying states and
        messages equal ``dep``'s, and its control arrows are exactly the
        enforced relation (arrows already implied by message causality
        still appear -- they were enforced, merely redundantly).

    Raises
    ------
    ReplayDeadlockError
        When the replay cannot finish.  The error distinguishes the two
        causes: ``interference`` lists stalled arrows whose source state
        was never left (the control relation fights the computation's
        causality -- no retransmission can help), ``lost_tokens`` lists
        arrows whose token was sent but never arrived (a channel fault ate
        it and the resend budget ran out).  ``blocked`` says which
        processes were stuck and why.
    """
    arrows: List[Tuple[StateRef, StateRef]] = [
        (StateRef(*a), StateRef(*b)) for a, b in dep.control_arrows
    ]
    if control is not None:
        arrows.extend(control.arrows)

    guard = _ReplayGuard(arrows, progress_timeout=progress_timeout)
    system = System(
        [_make_program(dep, i, step) for i in range(dep.n)],
        start_vars=[dict(dep.proc_states(i)[0]) for i in range(dep.n)],
        mean_delay=mean_delay,
        jitter=jitter,
        guard=guard,
        seed=seed,
        proc_names=list(dep.proc_names),
        faults=faults,
    )
    result = system.run()
    if result.deadlocked:
        lost: List[Tuple[int, StateRef, StateRef]] = []
        interference: List[Tuple[int, StateRef, StateRef]] = []
        for proc in sorted(guard.pending):
            missing, _resume = guard.pending[proc]
            for aid in sorted(missing):
                src, dst = arrows[aid]
                (lost if aid in guard.sent else interference).append(
                    (aid, src, dst)
                )
        if interference and not lost:
            detail = "control relation interferes with the computation's causality"
        elif lost and not interference:
            detail = "control token(s) lost in transit and not recovered"
        else:
            detail = "lost control tokens and causal interference"
        stalled = "; ".join(
            [
                f"arrow {aid}: ({s.proc},{s.index}) -> ({d.proc},{d.index})"
                f" [never released]"
                for aid, s, d in interference
            ]
            + [
                f"arrow {aid}: ({s.proc},{s.index}) -> ({d.proc},{d.index})"
                f" [sent, lost]"
                for aid, s, d in lost
            ]
        )
        raise ReplayDeadlockError(
            f"controlled replay deadlocked ({detail}): {stalled}",
            blocked=result.blocked,
            lost_tokens=lost,
            interference=interference,
        )
    return ReplayResult(
        deposet=result.deposet,
        run=result,
        control_messages=result.control_messages,
        recovered_tokens=guard.recovered_tokens,
    )
