"""DPLL satisfiability with unit propagation and pure-literal elimination."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sat.cnf import CNF

__all__ = ["dpll_solve"]


def dpll_solve(cnf: CNF) -> Optional[List[bool]]:
    """A satisfying assignment (list indexed by var-1), or ``None`` if UNSAT."""
    assignment: Dict[int, bool] = {}
    if not _dpll(cnf, assignment):
        return None
    # Unconstrained variables default to True.
    return [assignment.get(v, True) for v in range(1, cnf.num_vars + 1)]


def _dpll(cnf: CNF, assignment: Dict[int, bool]) -> bool:
    # Unit propagation.
    while True:
        if any(len(c) == 0 for c in cnf.clauses):
            return False
        units = [c[0] for c in cnf.clauses if len(c) == 1]
        if not units:
            break
        lit = units[0]
        assignment[abs(lit)] = lit > 0
        reduced = cnf.simplify(lit)
        if reduced is None:
            return False
        cnf = reduced

    if not cnf.clauses:
        return True

    # Pure-literal elimination.
    polarity: Dict[int, int] = {}
    for clause in cnf.clauses:
        for lit in clause:
            v = abs(lit)
            polarity[v] = polarity.get(v, 0) | (1 if lit > 0 else 2)
    pures = [v if pol == 1 else -v for v, pol in polarity.items() if pol in (1, 2)]
    if pures:
        for lit in pures:
            assignment[abs(lit)] = lit > 0
            reduced = cnf.simplify(lit)
            if reduced is None:  # pragma: no cover - pure literals cannot conflict
                return False
            cnf = reduced
        return _dpll(cnf, assignment)

    # Branch on the first literal of the first clause.
    lit = cnf.clauses[0][0]
    for choice in (lit, -lit):
        trial = dict(assignment)
        trial[abs(choice)] = choice > 0
        reduced = cnf.simplify(choice)
        if reduced is not None and _dpll(reduced, trial):
            assignment.clear()
            assignment.update(trial)
            return True
    return False
