"""CNF formulas in DIMACS-style literal encoding.

A literal is a nonzero integer: ``+v`` is variable ``v`` (1-based),
``-v`` its negation.  A clause is a list of literals; a formula a list of
clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CNF", "random_ksat"]


@dataclass(frozen=True)
class CNF:
    """An immutable CNF formula."""

    num_vars: int
    clauses: Tuple[Tuple[int, ...], ...]

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]]):
        object.__setattr__(self, "num_vars", int(num_vars))
        norm = tuple(tuple(int(l) for l in clause) for clause in clauses)
        object.__setattr__(self, "clauses", norm)
        for clause in self.clauses:
            if not clause:
                continue  # empty clause allowed: the formula is unsatisfiable
            for lit in clause:
                if lit == 0 or abs(lit) > self.num_vars:
                    raise ValueError(f"literal {lit} out of range for {self.num_vars} vars")

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Value of the formula under a full assignment (index 0 = var 1)."""
        if len(assignment) != self.num_vars:
            raise ValueError(
                f"assignment has {len(assignment)} values for {self.num_vars} vars"
            )
        return all(
            any(
                assignment[abs(lit) - 1] == (lit > 0)
                for lit in clause
            )
            for clause in self.clauses
        )

    def simplify(self, lit: int) -> Optional["CNF"]:
        """The residual formula after asserting ``lit``.

        Returns ``None`` when a clause becomes empty (conflict).  Satisfied
        clauses are dropped; falsified literals removed.
        """
        new_clauses: List[Tuple[int, ...]] = []
        for clause in self.clauses:
            if lit in clause:
                continue
            if -lit in clause:
                reduced = tuple(l for l in clause if l != -lit)
                if not reduced:
                    return None
                new_clauses.append(reduced)
            else:
                new_clauses.append(clause)
        return CNF(self.num_vars, new_clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> CNF:
    """A uniformly random k-SAT formula (distinct variables per clause).

    ``num_clauses/num_vars`` around 4.26 puts random 3-SAT near the
    satisfiability phase transition, which is the hard regime used by the
    E1 benchmarks.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    if k > num_vars:
        raise ValueError(f"k={k} > num_vars={num_vars}")
    clauses = []
    for _ in range(num_clauses):
        vars_ = rng.choice(num_vars, size=k, replace=False) + 1
        signs = rng.integers(0, 2, size=k) * 2 - 1
        clauses.append(tuple(int(v * s) for v, s in zip(vars_, signs)))
    return CNF(num_vars, clauses)
