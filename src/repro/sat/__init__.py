"""A small SAT substrate (CNF + DPLL) for the NP-hardness experiments.

Lemma 1 of the paper maps SAT to *satisfying global sequence detection*
(SGSD).  To exercise the reduction in both directions we need a reference
SAT solver; this package provides a dependency-free DPLL with unit
propagation and pure-literal elimination, plus seeded random formula
generators.
"""

from repro.sat.cnf import CNF, random_ksat
from repro.sat.dpll import dpll_solve

__all__ = ["CNF", "random_ksat", "dpll_solve"]
