"""Command-line interface: inspect, detect, control, and replay traces.

The trace currency is the JSON format of :mod:`repro.trace.io`; predicates
are specified with a tiny spec language so the common safety properties fit
on a shell line:

* ``at-least-one:VAR``       -- ``VAR_1 v ... v VAR_n``
* ``mutex:VAR``              -- ``not VAR_1 v ... v not VAR_n``
* ``happens-before:P,I>Q,J`` -- state ``I`` of process ``P`` before state
  ``J`` of process ``Q``

Commands::

    python -m repro info trace.json
    python -m repro render trace.json --predicate at-least-one:up
    python -m repro detect trace.json --predicate at-least-one:up [--all]
    python -m repro detect trace.json --predicate at-least-one:up \
        --engine parallel --workers 4 --chunk-states 512
    python -m repro control trace.json --predicate mutex:cs -o fixed.json
    python -m repro replay fixed.json -o replayed.json
    python -m repro ingest trace.json -o stream.jsonl   # batch <-> stream
    python -m repro watch stream.jsonl --predicate at-least-one:up --verify
    python -m repro lint trace.json --predicate at-least-one:up --strict
    python -m repro mutex-bench --algorithm antitoken --n 8
    python -m repro serve --listen 127.0.0.1:7777 --workers 4
    python -m repro tail stream.jsonl --predicate at-least-one:up --follow
    python -m repro tail --connect 127.0.0.1:7777 --tenant acme

The ``obs`` family drives the flight recorder (:mod:`repro.obs`)::

    python -m repro obs record --workload philosophers --predicate disjunctive
    python -m repro obs summary
    python -m repro obs export --format chrome out.json   # open in Perfetto
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.offline import control_disjunctive
from repro.debug.properties import at_least_one, happens_before, mutual_exclusion
from repro.detection.conjunctive import possibly_bad
from repro.detection.lattice_walk import violating_cuts
from repro.errors import NoControllerExistsError, ReproError
from repro.mutex.driver import ALGORITHMS, run_mutex_workload
from repro.predicates.disjunctive import DisjunctivePredicate
from repro.replay.engine import replay
from repro.trace.deposet import Deposet
from repro.trace.io import (
    FORMAT,
    STREAM_FORMAT,
    dump_deposet,
    ingest_event_stream,
    load_deposet,
    load_deposet_meta,
    sniff_trace_format,
    write_event_stream,
)
from repro.trace.render import render_deposet

__all__ = ["main", "parse_predicate"]


def parse_predicate(spec: str, n: int) -> DisjunctivePredicate:
    """Parse a predicate spec (see module docstring)."""
    kind, _, arg = spec.partition(":")
    if not arg:
        raise ValueError(f"predicate spec {spec!r} needs an argument after ':'")
    if kind == "at-least-one":
        return at_least_one(n, arg)
    if kind == "mutex":
        return mutual_exclusion(n, arg)
    if kind == "happens-before":
        try:
            left, right = arg.split(">")
            p, i = (int(v) for v in left.split(","))
            q, j = (int(v) for v in right.split(","))
        except ValueError as exc:
            raise ValueError(
                f"happens-before spec must look like 'P,I>Q,J', got {arg!r}"
            ) from exc
        return happens_before((p, i), (q, j), n)
    raise ValueError(
        f"unknown predicate kind {kind!r}; use at-least-one:, mutex:, or "
        f"happens-before:"
    )


def _load(path: str) -> Deposet:
    return load_deposet(path)


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.trace.stats import deposet_stats

    dep = _load(args.trace)
    print(dep.describe())
    print("  " + deposet_stats(dep).describe())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n) if args.predicate else None
    sys.stdout.write(render_deposet(dep, predicate=pred, show_vars=args.var))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n)
    if args.all:
        cuts = violating_cuts(dep, pred)
        print(f"{len(cuts)} violating consistent global state(s)")
        for cut in cuts[: args.limit]:
            print(f"  {cut}")
        if len(cuts) > args.limit:
            print(f"  ... ({len(cuts) - args.limit} more)")
        return 0 if not cuts else 1
    if args.engine is None:
        witness = possibly_bad(dep, pred)
    else:
        from repro.detection import possibly
        from repro.errors import NotRegularError
        from repro.obs import METRICS

        bad = pred.negated() if hasattr(pred, "negated") else ~pred
        kwargs = {}
        if args.engine == "parallel":
            if args.workers is not None:
                kwargs["max_workers"] = args.workers
            if args.chunk_states is not None:
                kwargs["chunk_states"] = args.chunk_states
        try:
            with METRICS.scoped() as scope:
                witness = possibly(dep, bad, engine=args.engine, **kwargs)
        except NotRegularError as exc:
            print(f"engine {args.engine!r} needs a regular predicate: {exc}")
            return 2
        counters = scope.delta()["counters"]
        parts = [f"engine={args.engine}"]
        for key, label in (
            ("detection.slice.states", "slice states"),
            ("detection.lattice_states", "lattice states"),
            ("detection.slice.parallel_chunks", "chunks"),
            ("detection.slice.fallbacks", "fallbacks"),
        ):
            if counters.get(key):
                parts.append(f"{label}={counters[key]}")
        print("[detect] " + " ".join(parts))
    if witness is None:
        print("predicate holds in every consistent global state")
        return 0
    print(f"violation possible at consistent global state {witness}")
    return 1


def _cmd_control(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n)
    try:
        result = control_disjunctive(dep, pred, seed=args.seed)
    except NoControllerExistsError as exc:
        print(f"No Controller Exists: {exc}")
        return 2
    control = result.control
    if args.minimize:
        control = control.minimized(dep)
    print(f"control relation ({len(control)} arrow(s)):")
    for src, dst in control:
        print(f"  {dep.proc_names[src.proc]}:{src.index} C> "
              f"{dep.proc_names[dst.proc]}:{dst.index}")
    if args.output:
        dump_deposet(control.apply(dep), args.output)
        print(f"controlled trace written to {args.output}")
    if args.store:
        from repro.storage import record_control_branch

        name, cid = record_control_branch(
            args.store, dep, control, name=args.branch, kind="control",
            meta={"predicate": args.predicate, "verdict": "synthesized"},
        )
        print(f"candidate recorded: {args.store} branch {name!r} "
              f"commit #{cid}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.trace.startswith("sqlite:"):
        # Replay straight off a trace-store branch (the candidate-K
        # branches `repro control --store` records).
        from repro.storage import split_store_branch
        from repro.store.trace_store import TraceStore

        target, branch = split_store_branch(args.trace)
        st = TraceStore.open(target, branch=branch or "main", create=False)
        try:
            dep = st.snapshot()
        finally:
            st.close()
    else:
        dep = _load(args.trace)

    def record(verdict: str, extra=None) -> None:
        from repro.storage import record_control_branch

        meta = {"verdict": verdict, "seed": args.seed}
        meta.update(extra or {})
        name, cid = record_control_branch(
            args.store, dep, dep.control_arrows, name=args.branch,
            kind="replay", meta=meta,
        )
        print(f"replay recorded: {args.store} branch {name!r} commit #{cid}")

    if not args.force:
        # Admission gate: an interfering control relation (C101) or a
        # Lemma-2 obstruction (C104) makes the controlled re-execution
        # pointless -- refuse before spending it (docs/ANALYSIS.md).
        from repro.analysis import gate_findings, lint_deposet
        from repro.errors import LintGateError

        pred = (parse_predicate(args.predicate, dep.n)
                if getattr(args, "predicate", None) else None)
        gate = gate_findings(
            lint_deposet(dep, predicate=pred, source=args.trace)
        )
        if gate:
            if args.store:
                record("rejected", {
                    "gate": ",".join(sorted({f.rule_id for f in gate})),
                })
            rules = ", ".join(sorted({f.rule_id for f in gate}))
            raise LintGateError(
                f"replay refused: lint found {rules} on {args.trace} "
                f"(run `repro lint` for witnesses, or --force to replay "
                f"anyway)",
                findings=[f.to_dict() for f in gate],
            )

    try:
        result = replay(dep, seed=args.seed, jitter=args.jitter)
    except ReproError:
        # The verdict is as much a result as success: a deadlocked or
        # interfering candidate is recorded on its branch before failing.
        if args.store:
            record("deadlock")
        raise
    print(f"replayed: {result.run.events} events, "
          f"{result.control_messages} control message(s), "
          f"duration {result.run.duration:.3f}")
    if args.output:
        dump_deposet(result.deposet, args.output)
        print(f"recorded trace written to {args.output}")
    if args.store:
        record("replayed", {
            "events": result.run.events,
            "control_messages": result.control_messages,
        })
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Convert between the batch document and the streaming event log,
    and/or ingest into a durable ``--store`` commit chain."""
    if not args.output and not args.store:
        print("error: ingest needs -o OUTPUT and/or --store TARGET",
              file=sys.stderr)
        return 2
    fmt = sniff_trace_format(args.trace)
    if fmt == FORMAT:
        dep, obs = load_deposet_meta(args.trace)
        if args.output:
            write_event_stream(dep, args.output, obs=obs)
            print(
                f"{args.trace} ({FORMAT}) -> {args.output} ({STREAM_FORMAT}): "
                f"{dep.num_states - dep.n} event record(s), "
                f"{len(dep.control_arrows)} control arrow(s)"
            )
        if args.store:
            from repro.storage import open_backend
            from repro.store.trace_store import TraceStore

            from repro.errors import StorageError

            ts = dep.timestamps
            backend = open_backend(
                args.store, n=dep.n,
                start_vars=[dep.state_vars((i, 0)) for i in range(dep.n)],
                proc_names=dep.proc_names,
                start_times=[row[0] for row in ts] if ts is not None else None,
            )
            if backend.num_states != backend.n:
                backend.close()
                raise StorageError(
                    f"{args.store} already holds a trace body; ingest into "
                    f"a fresh database or fork a branch"
                )
            store = TraceStore.from_deposet(dep, backend=backend)
            store.obs = obs
            cid = store.commit(message=f"ingested from {args.trace}")
            print(f"{args.trace} -> {args.store} "
                  f"branch {store.branch_name!r} commit #{cid}, "
                  f"states {store.state_counts}")
            store.close()
    else:
        records = 0
        store = None
        for store, _rec in ingest_event_stream(args.trace, args.store):
            records += 1
        dep = store.snapshot()
        if args.output:
            dump_deposet(dep, args.output, obs=store.obs)
            print(
                f"{args.trace} ({STREAM_FORMAT}) -> {args.output} ({FORMAT}): "
                f"{records - 1} record(s) ingested, states {dep.state_counts}"
            )
        if args.store:
            cid = store.commit(message=f"ingested from {args.trace}")
            print(f"{args.trace} -> {args.store} "
                  f"branch {store.branch_name!r} commit #{cid}, "
                  f"states {store.state_counts}")
            store.close()
    return 0


def _db_path(target: str) -> str:
    """Accept ``sqlite:PATH`` or a bare ``PATH`` for ``repro db``."""
    if target.startswith("sqlite:"):
        return target[len("sqlite:"):]
    return target


def _cmd_db(args: argparse.Namespace) -> int:
    """Inspect and maintain a durable (SQLite commit-chain) trace store."""
    from repro.storage import (
        chain_log,
        create_branch,
        delete_branch,
        gc_store,
        init_db,
        list_branches,
    )

    path = _db_path(args.db)
    if args.db_command == "init":
        init_db(path)
        print(f"initialised empty trace store at {path}")
        return 0
    if args.db_command == "log":
        branches = {b["name"]: b for b in list_branches(path)}
        entries = chain_log(path, args.branch)
        if getattr(args, "format", "text") == "json":
            for e in entries:
                print(json.dumps(e, separators=(",", ":")))
            return 0
        tips = {}
        for b in branches.values():
            tips.setdefault(b["head"], []).append(b["name"])
        for e in entries:
            parent = f" <- #{e['parent']}" if e["parent"] is not None else ""
            marks = "".join(
                f"  [{name}]" for name in tips.get(e["id"], ())
            )
            line = (f"#{e['id']}{parent}  {e['kind']:<7} "
                    f"states={list(e['counts'])} msgs={e['messages']} "
                    f"ctl={e['control']} epoch={e['epoch']} "
                    f"ops={e['ops']}{marks}")
            if e["message"]:
                line += f"  {e['message']!r}"
            if e["meta"]:
                line += "  " + " ".join(
                    f"{k}={v}" for k, v in sorted(e["meta"].items())
                )
            print(line)
        return 0
    if args.db_command == "branch":
        if args.delete:
            delete_branch(path, args.delete)
            print(f"deleted branch {args.delete!r} "
                  f"(run 'repro db gc' to fold its commits)")
            return 0
        if not args.name:
            for b in list_branches(path):
                fork = (f" (from {b['forked_from']!r})"
                        if b["forked_from"] else "")
                print(f"{b['name']:<20} head #{b['head']}{fork}")
            return 0
        head = create_branch(path, args.name, from_branch=args.from_branch,
                             at_commit=args.at)
        print(f"branch {args.name!r} created at commit #{head} "
              f"(from {args.from_branch!r})")
        return 0
    if args.db_command == "gc":
        stats = gc_store(path)
        print(f"gc: removed {stats['commits_removed']} commit(s) and "
              f"{stats['pages_removed']} page(s); "
              f"{stats['commits_kept']} commit(s) kept")
        return 0
    if args.db_command == "lint":
        # Alias for `repro lint --store sqlite:PATH[@branch]`.
        target = f"sqlite:{path}"
        if args.branch:
            target += f"@{args.branch}"
        return _cmd_lint(argparse.Namespace(
            rules=False, trace=None, store=target,
            predicate=args.predicate, format=args.format,
            strict=args.strict, output=args.output,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
        ))
    raise ValueError(f"unknown db command {args.db_command!r}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, Report, lint_raw, load_raw
    from repro.analysis.fingerprint import (
        apply_baseline,
        apply_suppressions,
        load_baseline,
        suppressions_from_obs,
        write_baseline,
    )
    from repro.analysis.reporters import REPORTERS

    if args.rules:
        for r in RULES.values():
            print(f"{r.id}  {str(r.severity):<7}  {r.category:<9}  {r.summary}")
        return 0
    if getattr(args, "store", None):
        from repro.analysis.storelint import lint_store
        from repro.storage import split_store_branch

        target, branch = split_store_branch(args.store)
        report, _branch, _commit = lint_store(
            target, branch=branch, predicate=args.predicate
        )
    else:
        if not args.trace:
            print("error: lint needs a trace, --store, or --rules",
                  file=sys.stderr)
            return 3
        raw, fmt, findings = load_raw(args.trace)
        report = Report(source=args.trace, format=fmt)
        report.passes.append("parse")
        report.extend(findings)
        pred = None
        if args.predicate and raw is not None:
            pred = parse_predicate(args.predicate, raw.n)
        lint_raw(raw, report, predicate=pred)
        suppressed = apply_suppressions(
            report,
            suppressions_from_obs(raw.obs if raw is not None else None),
        )
        if suppressed:
            print(f"lint: {len(suppressed)} finding(s) suppressed inline",
                  file=sys.stderr)
    baseline_path = getattr(args, "baseline", None)
    if getattr(args, "update_baseline", False):
        if not baseline_path:
            print("error: --update-baseline needs --baseline FILE",
                  file=sys.stderr)
            return 3
        count = write_baseline(baseline_path, report.findings)
        print(f"baseline updated: {count} fingerprint(s) -> {baseline_path}")
        return 0
    if baseline_path:
        dropped = apply_baseline(report, load_baseline(baseline_path))
        if dropped:
            print(f"lint: {len(dropped)} baselined finding(s) hidden "
                  f"({baseline_path})", file=sys.stderr)
    rendered = REPORTERS[args.format](report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered + "\n")
        print(f"{report.summary()} -> {args.output}")
    else:
        print(rendered)
    return 0 if report.ok(strict=args.strict) else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    """Stream a trace through the incremental detector, record by record.

    ``--format json`` emits the exact ``repro-verdicts/1`` events that
    ``repro serve`` would push for the same stream (tenant ``local``,
    session = the trace path) -- same schema module, same serializer, so
    the two surfaces cannot drift (pinned by tests/serve).
    """
    from repro.detection.incremental import IncrementalDetector
    from repro.errors import TruncatedStreamError
    from repro.obs import METRICS
    from repro.serve.protocol import (
        VerdictTracker,
        dumps_event,
        event_closed,
        event_error,
        event_finding,
        event_open,
    )

    as_json = getattr(args, "format", "text") == "json"
    tenant, session = "local", str(args.trace)
    tracker = VerdictTracker(tenant, session)
    detector = None
    linter = None
    if getattr(args, "lint", False):
        from repro.analysis.incremental import StreamingLinter

        linter = StreamingLinter(source=str(args.trace))
    first_line = None
    seq = 0

    def emit_findings(found) -> None:
        for f in found:
            if as_json:
                print(dumps_event(event_finding(
                    tenant, session, seq, f.to_dict()
                )))
            else:
                loc = f" at {f.location}" if f.location else ""
                print(f"  [lint] {f.rule_id} [{f.severity}]{loc}: "
                      f"{f.message}")

    with METRICS.scoped() as scope:
        try:
            for lineno, (store, rec) in enumerate(
                ingest_event_stream(args.trace, getattr(args, "store", None)),
                start=1,
            ):
                if detector is None:
                    pred = parse_predicate(args.predicate, store.n)
                    detector = IncrementalDetector(store, pred)
                    if linter is not None:
                        linter.predicate = pred
                    if as_json:
                        print(dumps_event(event_open(
                            tenant, session, store.n, args.predicate
                        )))
                    else:
                        print(f"watching {args.trace}: {store.n} process(es), "
                              f"predicate {args.predicate}")
                    if linter is not None:
                        emit_findings(linter.feed_record(
                            rec, where=f"{args.trace}:{lineno}"
                        ))
                    continue
                found = (linter.feed_record(rec, where=f"{args.trace}:{lineno}")
                         if linter is not None else [])
                if rec.get("t") == "obs":
                    emit_findings(found)
                    continue
                seq += 1
                emit_findings(found)
                witness = detector.poll()
                if as_json:
                    for ev in tracker.observe(seq, witness):
                        print(dumps_event(ev))
                elif witness is not None and first_line is None:
                    first_line = lineno
                    print(f"  record {lineno}: violation possible at "
                          f"consistent global state {witness}")
        except TruncatedStreamError as exc:
            if not as_json:
                raise  # main() prints the typed file:lineno message
            print(dumps_event(event_error(
                tenant, session, seq, "malformed", str(exc),
                where=f"{args.trace}:{exc.lineno}",
            )))
            return 3
        result = detector.finalize(engine=args.engine)
    counters = scope.delta()["counters"]
    if linter is not None:
        from collections import Counter

        from repro.serve.protocol import event_lint_summary

        lint_report = linter.report()
        emitted = Counter(
            json.dumps(f.to_dict(), sort_keys=True)
            for f in linter.findings()
        )
        fresh = []
        for f in lint_report.findings:
            key = json.dumps(f.to_dict(), sort_keys=True)
            if emitted[key] > 0:
                emitted[key] -= 1
            else:
                fresh.append(f)
        emit_findings(fresh)
        if as_json:
            print(dumps_event(event_lint_summary(
                tenant, session, seq,
                findings=len(lint_report.findings),
                errors=lint_report.errors,
                warnings=lint_report.warnings,
                dirty=linter.dirty,
                dirty_reason=linter.dirty_reason,
            )))
        else:
            line = (f"[lint] {len(lint_report.findings)} finding(s), "
                    f"{lint_report.errors} error(s), "
                    f"{lint_report.warnings} warning(s)")
            if linter.dirty:
                line += f" (recomputed at EOF: {linter.dirty_reason})"
            print(line)
    if as_json:
        print(dumps_event(tracker.finalized(seq, result)))
        print(dumps_event(event_closed(tenant, session, seq)))
    else:
        print(f"[watch] polls={counters.get('detection.incremental.polls', 0)} "
              f"suffix_states="
              f"{counters.get('detection.incremental.suffix_states', 0)} "
              f"resets={counters.get('detection.incremental.resets', 0)}")
        if result.witness is None:
            print("predicate holds in every consistent global state")
            if result.pending:
                names = ", ".join(store.proc_names[i] for i in result.pending)
                print(f"  (saved throughout by: {names})")
        else:
            print(f"final: violation possible at {result.witness}"
                  + (" and DEFINITELY occurs" if result.definitely else ""))
    if args.verify:
        from repro.detection.conjunctive import possibly_bad

        batch = possibly_bad(store.snapshot(), detector.predicate)
        if batch != result.witness:
            print(f"VERIFY MISMATCH: batch detector found {batch}, "
                  f"streaming found {result.witness}", file=sys.stderr)
            return 2
        if not as_json:
            print("[verify] batch detector agrees with the streamed verdict")
    if getattr(args, "store", None):
        cid = store.commit(message=f"watched from {args.trace}")
        if not as_json:
            print(f"[store] {args.store} branch {store.branch_name!r} "
                  f"commit #{cid}")
        store.close()
    return 0 if result.witness is None else 1


def _parse_quota(spec: str):
    """``streams,buffered,store`` or ``tenant=streams,buffered,store``."""
    from repro.serve.registry import TenantQuota

    tenant = None
    if "=" in spec:
        tenant, spec = spec.split("=", 1)
    parts = [p.strip() for p in spec.split(",")]
    if len(parts) != 3:
        raise ValueError(
            f"quota spec {spec!r}: expected STREAMS,BUFFERED,STORE_STATES"
        )
    quota = TenantQuota(
        max_streams=int(parts[0]),
        max_buffered_events=int(parts[1]),
        max_store_states=int(parts[2]),
    )
    return tenant, quota


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant online detection server until interrupted."""
    import asyncio
    import signal

    from repro.serve.client import parse_connect
    from repro.serve.registry import TenantQuota
    from repro.serve.server import ReproServer, ServeConfig

    tcp = None
    unix = None
    if args.listen:
        kind, target = parse_connect(args.listen)
        if kind == "tcp":
            tcp = target
        else:
            unix = target
    default_quota = TenantQuota()
    tenant_quotas = {}
    for spec in args.quota or ():
        tenant, quota = _parse_quota(spec)
        if tenant is None:
            default_quota = quota
        else:
            tenant_quotas[tenant] = quota
    store_dir = None
    if args.store:
        from repro.storage import parse_store_target

        scheme, store_dir = parse_store_target(args.store)
        if scheme != "sqlite":
            print("error: serve --store needs sqlite:DIR", file=sys.stderr)
            return 2
    config = ServeConfig(
        tcp=tcp, unix=unix, workers=args.workers, policy=args.policy,
        quota=default_quota, tenant_quotas=tenant_quotas,
        batch=args.batch, engine=args.engine,
        drain_timeout=args.drain_timeout,
        durable_dir=args.durable, fsync=args.fsync, store_dir=store_dir,
        lint=args.lint,
        checkpoint_every=args.checkpoint_every,
        supervise=not args.no_supervise,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        restart_budget=args.restart_budget,
    )

    async def run() -> int:
        server = ReproServer(config)
        await server.start()
        print(f"repro serve: listening on "
              f"{', '.join(server.endpoints) or '(nothing)'} "
              f"[workers={config.workers} policy={config.policy}"
              + (f" durable={config.durable_dir} fsync={config.fsync}"
                 if config.durable_dir else "")
              + (f" store=sqlite:{config.store_dir}"
                 if config.store_dir else "")
              + "]",
              file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("repro serve: draining...", file=sys.stderr)
        stats = await server.drain()
        print(f"repro serve: drained {stats}", file=sys.stderr)
        return 0

    return asyncio.run(run())


def _cmd_tail(args: argparse.Namespace) -> int:
    """Print live verdict events -- from a server or from a stream file."""
    import asyncio

    from repro.serve.protocol import describe_event, dumps_event, is_internal

    def emit(event) -> None:
        if is_internal(event):
            return
        if args.format == "json":
            print(dumps_event(event), flush=True)
        else:
            print(describe_event(event), flush=True)

    if args.connect:
        from repro.serve.client import Backoff, subscribe

        async def run_sub() -> int:
            backoff = Backoff(max_retries=args.retries)
            while True:
                try:
                    count = await subscribe(args.connect, args.tenant, emit)
                except (ConnectionError, OSError) as exc:
                    delay = backoff.next_delay()
                    if delay is None:
                        print(f"error: server at {args.connect} unreachable "
                              f"after {backoff.attempts} attempt(s): {exc}",
                              file=sys.stderr)
                        return 3
                    await asyncio.sleep(delay)
                    continue
                print(f"[tail] server closed after {count} event(s)",
                      file=sys.stderr)
                return 0

        return asyncio.run(run_sub())

    if not args.trace:
        print("error: tail needs a TRACE file or --connect", file=sys.stderr)
        return 2
    if not args.predicate:
        print("error: tailing a file needs --predicate", file=sys.stderr)
        return 2

    import signal

    from repro.serve.server import ReproServer, ServeConfig

    async def run_file() -> int:
        server = ReproServer(ServeConfig(workers=0))
        await server.start()
        # In follow mode SIGINT/SIGTERM means "stop waiting for growth and
        # finalize on what we have", not "die mid-verdict".
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        from repro.serve.client import Backoff

        try:
            final = await server.tail_file(
                args.trace, args.tenant, str(args.trace), args.predicate,
                follow=args.follow, push=emit, stop=stop,
                retry=Backoff(max_retries=args.retries),
            )
        finally:
            await server.drain()
        if final is None:
            return 3
        return 0 if final.get("witness") is None else 1

    return asyncio.run(run_file())


#: default recording path shared by ``obs record`` / ``summary`` / ``export``
DEFAULT_RECORDING = "obs-recording.jsonl"


def _obs_predicate(spec: str, n: int):
    """``disjunctive`` -> the workload's canonical predicate; else a spec."""
    from repro.workloads.philosophers import thinking_predicate

    if spec in ("disjunctive", "thinking"):
        return thinking_predicate(n)
    return parse_predicate(spec, n)


def _cmd_obs_record(args: argparse.Namespace) -> int:
    from repro.obs import METRICS, TRACER, write_jsonl
    from repro.obs.metrics import MetricsRegistry

    before = METRICS.snapshot()
    proc_names = None
    with TRACER.recording(capacity=args.capacity):
        TRACER.reset()
        if args.workload == "philosophers":
            from repro.core.offline import control_disjunctive
            from repro.detection.lattice_walk import violating_cuts
            from repro.replay.engine import replay
            from repro.workloads.philosophers import philosophers_trace

            dep = philosophers_trace(args.n, args.rounds, seed=args.seed)
            proc_names = list(dep.proc_names)
            pred = _obs_predicate(args.predicate, args.n)
            # detection walk (observable expansions) on bounded traces only
            if dep.num_states <= args.detect_limit:
                cuts = violating_cuts(dep, pred)
                print(f"detected {len(cuts)} violating consistent global state(s)")
            try:
                result = control_disjunctive(dep, pred, seed=args.seed)
            except NoControllerExistsError as exc:
                print(f"No Controller Exists: {exc}")
                result = None
            if result is not None:
                rep = replay(dep, result.control, seed=args.seed)
                print(
                    f"controlled replay: {rep.run.events} kernel events, "
                    f"{rep.control_messages} control message(s)"
                )
                if args.trace_out:
                    dump_deposet(
                        rep.deposet, args.trace_out,
                        obs={"metrics": MetricsRegistry.diff(
                            before, METRICS.snapshot())},
                    )
        else:  # mutex
            report = run_mutex_workload(
                args.algorithm, n=args.n, cs_per_proc=args.rounds,
                seed=args.seed,
            )
            proc_names = [f"P{i}" for i in range(args.n)]
            print(
                f"mutex workload: {report.entries} CS entries, "
                f"{report.control_messages} control message(s), "
                f"safe={report.safe}"
            )
        events = TRACER.drain()
        dropped = TRACER.dropped

    meta = {
        "workload": args.workload,
        "predicate": args.predicate,
        "n": args.n,
        "seed": args.seed,
        "proc_names": proc_names,
        "dropped": dropped,
        "metrics": MetricsRegistry.diff(before, METRICS.snapshot()),
    }
    write_jsonl(events, args.output, meta=meta)
    print(f"{len(events)} event(s) recorded to {args.output}"
          + (f" ({dropped} dropped by the ring buffer)" if dropped else ""))
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.obs import read_jsonl
    from repro.obs.metrics import MetricsRegistry

    meta, events = read_jsonl(args.recording)
    print(f"recording: {args.recording}")
    if meta:
        print(f"  workload={meta.get('workload')} n={meta.get('n')} "
              f"seed={meta.get('seed')} dropped={meta.get('dropped', 0)}")
    print(f"  {len(events)} event(s)")
    for name, count in sorted(Counter(ev.name for ev in events).items()):
        print(f"    {name:20s} {count}")
    metrics = (meta or {}).get("metrics")
    if metrics:
        registry = MetricsRegistry()
        print(f"  metrics: {registry.describe(metrics)}")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, write_chrome_trace, write_jsonl

    meta, events = read_jsonl(args.input)
    if args.format == "chrome":
        write_chrome_trace(
            events, args.output,
            proc_names=(meta or {}).get("proc_names"), meta=meta,
        )
    else:
        write_jsonl(events, args.output, meta=meta)
    print(f"{len(events)} event(s) exported to {args.output} "
          f"({args.format} format)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Hardened vs unhardened anti-token mutex under one fault plan."""
    from repro.bench.harness import fault_columns, format_table
    from repro.core.verify import possibly_bad as exact_possibly_bad
    from repro.faults import FaultPlan

    crashes = {}
    horizon = args.entries * (args.think + args.cs)
    for i in range(args.crash):
        proc = 1 + (i % max(1, args.n - 1))
        crashes[proc] = round((0.35 + 0.25 * i) * horizon, 3)
    plan = FaultPlan.lossy(
        args.loss, seed=args.seed, scope="control",
        duplicate=args.duplicate, crashes=crashes or None,
    )
    print(f"fault plan: {plan.describe()}")
    pred = mutual_exclusion(args.n, "cs")

    def run(hardened: bool):
        kwargs = {}
        if hardened:
            kwargs = dict(reliable=True, lease_timeout=args.lease_timeout)
        return run_mutex_workload(
            "antitoken", n=args.n, cs_per_proc=args.entries,
            think_time=args.think, cs_time=args.cs, mean_delay=args.delay,
            seed=args.seed, faults=plan, **kwargs,
        )

    unhardened = run(hardened=False)
    if args.record:
        from repro.obs import TRACER, write_jsonl
        from repro.obs.metrics import MetricsRegistry

        from repro.obs import METRICS
        before = METRICS.snapshot()
        with TRACER.recording(capacity=args.capacity):
            TRACER.reset()
            hardened = run(hardened=True)
            events = TRACER.drain()
        write_jsonl(
            events, args.record,
            meta={
                "workload": "chaos", "n": args.n, "seed": args.seed,
                "plan": plan.describe(),
                "metrics": MetricsRegistry.diff(before, METRICS.snapshot()),
            },
        )
        print(f"{len(events)} obs event(s) recorded to {args.record}")
    else:
        hardened = run(hardened=True)

    rows = []
    for label, rep in (("unhardened", unhardened), ("hardened", hardened)):
        exact = exact_possibly_bad(rep.deposet, pred)
        row = {
            "config": label,
            "outcome": "DEADLOCK" if rep.deadlocked else "completed",
            "entries": rep.entries,
            "msgs/entry": round(rep.messages_per_entry, 3),
            "mean_resp": round(rep.mean_response, 3),
            "crashed": len(rep.crashed),
            "regens": rep.lease_regens,
            "violations": len(rep.violations),
            "exact_wcp": "VIOLATED" if exact is not None else "ok",
        }
        row.update(fault_columns(rep.faults, rep.channel))
        rows.append(row)
    print(format_table(rows, title="chaos: fault-tolerant control plane"))

    hard = rows[1]
    ok = (
        hard["outcome"] == "completed"
        and hard["violations"] == 0
        and hard["exact_wcp"] == "ok"
    )
    if not ok:
        print("SAFETY FAILURE: the hardened controller did not survive the "
              "fault plan", file=sys.stderr)
    return 0 if ok else 1


def _cmd_mutex_bench(args: argparse.Namespace) -> int:
    report = run_mutex_workload(
        args.algorithm, n=args.n, cs_per_proc=args.entries,
        think_time=args.think, cs_time=args.cs, mean_delay=args.delay,
        seed=args.seed,
    )
    for key, value in report.row().items():
        print(f"{key:12s} {value}")
    return 0 if report.safe and not report.deadlocked else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="predicate control for active debugging (IPPS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="summarise a trace")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("render", help="ASCII space-time diagram")
    p.add_argument("trace")
    p.add_argument("--predicate", help="highlight this predicate's false states")
    p.add_argument("--var", help="highlight where this variable is falsy")
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser("detect", help="find violating global states")
    p.add_argument("trace")
    p.add_argument("--predicate", required=True)
    p.add_argument("--all", action="store_true", help="enumerate all (exponential)")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--engine", choices=["auto", "exhaustive", "slice", "parallel"],
                   default=None,
                   help="detection engine (default: conjunctive fast path; "
                        "'slice' is the polynomial slicing engine, 'auto' "
                        "falls back to 'exhaustive' for non-regular predicates)")
    p.add_argument("--workers", type=int, default=None,
                   help="process/thread count for --engine parallel "
                        "(default: cpu count)")
    p.add_argument("--chunk-states", type=int, default=None, dest="chunk_states",
                   help="states per parallel work chunk (default: 256)")
    p.set_defaults(fn=_cmd_detect)

    p = sub.add_parser("control", help="off-line predicate control")
    p.add_argument("trace")
    p.add_argument("--predicate", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--minimize", action="store_true",
                   help="drop arrows implied transitively")
    p.add_argument("-o", "--output", help="write the controlled trace here")
    p.add_argument("--store", metavar="sqlite:PATH",
                   help="record the candidate control relation as a branch "
                        "of this durable trace store")
    p.add_argument("--branch", metavar="NAME",
                   help="branch name for --store (default: candidate-K)")
    p.set_defaults(fn=_cmd_control)

    p = sub.add_parser("replay", help="re-execute a (controlled) trace")
    p.add_argument("trace",
                   help="a trace file, or sqlite:PATH[@branch] to replay a "
                        "recorded candidate branch")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jitter", type=float, default=0.0)
    p.add_argument("-o", "--output")
    p.add_argument("--predicate",
                   help="lint the input against this predicate too before "
                        "replaying (enables the Lemma-2 C104 gate)")
    p.add_argument("--force", action="store_true",
                   help="replay even if lint finds an interfering (C101) or "
                        "obstructed (C104) control relation")
    p.add_argument("--store", metavar="sqlite:PATH",
                   help="record the control relation and its replay verdict "
                        "as a branch of this durable trace store")
    p.add_argument("--branch", metavar="NAME",
                   help="branch name for --store (default: candidate-K)")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser(
        "ingest",
        help="convert between the batch trace document and the "
             "repro-events/1 stream (direction is sniffed from the input), "
             "and/or ingest into a durable --store commit chain",
    )
    p.add_argument("trace", help="input trace (either format)")
    p.add_argument("-o", "--output", help="converted trace")
    p.add_argument("--store", metavar="sqlite:PATH",
                   help="also persist the trace into this durable store "
                        "and report the commit id")
    p.set_defaults(fn=_cmd_ingest)

    p = sub.add_parser(
        "lint",
        help="static analysis: trace axioms, control relation, predicate "
             "class, and message races -- no detector or replay is run",
    )
    p.add_argument("trace", nargs="?",
                   help="trace to lint (either format; sniffed)")
    p.add_argument("--store", metavar="sqlite:PATH[@branch]",
                   help="lint a branch of a durable trace store instead of "
                        "a file (witnesses carry branch@commit locations)")
    p.add_argument("--predicate",
                   help="enable the predicate rules (Lemma 2, A1/A2, "
                        "classifier) for this spec")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format")
    p.add_argument("--strict", action="store_true",
                   help="fail (exit 1) on warnings too, not just errors")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings fingerprinted in this baseline "
                        "file; only new findings are reported")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE to accept every current "
                        "finding, then exit 0")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("-o", "--output", help="write the report here instead "
                                          "of stdout")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "watch",
        help="stream a repro-events/1 trace through the incremental "
             "detector, polling after every record",
    )
    p.add_argument("trace", help="a repro-events/1 stream")
    p.add_argument("--predicate", required=True)
    p.add_argument("--engine", choices=["auto", "exhaustive", "slice", "parallel"],
                   default="auto", help="batch engine for the final "
                                        "'definitely' upgrade")
    p.add_argument("--verify", action="store_true",
                   help="cross-check the streamed verdict against the batch "
                        "conjunctive detector on the final prefix")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="json: emit repro-verdicts/1 events, one per line "
                        "(the same schema `repro serve` pushes)")
    p.add_argument("--store", metavar="sqlite:PATH",
                   help="ingest the watched stream into this durable store "
                        "and report the final commit id")
    p.add_argument("--lint", action="store_true",
                   help="run the streaming linter alongside detection and "
                        "emit findings inline as records arrive")
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant online detection server "
             "(many concurrent repro-events/1 streams, live verdict push)",
    )
    p.add_argument("--listen", required=True,
                   help="'host:port' for TCP or 'unix:PATH' for a unix socket")
    p.add_argument("--workers", type=int, default=2,
                   help="detection worker processes (0 = inline, no IPC)")
    p.add_argument("--policy", choices=["pause", "shed", "disconnect"],
                   default="pause",
                   help="slow-consumer policy once a session's credit "
                        "budget is spent")
    p.add_argument("--quota", action="append", metavar="[TENANT=]S,B,ST",
                   help="quota STREAMS,BUFFERED_EVENTS,STORE_STATES; "
                        "prefix TENANT= to override one tenant "
                        "(repeatable; 0 store states = unlimited)")
    p.add_argument("--batch", type=int, default=64,
                   help="stream lines per worker batch")
    p.add_argument("--engine", choices=["auto", "exhaustive", "slice",
                                        "parallel"],
                   default="auto", help="batch engine for final 'definitely'")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for final verdicts at shutdown")
    p.add_argument("--durable", metavar="DIR",
                   help="directory for per-session WALs + checkpoints; "
                        "enables crash-safe sessions and client resume "
                        "(omit for in-memory serving)")
    p.add_argument("--store", metavar="sqlite:DIR",
                   help="keep each session's trace in a per-session SQLite "
                        "commit chain under DIR; durable checkpoints then "
                        "record a commit id instead of re-freezing the "
                        "full store as JSON")
    p.add_argument("--lint", action="store_true",
                   help="attach a streaming linter to every session and "
                        "push repro-findings/1 events with the verdicts")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="batch",
                   help="WAL fsync policy: every record / on checkpoints "
                        "and flushes / leave it to the OS")
    p.add_argument("--checkpoint-every", type=int, default=256,
                   metavar="LINES",
                   help="checkpoint a durable session every N logged lines")
    p.add_argument("--no-supervise", action="store_true",
                   help="do not restart dead/hung worker shards")
    p.add_argument("--heartbeat-interval", type=float, default=0.5,
                   metavar="SECS", help="supervisor heartbeat period")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   metavar="SECS",
                   help="a live worker silent this long is declared hung")
    p.add_argument("--restart-budget", type=int, default=3,
                   help="worker restarts per shard per minute before its "
                        "sessions move to a surviving shard")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "db",
        help="inspect/maintain a durable trace store "
             "(SQLite commit chain: log, branches, gc)",
    )
    db_sub = p.add_subparsers(dest="db_command", required=True)
    q = db_sub.add_parser("init", help="create an empty trace store")
    q.add_argument("db", help="store path (PATH or sqlite:PATH)")
    q.set_defaults(fn=_cmd_db)
    q = db_sub.add_parser("log", help="render a branch's commit chain")
    q.add_argument("db", help="store path (PATH or sqlite:PATH)")
    q.add_argument("--branch", default="main")
    q.add_argument("--format", choices=["text", "json"], default="text",
                   help="json: one chain entry per line, machine-readable")
    q.set_defaults(fn=_cmd_db)
    q = db_sub.add_parser(
        "branch", help="list branches, or fork one at a commit"
    )
    q.add_argument("db", help="store path (PATH or sqlite:PATH)")
    q.add_argument("name", nargs="?", help="new branch name (omit to list)")
    q.add_argument("--from", dest="from_branch", default="main",
                   metavar="BRANCH", help="branch to fork from")
    q.add_argument("--at", type=int, metavar="COMMIT",
                   help="fork at this commit instead of the branch head")
    q.add_argument("--delete", metavar="NAME",
                   help="drop a branch pointer instead (gc folds its "
                        "commits)")
    q.set_defaults(fn=_cmd_db)
    q = db_sub.add_parser(
        "gc", help="fold commits unreachable from any branch"
    )
    q.add_argument("db", help="store path (PATH or sqlite:PATH)")
    q.set_defaults(fn=_cmd_db)
    q = db_sub.add_parser(
        "lint", help="lint a branch (alias for repro lint --store)"
    )
    q.add_argument("db", help="store path (PATH or sqlite:PATH)")
    q.add_argument("--branch", default=None,
                   help="branch to lint (default: main)")
    q.add_argument("--predicate",
                   help="enable the predicate rules for this spec")
    q.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format")
    q.add_argument("--strict", action="store_true",
                   help="fail (exit 1) on warnings too")
    q.add_argument("--baseline", metavar="FILE",
                   help="suppress findings fingerprinted in this baseline")
    q.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE from current findings")
    q.add_argument("-o", "--output",
                   help="write the report here instead of stdout")
    q.set_defaults(fn=_cmd_db)

    p = sub.add_parser(
        "tail",
        help="follow live verdicts: subscribe to a server's tenant "
             "(--connect) or tail a repro-events/1 file on disk",
    )
    p.add_argument("trace", nargs="?",
                   help="a repro-events/1 stream file to tail locally")
    p.add_argument("--connect",
                   help="subscribe to a running server instead "
                        "('host:port' or 'unix:PATH')")
    p.add_argument("--tenant", default="default")
    p.add_argument("--predicate",
                   help="predicate spec (required when tailing a file)")
    p.add_argument("--follow", action="store_true",
                   help="keep waiting for the file to grow (like tail -f); "
                        "a truncated final line is retried, not fatal")
    p.add_argument("--retries", type=int, default=10, metavar="N",
                   help="transient-error budget: reconnects (--connect) or "
                        "waits for a missing/vanished file (--follow) back "
                        "off exponentially up to N consecutive attempts, "
                        "then exit 3")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(fn=_cmd_tail)

    p = sub.add_parser("obs", help="flight recorder: record/summarise/export")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser("record", help="run an instrumented workload")
    p.add_argument("--workload", choices=("philosophers", "mutex"),
                   default="philosophers")
    p.add_argument("--predicate", default="disjunctive",
                   help="'disjunctive' (workload default) or a spec like "
                        "at-least-one:thinking")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--rounds", type=int, default=2,
                   help="meals per philosopher / CS entries per process")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                   default="antitoken", help="mutex workload only")
    p.add_argument("--capacity", type=int, default=100_000,
                   help="ring-buffer capacity (events)")
    p.add_argument("--detect-limit", type=int, default=80,
                   help="skip the exhaustive lattice walk above this many "
                        "states (it is exponential)")
    p.add_argument("--trace-out",
                   help="also dump the controlled deposet (with obs block)")
    p.add_argument("-o", "--output", default=DEFAULT_RECORDING)
    p.set_defaults(fn=_cmd_obs_record)

    p = obs_sub.add_parser("summary", help="summarise a recording")
    p.add_argument("recording", nargs="?", default=DEFAULT_RECORDING)
    p.set_defaults(fn=_cmd_obs_summary)

    p = obs_sub.add_parser("export", help="convert a recording for viewers")
    p.add_argument("output", help="output path (e.g. out.json)")
    p.add_argument("--format", choices=("chrome", "jsonl"), default="chrome")
    p.add_argument("--input", default=DEFAULT_RECORDING)
    p.set_defaults(fn=_cmd_obs_export)

    p = sub.add_parser(
        "chaos",
        help="fault-inject the anti-token mutex, hardened vs unhardened",
    )
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--entries", type=int, default=6, help="CS entries per process")
    p.add_argument("--loss", type=float, default=0.2,
                   help="control-message drop rate")
    p.add_argument("--duplicate", type=float, default=0.0,
                   help="control-message duplication rate")
    p.add_argument("--crash", type=int, default=1,
                   help="number of processes to fail-stop mid-run")
    p.add_argument("--think", type=float, default=4.0)
    p.add_argument("--cs", type=float, default=1.0)
    p.add_argument("--delay", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--lease-timeout", type=float, default=20.0)
    p.add_argument("--capacity", type=int, default=100_000,
                   help="obs ring-buffer capacity (with --record)")
    p.add_argument("--record", help="write the hardened run's obs JSONL here")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("mutex-bench", help="run one (n-1)-mutex workload")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="antitoken")
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--entries", type=int, default=20)
    p.add_argument("--think", type=float, default=4.0)
    p.add_argument("--cs", type=float, default=1.0)
    p.add_argument("--delay", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_mutex_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
