"""Command-line interface: inspect, detect, control, and replay traces.

The trace currency is the JSON format of :mod:`repro.trace.io`; predicates
are specified with a tiny spec language so the common safety properties fit
on a shell line:

* ``at-least-one:VAR``       -- ``VAR_1 v ... v VAR_n``
* ``mutex:VAR``              -- ``not VAR_1 v ... v not VAR_n``
* ``happens-before:P,I>Q,J`` -- state ``I`` of process ``P`` before state
  ``J`` of process ``Q``

Commands::

    python -m repro info trace.json
    python -m repro render trace.json --predicate at-least-one:up
    python -m repro detect trace.json --predicate at-least-one:up [--all]
    python -m repro control trace.json --predicate mutex:cs -o fixed.json
    python -m repro replay fixed.json -o replayed.json
    python -m repro mutex-bench --algorithm antitoken --n 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.offline import control_disjunctive
from repro.debug.properties import at_least_one, happens_before, mutual_exclusion
from repro.detection.conjunctive import possibly_bad
from repro.detection.lattice_walk import violating_cuts
from repro.errors import NoControllerExistsError, ReproError
from repro.mutex.driver import ALGORITHMS, run_mutex_workload
from repro.predicates.disjunctive import DisjunctivePredicate
from repro.replay.engine import replay
from repro.trace.deposet import Deposet
from repro.trace.io import dump_deposet, load_deposet
from repro.trace.render import render_deposet

__all__ = ["main", "parse_predicate"]


def parse_predicate(spec: str, n: int) -> DisjunctivePredicate:
    """Parse a predicate spec (see module docstring)."""
    kind, _, arg = spec.partition(":")
    if not arg:
        raise ValueError(f"predicate spec {spec!r} needs an argument after ':'")
    if kind == "at-least-one":
        return at_least_one(n, arg)
    if kind == "mutex":
        return mutual_exclusion(n, arg)
    if kind == "happens-before":
        try:
            left, right = arg.split(">")
            p, i = (int(v) for v in left.split(","))
            q, j = (int(v) for v in right.split(","))
        except ValueError as exc:
            raise ValueError(
                f"happens-before spec must look like 'P,I>Q,J', got {arg!r}"
            ) from exc
        return happens_before((p, i), (q, j), n)
    raise ValueError(
        f"unknown predicate kind {kind!r}; use at-least-one:, mutex:, or "
        f"happens-before:"
    )


def _load(path: str) -> Deposet:
    return load_deposet(path)


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.trace.stats import deposet_stats

    dep = _load(args.trace)
    print(dep.describe())
    print("  " + deposet_stats(dep).describe())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n) if args.predicate else None
    sys.stdout.write(render_deposet(dep, predicate=pred, show_vars=args.var))
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n)
    if args.all:
        cuts = violating_cuts(dep, pred)
        print(f"{len(cuts)} violating consistent global state(s)")
        for cut in cuts[: args.limit]:
            print(f"  {cut}")
        if len(cuts) > args.limit:
            print(f"  ... ({len(cuts) - args.limit} more)")
        return 0 if not cuts else 1
    witness = possibly_bad(dep, pred)
    if witness is None:
        print("predicate holds in every consistent global state")
        return 0
    print(f"violation possible at consistent global state {witness}")
    return 1


def _cmd_control(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    pred = parse_predicate(args.predicate, dep.n)
    try:
        result = control_disjunctive(dep, pred, seed=args.seed)
    except NoControllerExistsError as exc:
        print(f"No Controller Exists: {exc}")
        return 2
    control = result.control
    if args.minimize:
        control = control.minimized(dep)
    print(f"control relation ({len(control)} arrow(s)):")
    for src, dst in control:
        print(f"  {dep.proc_names[src.proc]}:{src.index} C> "
              f"{dep.proc_names[dst.proc]}:{dst.index}")
    if args.output:
        dump_deposet(control.apply(dep), args.output)
        print(f"controlled trace written to {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    dep = _load(args.trace)
    result = replay(dep, seed=args.seed, jitter=args.jitter)
    print(f"replayed: {result.run.events} events, "
          f"{result.control_messages} control message(s), "
          f"duration {result.run.duration:.3f}")
    if args.output:
        dump_deposet(result.deposet, args.output)
        print(f"recorded trace written to {args.output}")
    return 0


def _cmd_mutex_bench(args: argparse.Namespace) -> int:
    report = run_mutex_workload(
        args.algorithm, n=args.n, cs_per_proc=args.entries,
        think_time=args.think, cs_time=args.cs, mean_delay=args.delay,
        seed=args.seed,
    )
    for key, value in report.row().items():
        print(f"{key:12s} {value}")
    return 0 if report.safe and not report.deadlocked else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="predicate control for active debugging (IPPS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="summarise a trace")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("render", help="ASCII space-time diagram")
    p.add_argument("trace")
    p.add_argument("--predicate", help="highlight this predicate's false states")
    p.add_argument("--var", help="highlight where this variable is falsy")
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser("detect", help="find violating global states")
    p.add_argument("trace")
    p.add_argument("--predicate", required=True)
    p.add_argument("--all", action="store_true", help="enumerate all (exponential)")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(fn=_cmd_detect)

    p = sub.add_parser("control", help="off-line predicate control")
    p.add_argument("trace")
    p.add_argument("--predicate", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--minimize", action="store_true",
                   help="drop arrows implied transitively")
    p.add_argument("-o", "--output", help="write the controlled trace here")
    p.set_defaults(fn=_cmd_control)

    p = sub.add_parser("replay", help="re-execute a (controlled) trace")
    p.add_argument("trace")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jitter", type=float, default=0.0)
    p.add_argument("-o", "--output")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("mutex-bench", help="run one (n-1)-mutex workload")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="antitoken")
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--entries", type=int, default=20)
    p.add_argument("--think", type=float, default=4.0)
    p.add_argument("--cs", type=float, default=1.0)
    p.add_argument("--delay", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_mutex_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
