"""``(n-1)``-mutual exclusion: the paper's application of on-line control.

Section 6 observes that with ``l_i = not cs_i`` the scapegoat strategy
*is* an ``(n-1)``-mutual-exclusion algorithm -- at all times at least one
process is outside its critical section -- costing **2 control messages per
n CS entries** with response time in ``[2T, 2T + E_max]``, against k-mutex
algorithms that pay per *entry*.  This package provides:

* :func:`run_mutex_workload` -- a common driver: each process loops
  think -> enter CS -> compute -> exit CS on the simulator, under one of
  the algorithms below, collecting messages/entry and response times;
* ``antitoken`` / ``antitoken-broadcast`` -- on-line predicate control
  (:class:`~repro.core.online.OnlineDisjunctiveControl`);
* ``central`` -- a coordinator granting up to ``k`` simultaneous entries
  (3 messages per CS, baseline);
* ``raymond`` -- Raymond-style permission-based k-mutex (broadcast request,
  enter after ``n-k`` replies; ``2(n-1)`` messages per CS, baseline).
"""

from repro.mutex.metrics import MutexReport
from repro.mutex.driver import run_mutex_workload, ALGORITHMS
from repro.mutex.central import CentralKMutex
from repro.mutex.raymond import RaymondKMutex

__all__ = [
    "MutexReport",
    "run_mutex_workload",
    "ALGORITHMS",
    "CentralKMutex",
    "RaymondKMutex",
]
