"""Raymond-style permission-based k-mutual exclusion (baseline).

Ricart-Agrawala generalised to ``k`` simultaneous entries (Raymond 1989):
a requester timestamps its request (Lamport clock), broadcasts it to the
other ``n-1`` processes, and enters once ``n-k`` replies have arrived.  A
process defers its reply while it is inside the CS, or while it has an
outstanding request with higher priority (smaller ``(timestamp, id)``);
deferred replies are sent on exit.

Safety sketch: were ``k+1`` processes inside simultaneously, the one whose
request is latest would have been deferred by the other ``k``, leaving it
at most ``n-1-k`` replies -- below its ``n-k`` threshold.

Costs ``2(n-1)`` messages per entry regardless of contention, which is the
contrast experiment E8 draws against the anti-token strategy at
``k = n-1``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.mutex.base import CSGuardBase

__all__ = ["RaymondKMutex"]


class RaymondKMutex(CSGuardBase):
    """Permission-based k-mutex as a transition guard."""

    def __init__(self, n: int, k: int):
        super().__init__()
        if not (1 <= k <= n):
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.n = n
        self.k = k
        self.clock = [0] * n
        self.requesting: List[Optional[Tuple[int, int]]] = [None] * n  # (ts, id)
        self.in_cs = [False] * n
        self.replies_needed = [0] * n
        # deferred replies: (requester, request ts) pairs
        self.deferred: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self._grants: List[Optional[Callable[[], None]]] = [None] * n

    # -- protocol messages -------------------------------------------------------

    def _send(self, src: int, dst: int, payload, tag: str) -> None:
        self.system.send_control(src, dst, payload, self._on_message, tag=tag)

    def _on_message(self, delivery) -> None:
        kind, *args = delivery.payload
        if kind == "request":
            self._on_request(delivery.dst, *args)
        elif kind == "reply":
            self._on_reply(delivery.dst, *args)
        else:  # pragma: no cover - internal protocol
            raise SimulationError(f"unknown mutex message {delivery.payload!r}")

    def _on_request(self, proc: int, ts: int, requester: int) -> None:
        self.clock[proc] = max(self.clock[proc], ts) + 1
        mine = self.requesting[proc]
        defer = self.in_cs[proc] or (mine is not None and mine < (ts, requester))
        if defer:
            self.deferred[proc].append((requester, ts))
        else:
            self._send(proc, requester, ("reply", ts), "reply")

    def _on_reply(self, proc: int, ts: int) -> None:
        # Replies are matched to the round they answer: with k > 1 a process
        # enters after n-k replies, and the remaining replies of that round
        # straggle in later -- they must not count towards the next round.
        mine = self.requesting[proc]
        if mine is None or mine[0] != ts:
            return
        self.replies_needed[proc] -= 1
        if self.replies_needed[proc] == 0 and self._grants[proc] is not None:
            grant = self._grants[proc]
            self._grants[proc] = None
            self.requesting[proc] = None
            self.in_cs[proc] = True
            grant()

    # -- guard protocol --------------------------------------------------------------

    def on_enter(self, proc: int, grant: Callable[[], None]) -> None:
        self.clock[proc] += 1
        ts = self.clock[proc]
        self.requesting[proc] = (ts, proc)
        self.replies_needed[proc] = self.n - self.k
        if self.replies_needed[proc] == 0:  # k == n: trivially admitted
            self.requesting[proc] = None
            self.in_cs[proc] = True
            grant()
            return
        self._grants[proc] = grant
        for j in range(self.n):
            if j != proc:
                self._send(proc, j, ("request", ts, proc), "request")

    def on_exit(self, proc: int, release: Callable[[], None]) -> None:
        self.in_cs[proc] = False
        release()
        deferred, self.deferred[proc] = self.deferred[proc], []
        for j, ts in deferred:
            self._send(proc, j, ("reply", ts), "reply")
