"""Centralized-coordinator k-mutual exclusion (baseline).

One coordinator (co-located with process ``home``) admits up to ``k``
processes at a time, queuing further requests FIFO.  Costs 3 messages per
remote critical-section entry (request, grant, release; the co-located
process pays none), response time ``2T`` uncontested.  The classic
simplest correct k-mutex -- the yardstick the anti-token strategy's
2-messages-per-``n``-entries is measured against in experiment E8.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from repro.mutex.base import CSGuardBase

__all__ = ["CentralKMutex"]


class CentralKMutex(CSGuardBase):
    """Coordinator-based k-mutex as a transition guard."""

    def __init__(self, k: int, home: int = 0):
        super().__init__()
        if k < 1:
            raise ValueError(f"need k >= 1, got {k}")
        self.k = k
        self.home = home
        self._active = 0
        self._queue: Deque[Tuple[int, Callable[[], None]]] = deque()

    # -- coordinator logic (runs at `home`) -----------------------------------

    def _coord_request(self, proc: int, grant_cb: Callable[[], None]) -> None:
        if self._active < self.k:
            self._active += 1
            self._reply_grant(proc, grant_cb)
        else:
            self._queue.append((proc, grant_cb))

    def _coord_release(self) -> None:
        if self._queue:
            proc, grant_cb = self._queue.popleft()
            self._reply_grant(proc, grant_cb)
        else:
            self._active -= 1

    def _reply_grant(self, proc: int, grant_cb: Callable[[], None]) -> None:
        if proc == self.home:
            grant_cb()
        else:
            self.system.send_control(
                self.home, proc, grant_cb, lambda d: d.payload(), tag="grant"
            )

    # -- guard protocol ------------------------------------------------------------

    def on_enter(self, proc: int, grant: Callable[[], None]) -> None:
        if proc == self.home:
            self._coord_request(proc, grant)
        else:
            self.system.send_control(
                proc,
                self.home,
                (proc, grant),
                lambda d: self._coord_request(*d.payload),
                tag="request",
            )

    def on_exit(self, proc: int, release: Callable[[], None]) -> None:
        release()  # leave the CS immediately...
        if proc == self.home:
            self._coord_release()
        else:
            self.system.send_control(
                proc,
                self.home,
                None,
                lambda d: self._coord_release(),
                tag="release",
            )
