"""Metrics collected from mutual-exclusion workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["MutexReport"]


@dataclass
class MutexReport:
    """Everything the E7/E8/E11 experiments report about one run.

    ``response_times`` holds one entry per critical-section entry: the
    delay between the process *asking* to enter and actually entering
    (0 for uncontested entries under the anti-token strategy).
    """

    algorithm: str
    n: int
    k: int
    entries: int
    control_messages: int
    response_times: List[float] = field(default_factory=list)
    duration: float = 0.0
    max_concurrent_cs: int = 0
    violations: List[str] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def messages_per_entry(self) -> float:
        return self.control_messages / self.entries if self.entries else 0.0

    @property
    def mean_response(self) -> float:
        return float(np.mean(self.response_times)) if self.response_times else 0.0

    @property
    def max_response(self) -> float:
        return float(np.max(self.response_times)) if self.response_times else 0.0

    @property
    def safe(self) -> bool:
        """No more than ``k`` processes were ever in the CS, and no
        invariant violations were recorded."""
        return self.max_concurrent_cs <= self.k and not self.violations

    def row(self) -> Dict[str, object]:
        """A flat dict for the bench harness tables."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "k": self.k,
            "entries": self.entries,
            "msgs/entry": round(self.messages_per_entry, 3),
            "mean_resp": round(self.mean_response, 3),
            "max_resp": round(self.max_response, 3),
            "max_in_cs": self.max_concurrent_cs,
            "safe": self.safe,
        }
