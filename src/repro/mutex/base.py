"""Shared machinery for critical-section guards.

A mutex algorithm is a :class:`~repro.sim.system.TransitionGuard` that
intercepts the ``cs: False -> True`` (enter) and ``cs: True -> False``
(exit) transitions of the common workload program.  The base class does the
bookkeeping every algorithm needs -- response times, entry counts, and the
safety tracker (maximum number of processes simultaneously inside the CS,
measured at every commit) -- so subclasses only implement ``on_enter`` /
``on_exit``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.sim.system import TransitionGuard

__all__ = ["CSGuardBase", "CS_VAR"]

CS_VAR = "cs"


class CSGuardBase(TransitionGuard):
    """Metrics + dispatch for critical-section algorithms."""

    def __init__(self) -> None:
        self.response_times: List[float] = []
        self.entries = 0
        self.max_concurrent = 0
        self.violations: List[str] = []

    # -- subclass protocol ---------------------------------------------------

    def on_enter(self, proc: int, grant: Callable[[], None]) -> None:
        """Called when ``proc`` asks to enter; call ``grant()`` to admit."""
        grant()

    def on_exit(self, proc: int, release: Callable[[], None]) -> None:
        """Called when ``proc`` leaves; call ``release()`` to commit."""
        release()

    def after_commit(self, proc: int) -> None:
        """Hook after any commit (default: nothing)."""

    # -- guard plumbing ----------------------------------------------------------

    def request_transition(
        self,
        proc: int,
        updates: Dict[str, Any],
        next_vars: Dict[str, Any],
        commit: Callable[[], None],
    ) -> None:
        cur = self.system.recorder.current_vars(proc)
        entering = bool(next_vars.get(CS_VAR)) and not cur.get(CS_VAR)
        exiting = not next_vars.get(CS_VAR) and bool(cur.get(CS_VAR))

        def finish() -> None:
            commit()
            self._track_concurrency()
            self.after_commit(proc)

        if entering:
            self.entries += 1
            asked_at = self.system.queue.now

            def grant() -> None:
                self.response_times.append(self.system.queue.now - asked_at)
                finish()

            self.on_enter(proc, grant)
        elif exiting:
            self.on_exit(proc, finish)
        else:
            finish()

    def _track_concurrency(self) -> None:
        inside = sum(
            1
            for i in range(self.system.n)
            if self.system.recorder.current_vars(i).get(CS_VAR)
        )
        if inside > self.max_concurrent:
            self.max_concurrent = inside
