"""The paper's ``(n-1)``-mutex: on-line predicate control with
``l_i = not cs_i`` (the anti-token / scapegoat strategy)."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.online import OnlineDisjunctiveControl
from repro.mutex.base import CS_VAR

__all__ = ["AntiTokenMutex"]


class AntiTokenMutex(OnlineDisjunctiveControl):
    """Scapegoat controllers specialised to critical sections, with the
    metrics the mutex experiments need.

    The scapegoat is the one process that must stay *out* of the CS until
    another takes the liability over; everyone else enters with zero
    messages and zero delay.
    """

    def __init__(
        self,
        n: int,
        strategy: str = "unicast",
        peer_selection: str = "ring",
        seed: int = 0,
        **fault_tolerance: Any,
    ):
        conditions = [
            (lambda vars, _i=i: not vars.get(CS_VAR, False)) for i in range(n)
        ]
        super().__init__(
            conditions, strategy=strategy, peer_selection=peer_selection,
            seed=seed, **fault_tolerance,
        )
        self.k = n - 1
        self.entries = 0
        self.response_times: List[float] = []
        self.max_concurrent = 0

    def request_transition(
        self,
        proc: int,
        updates: Dict[str, Any],
        next_vars: Dict[str, Any],
        commit: Callable[[], None],
    ) -> None:
        cur = self.system.recorder.current_vars(proc)
        entering = bool(next_vars.get(CS_VAR)) and not cur.get(CS_VAR)
        if entering:
            self.entries += 1
            asked_at = self.system.queue.now

            def timed_commit() -> None:
                self.response_times.append(self.system.queue.now - asked_at)
                commit()
                self._track_concurrency()

            super().request_transition(proc, updates, next_vars, timed_commit)
        else:
            def tracked_commit() -> None:
                commit()
                self._track_concurrency()

            super().request_transition(proc, updates, next_vars, tracked_commit)

    def _track_concurrency(self) -> None:
        inside = sum(
            1
            for i in range(self.system.n)
            if self.system.recorder.current_vars(i).get(CS_VAR)
        )
        if inside > self.max_concurrent:
            self.max_concurrent = inside
