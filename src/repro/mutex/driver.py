"""The common mutual-exclusion workload driver.

Each process loops: think (uniform around ``think_time``), enter the CS,
compute inside it (uniform, bounded by ``cs_time`` = the paper's
``E_max``), exit.  The chosen algorithm guards the enter/exit transitions;
the driver reports messages per entry, response times, and the safety
check (never more than ``k`` inside).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.faults.reliable import RetryPolicy
from repro.mutex.antitoken import AntiTokenMutex
from repro.mutex.base import CSGuardBase
from repro.mutex.central import CentralKMutex
from repro.mutex.metrics import MutexReport
from repro.mutex.raymond import RaymondKMutex
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.system import ProcessContext, System

__all__ = ["run_mutex_workload", "ALGORITHMS", "make_cs_program"]

_WORKLOADS = METRICS.counter("mutex.workloads")
_ENTRIES = METRICS.counter("mutex.cs_entries")
_CTL_MSGS = METRICS.counter("mutex.control_messages")


def make_cs_program(cs_count: int, think_time: float, cs_time: float):
    """The shared think/enter/compute/exit loop."""

    def program(ctx: ProcessContext):
        for _ in range(cs_count):
            yield ctx.compute(float(ctx.rng.uniform(0.0, 2.0 * think_time)))
            yield ctx.set(cs=True)
            yield ctx.compute(float(ctx.rng.uniform(0.5 * cs_time, cs_time)))
            yield ctx.set(cs=False)

    return program


def _make_guard(name: str, n: int, k: int, seed: int, ft: Dict[str, object]):
    if name == "antitoken":
        return AntiTokenMutex(
            n, strategy="unicast", peer_selection="ring", seed=seed, **ft
        )
    if name == "antitoken-random":
        return AntiTokenMutex(
            n, strategy="unicast", peer_selection="random", seed=seed, **ft
        )
    if name == "antitoken-broadcast":
        return AntiTokenMutex(n, strategy="broadcast", seed=seed, **ft)
    if ft.get("reliable") or ft.get("lease_timeout") is not None:
        raise ValueError(
            f"fault-tolerant control (reliable/lease) only applies to the "
            f"anti-token family, not {name!r}"
        )
    if name == "central":
        return CentralKMutex(k)
    if name == "raymond":
        return RaymondKMutex(n, k)
    raise ValueError(f"unknown mutex algorithm {name!r}; choose from {sorted(ALGORITHMS)}")


#: algorithm name -> whether it implements general k (the anti-token family
#: is inherently k = n-1)
ALGORITHMS: Dict[str, str] = {
    "antitoken": "paper: scapegoat / anti-token, unicast ring",
    "antitoken-random": "paper: scapegoat, unicast random peer",
    "antitoken-broadcast": "paper: scapegoat, broadcast requests",
    "central": "baseline: central coordinator",
    "raymond": "baseline: permission-based (Raymond)",
}


def run_mutex_workload(
    algorithm: str,
    n: int,
    cs_per_proc: int = 10,
    think_time: float = 4.0,
    cs_time: float = 1.0,
    mean_delay: float = 1.0,
    jitter: float = 0.0,
    k: int = -1,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    reliable: bool = False,
    retry: Optional[RetryPolicy] = None,
    lease_timeout: Optional[float] = None,
    lease_interval: Optional[float] = None,
    handoff_timeout: Optional[float] = None,
) -> MutexReport:
    """Run one workload under one algorithm and collect the E7/E8 metrics.

    ``k`` defaults to ``n - 1`` (the paper's case); the anti-token family
    only supports that value.

    ``faults`` injects a :class:`~repro.faults.plan.FaultPlan` into the
    run; ``reliable``/``retry``/``lease_timeout``/``lease_interval``/
    ``handoff_timeout`` harden the anti-token control plane against it
    (experiment E13).
    """
    if k < 0:
        k = n - 1
    if algorithm.startswith("antitoken") and k != n - 1:
        raise ValueError("the anti-token strategy is inherently k = n-1")
    ft: Dict[str, object] = {}
    if reliable:
        ft["reliable"] = True
        if retry is not None:
            ft["retry"] = retry
        if handoff_timeout is not None:
            ft["handoff_timeout"] = handoff_timeout
    if lease_timeout is not None:
        ft["lease_timeout"] = lease_timeout
        if lease_interval is not None:
            ft["lease_interval"] = lease_interval
    guard = _make_guard(algorithm, n, k, seed, ft)
    system = System(
        [make_cs_program(cs_per_proc, think_time, cs_time) for _ in range(n)],
        start_vars=[{"cs": False} for _ in range(n)],
        mean_delay=mean_delay,
        jitter=jitter,
        guard=guard,
        seed=seed,
        faults=faults,
    )
    with TRACER.span("mutex.workload", algorithm=algorithm, n=n, k=k) as span:
        result = system.run()
        span.add(
            control_messages=result.control_messages,
            sim_duration=result.duration,
            deadlocked=result.deadlocked,
        )
    _WORKLOADS.inc()
    _CTL_MSGS.inc(result.control_messages)
    violations = list(getattr(guard, "violations", []))
    if isinstance(guard, CSGuardBase) or isinstance(guard, AntiTokenMutex):
        entries = guard.entries
        response_times = guard.response_times
        max_concurrent = guard.max_concurrent
    else:  # pragma: no cover - all algorithms covered above
        entries, response_times, max_concurrent = 0, [], 0
    _ENTRIES.inc(entries)
    channel = getattr(guard, "channel", None)
    return MutexReport(
        algorithm=algorithm,
        n=n,
        k=k,
        entries=entries,
        control_messages=result.control_messages,
        response_times=response_times,
        duration=result.duration,
        max_concurrent_cs=max_concurrent,
        violations=violations,
        deadlocked=result.deadlocked,
        crashed=dict(result.crashed),
        faults=dict(result.faults),
        channel=channel.summary() if channel is not None else {},
        lease_regens=getattr(guard, "lease_regens", 0),
        deposet=result.deposet,
    )
