"""Predicate control for active debugging of distributed programs.

A full reproduction of Tarafdar & Garg (IPPS 1998): the deposet trace
model, predicate detection, off-line and on-line predicate control for
disjunctive predicates, the NP-hardness machinery for general predicates,
controlled replay, and the ``(n-1)``-mutual-exclusion application --
everything running on a deterministic discrete-event simulator.

Quickstart::

    from repro import (
        ComputationBuilder, at_least_one, control_disjunctive, replay,
        possibly_bad,
    )

    b = ComputationBuilder(2, start_vars=[{"up": True}, {"up": True}])
    b.local(0, up=False); b.local(0, up=True)   # P0 briefly down
    b.local(1, up=False); b.local(1, up=True)   # P1 briefly down
    trace = b.build()

    safety = at_least_one(2, "up")
    print(possibly_bad(trace, safety))          # the bug's witness cut
    control = control_disjunctive(trace, safety).control
    fixed = replay(trace, control).deposet      # re-run, bug impossible
    assert possibly_bad(fixed, safety) is None

See ``examples/`` for the paper's Figure-4 walkthrough, the mutual
exclusion evaluation, and the NP-hardness demonstration.
"""

from repro.causality import CausalOrder, StateRef, VectorClock
from repro.core import (
    ControlRelation,
    OfflineResult,
    control_disjunctive,
    control_general,
    control_from_sequence,
    crossable,
    definitely_violated,
    deposet_satisfies,
    find_overlapping_intervals,
    is_feasible,
    overlap,
    verify_control,
)
from repro.core.online import Handoff, OnlineDisjunctiveControl
from repro.core.separated import clauses_mutually_separated, control_cnf
from repro.debug import DebugSession, at_least_one, happens_before, mutual_exclusion
from repro.detection import (
    IncrementalDetector,
    Violation,
    ViolationMonitor,
    WatchResult,
    decode_assignment,
    definitely,
    definitely_exhaustive,
    possibly,
    possibly_bad,
    possibly_exhaustive,
    sat_to_sgsd,
    sgsd,
    sgsd_feasible,
    violating_cuts,
)
from repro.errors import (
    AssumptionViolationError,
    InterferenceError,
    MalformedTraceError,
    NoControllerExistsError,
    NotDisjunctiveError,
    OnlineControlError,
    PredicateError,
    ReplayDeadlockError,
    ReproError,
    SimulationError,
)
from repro.mutex import MutexReport, run_mutex_workload
from repro.obs import (
    METRICS,
    TRACER,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.predicates import (
    And,
    DisjunctivePredicate,
    FalseInterval,
    LocalPredicate,
    Not,
    Or,
    as_disjunctive,
    false_intervals,
)
from repro.recovery import (
    CheckpointPlan,
    RecoveryAnalysis,
    periodic_checkpoints,
    recover_and_replay,
    recovery_line,
)
from repro.replay import ReplayResult, replay
from repro.sat import CNF, dpll_solve, random_ksat
from repro.sim import Observer, System, TransitionGuard
from repro.store import CausalIndex, TraceStore
from repro.trace import (
    ComputationBuilder,
    CutLattice,
    Deposet,
    DeposetStats,
    MessageArrow,
    deposet_from_dict,
    deposet_stats,
    deposet_to_dict,
    dump_deposet,
    ingest_event_stream,
    load_deposet,
    load_deposet_meta,
    prefix_at,
    read_event_stream,
    render_deposet,
    write_event_stream,
)

__version__ = "1.0.0"

__all__ = [
    # causality
    "CausalOrder", "StateRef", "VectorClock",
    # trace model & storage
    "ComputationBuilder", "CutLattice", "Deposet", "MessageArrow",
    "TraceStore", "CausalIndex",
    "deposet_from_dict", "deposet_to_dict", "dump_deposet", "load_deposet",
    "load_deposet_meta", "write_event_stream", "ingest_event_stream",
    "read_event_stream", "render_deposet", "DeposetStats", "deposet_stats",
    "prefix_at",
    # observability (the flight recorder)
    "TRACER", "Tracer", "TraceEvent", "METRICS", "MetricsRegistry",
    "write_jsonl", "read_jsonl", "to_chrome_trace", "write_chrome_trace",
    # predicates
    "And", "DisjunctivePredicate", "FalseInterval", "LocalPredicate",
    "Not", "Or", "as_disjunctive", "false_intervals",
    # detection
    "possibly", "definitely",
    "possibly_bad", "possibly_exhaustive", "definitely_exhaustive",
    "violating_cuts", "sgsd", "sgsd_feasible", "sat_to_sgsd",
    "decode_assignment", "Violation", "ViolationMonitor",
    "IncrementalDetector", "WatchResult",
    # control
    "ControlRelation", "OfflineResult", "control_disjunctive",
    "control_general", "control_from_sequence", "control_cnf",
    "clauses_mutually_separated", "crossable", "overlap",
    "find_overlapping_intervals", "deposet_satisfies", "verify_control",
    "is_feasible", "definitely_violated",
    "OnlineDisjunctiveControl", "Handoff",
    # replay & simulation
    "replay", "ReplayResult", "System", "TransitionGuard", "Observer",
    # debugging
    "DebugSession", "at_least_one", "mutual_exclusion", "happens_before",
    # mutex application
    "MutexReport", "run_mutex_workload",
    # recovery application
    "CheckpointPlan", "RecoveryAnalysis", "periodic_checkpoints",
    "recovery_line", "recover_and_replay",
    # SAT substrate
    "CNF", "dpll_solve", "random_ksat",
    # errors
    "ReproError", "MalformedTraceError", "PredicateError",
    "NotDisjunctiveError", "NoControllerExistsError", "InterferenceError",
    "ReplayDeadlockError", "SimulationError", "OnlineControlError",
    "AssumptionViolationError",
]
