"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: *what* can go wrong, with what
probability, on which channels, and *when* processes crash, stall, or get
partitioned from each other.  The runtime side (consulted by the network
and the simulator) lives in :mod:`repro.faults.injector`; splitting the
two keeps plans serialisable and trivially comparable across runs.

Determinism: all probabilistic decisions are drawn from one generator
seeded with :attr:`FaultPlan.seed`, in the (deterministic) order the
kernel executes sends -- so the same plan against the same workload seed
produces the identical fault schedule, obs event stream, and outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import FaultPlanError

__all__ = ["ChannelFaultSpec", "Partition", "FaultPlan"]

#: message-fault scopes a :class:`ChannelFaultSpec` may target
SCOPES = ("all", "control", "app")


@dataclass(frozen=True)
class ChannelFaultSpec:
    """Per-channel message-fault probabilities.

    Parameters
    ----------
    drop_rate / duplicate_rate / delay_spike_rate / reorder_rate:
        Independent per-message probabilities in ``[0, 1]``.
    delay_spike:
        Extra delay (simulated time) added when a spike fires.
    reorder_window:
        A reordered message is held back by a uniform draw from
        ``(0, reorder_window]`` -- enough to overtake later traffic on a
        non-FIFO channel.
    scope:
        ``"all"``, ``"control"`` (the controllers' own messages only), or
        ``"app"`` (application messages only).  The acceptance scenarios
        target the control plane, so ``"control"`` is common.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_spike_rate: float = 0.0
    delay_spike: float = 0.0
    reorder_rate: float = 0.0
    reorder_window: float = 0.0
    scope: str = "all"

    def __post_init__(self):
        for name in ("drop_rate", "duplicate_rate", "delay_spike_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_spike < 0 or self.reorder_window < 0:
            raise FaultPlanError("delay_spike and reorder_window must be >= 0")
        if self.scope not in SCOPES:
            raise FaultPlanError(
                f"scope must be one of {SCOPES}, got {self.scope!r}"
            )

    @property
    def quiet(self) -> bool:
        """True when this spec can never inject anything."""
        return not (
            self.drop_rate or self.duplicate_rate
            or self.delay_spike_rate or self.reorder_rate
        )

    def applies_to(self, control: bool) -> bool:
        if self.scope == "all":
            return True
        return control if self.scope == "control" else not control


@dataclass(frozen=True)
class Partition:
    """Messages crossing between ``group_a`` and ``group_b`` are dropped
    while ``start <= now < end`` (either direction)."""

    group_a: FrozenSet[int]
    group_b: FrozenSet[int]
    start: float = 0.0
    end: float = float("inf")

    def __init__(
        self,
        group_a: Iterable[int],
        group_b: Iterable[int],
        start: float = 0.0,
        end: float = float("inf"),
    ):
        a, b = frozenset(group_a), frozenset(group_b)
        if not a or not b:
            raise FaultPlanError("partition groups must be non-empty")
        if a & b:
            raise FaultPlanError(f"partition groups overlap: {sorted(a & b)}")
        if end <= start:
            raise FaultPlanError(f"partition window [{start}, {end}) is empty")
        object.__setattr__(self, "group_a", a)
        object.__setattr__(self, "group_b", b)
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "end", float(end))

    def separates(self, src: int, dst: int, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, as data.

    Parameters
    ----------
    seed:
        Seed for the injector's fault-decision RNG (independent from the
        workload seed, so the same faults can be replayed against
        different schedules and vice versa).
    default_channel:
        Message-fault spec applied to every channel without an override.
    channels:
        ``(src, dst) -> ChannelFaultSpec`` overrides for specific directed
        channels.
    crashes:
        ``proc -> sim time``: the process halts permanently at that time
        (fail-stop; no further events, in-flight messages to it are lost).
    stalls:
        ``proc -> (start, duration)``: the process takes no steps during
        the window; messages queue and it resumes afterwards.
    partitions:
        Timed two-group network partitions.
    """

    seed: int = 0
    default_channel: ChannelFaultSpec = field(default_factory=ChannelFaultSpec)
    channels: Dict[Tuple[int, int], ChannelFaultSpec] = field(default_factory=dict)
    crashes: Dict[int, float] = field(default_factory=dict)
    stalls: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    partitions: Tuple[Partition, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "channels", dict(self.channels))
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "stalls", dict(self.stalls))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        for proc, t in self.crashes.items():
            if t < 0:
                raise FaultPlanError(f"crash time for process {proc} is negative")
        for proc, (start, dur) in self.stalls.items():
            if start < 0 or dur <= 0:
                raise FaultPlanError(
                    f"stall for process {proc} needs start >= 0 and duration > 0"
                )

    def spec_for(self, src: int, dst: int) -> ChannelFaultSpec:
        return self.channels.get((src, dst), self.default_channel)

    @property
    def quiet(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.default_channel.quiet
            and all(s.quiet for s in self.channels.values())
            and not self.crashes
            and not self.stalls
            and not self.partitions
        )

    @staticmethod
    def lossy(
        loss: float,
        seed: int = 0,
        scope: str = "control",
        duplicate: float = 0.0,
        crashes: Optional[Dict[int, float]] = None,
    ) -> "FaultPlan":
        """The common chaos shape: uniform loss (plus optional duplication)
        on every channel, and optional crash times."""
        return FaultPlan(
            seed=seed,
            default_channel=ChannelFaultSpec(
                drop_rate=loss, duplicate_rate=duplicate, scope=scope
            ),
            crashes=dict(crashes or {}),
        )

    def describe(self) -> str:
        parts: List[str] = [f"seed={self.seed}"]
        if not self.default_channel.quiet:
            d = self.default_channel
            parts.append(
                f"default(drop={d.drop_rate}, dup={d.duplicate_rate}, "
                f"spike={d.delay_spike_rate}x{d.delay_spike}, "
                f"reorder={d.reorder_rate}, scope={d.scope})"
            )
        if self.channels:
            parts.append(f"{len(self.channels)} channel override(s)")
        if self.crashes:
            parts.append(
                "crashes " + ", ".join(
                    f"P{p}@{t:g}" for p, t in sorted(self.crashes.items())
                )
            )
        if self.stalls:
            parts.append(
                "stalls " + ", ".join(
                    f"P{p}@{s:g}+{d:g}" for p, (s, d) in sorted(self.stalls.items())
                )
            )
        if self.partitions:
            parts.append(f"{len(self.partitions)} partition window(s)")
        return "FaultPlan(" + "; ".join(parts) + ")"
