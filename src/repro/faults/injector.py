"""The runtime half of fault injection.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against one run:

* the network consults :meth:`route` on every send -- the verdict is a
  list of extra delays, one per copy to actually deliver (``[]`` means the
  message is dropped, two entries mean it was duplicated);
* the simulator calls :meth:`attach` once, which schedules the plan's
  crash and stall callbacks on the kernel queue.

Every injected fault is emitted as a distinct obs trace event
(``fault.drop``, ``fault.duplicate``, ``fault.delay``, ``fault.reorder``,
``fault.partition``, ``fault.crash``, ``fault.stall``) and counted in the
always-on metrics registry (``faults.*``), so a recording explains a
failed run without re-running it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER

__all__ = ["FaultInjector"]

_DROPS = METRICS.counter("faults.drops")
_DUPS = METRICS.counter("faults.duplicates")
_SPIKES = METRICS.counter("faults.delay_spikes")
_REORDERS = METRICS.counter("faults.reorders")
_PARTITION_DROPS = METRICS.counter("faults.partition_drops")
_CRASHES = METRICS.counter("faults.crashes")
_STALLS = METRICS.counter("faults.stalls")
_TO_CRASHED = METRICS.counter("faults.to_crashed")


class FaultInjector:
    """Executes one fault plan; one injector per run (it holds RNG state).

    Message-level injection works standalone (a bare :class:`Network` may
    carry an injector); crash/stall scheduling needs :meth:`attach` with
    the owning system.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: flat counters for this run (the METRICS registry is process-wide)
        self.counts: Dict[str, int] = {
            "drops": 0, "duplicates": 0, "delay_spikes": 0, "reorders": 0,
            "partition_drops": 0, "crashes": 0, "stalls": 0,
        }
        self._system = None

    # -- wiring ------------------------------------------------------------

    def attach(self, system) -> None:
        """Schedule the plan's process faults on the system's kernel."""
        self._system = system
        queue = system.queue
        for proc, t in sorted(self.plan.crashes.items()):
            if not (0 <= proc < system.n):
                continue
            queue.schedule(t, lambda p=proc: self._fire_crash(p))
        for proc, (start, duration) in sorted(self.plan.stalls.items()):
            if not (0 <= proc < system.n):
                continue
            queue.schedule(
                start, lambda p=proc, d=duration: self._fire_stall(p, d)
            )

    def _fire_crash(self, proc: int) -> None:
        system = self._system
        if system is None or system.is_crashed(proc):
            return
        self.counts["crashes"] += 1
        _CRASHES.inc()
        if TRACER.enabled:
            TRACER.event(
                "fault.crash", proc=proc, sim_time=system.queue.now,
            )
        system.fault_crash(proc)

    def _fire_stall(self, proc: int, duration: float) -> None:
        system = self._system
        if system is None or system.is_crashed(proc):
            return
        self.counts["stalls"] += 1
        _STALLS.inc()
        if TRACER.enabled:
            TRACER.event(
                "fault.stall", proc=proc, duration=duration,
                sim_time=system.queue.now,
            )
        system.fault_stall(proc, system.queue.now + duration)

    # -- message faults ----------------------------------------------------

    def route(
        self, src: int, dst: int, control: bool, now: float,
        tag: Optional[str] = None,
    ) -> List[float]:
        """Decide one message's fate: a list of extra delays per delivered
        copy.  ``[0.0]`` is the undisturbed path."""
        for part in self.plan.partitions:
            if part.separates(src, dst, now):
                self.counts["partition_drops"] += 1
                _PARTITION_DROPS.inc()
                if TRACER.enabled:
                    TRACER.event(
                        "fault.partition", proc=src, dst=dst, tag=tag,
                        control=control, sim_time=now,
                    )
                return []
        spec = self.plan.spec_for(src, dst)
        if spec.quiet or not spec.applies_to(control):
            return [0.0]
        if spec.drop_rate and self.rng.random() < spec.drop_rate:
            self.counts["drops"] += 1
            _DROPS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "fault.drop", proc=src, dst=dst, tag=tag,
                    control=control, sim_time=now,
                )
            return []
        extra = 0.0
        if spec.delay_spike_rate and self.rng.random() < spec.delay_spike_rate:
            extra += spec.delay_spike
            self.counts["delay_spikes"] += 1
            _SPIKES.inc()
            if TRACER.enabled:
                TRACER.event(
                    "fault.delay", proc=src, dst=dst, tag=tag,
                    extra=spec.delay_spike, control=control, sim_time=now,
                )
        if spec.reorder_rate and self.rng.random() < spec.reorder_rate:
            holdback = float(self.rng.uniform(0.0, spec.reorder_window))
            extra += holdback
            self.counts["reorders"] += 1
            _REORDERS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "fault.reorder", proc=src, dst=dst, tag=tag,
                    holdback=holdback, control=control, sim_time=now,
                )
        copies = [extra]
        if spec.duplicate_rate and self.rng.random() < spec.duplicate_rate:
            copies.append(extra)
            self.counts["duplicates"] += 1
            _DUPS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "fault.duplicate", proc=src, dst=dst, tag=tag,
                    control=control, sim_time=now,
                )
        return copies

    def note_delivery_to_crashed(
        self, src: int, dst: int, control: bool, now: float
    ) -> None:
        """Book-keeping for a message arriving at a crashed process (the
        system drops it; fail-stop processes receive nothing)."""
        _TO_CRASHED.inc()
        if TRACER.enabled:
            TRACER.event(
                "fault.to_crashed", proc=dst, src=src, control=control,
                sim_time=now,
            )

    def summary(self) -> Dict[str, int]:
        """This run's injected-fault counts (a plain dict for reports)."""
        return dict(self.counts)
