"""An ack/retransmit wrapper for control messages.

The paper's control plane assumes reliable channels.  Under a fault plan
that drops or duplicates messages, controllers instead send *logical*
control messages through a :class:`ReliableControlChannel`:

* every logical message gets a sequence number and is retransmitted on a
  timeout with exponential backoff and jitter, up to a bounded number of
  retries; when the budget is spent, the registered give-up callback runs
  (the hook the scapegoat controller uses to re-route a handoff around a
  dead peer), or -- with ``raise_on_lost`` -- a typed
  :class:`~repro.errors.ControlChannelLostError` surfaces instead of the
  loss passing silently;
* the receiver acknowledges every copy (acks are lossy too, so duplicates
  of the data imply re-acks) and suppresses duplicate deliveries by
  sequence number, so the wrapped protocol sees exactly-once semantics;
* the induced control arrow is recorded once, on the first accepted copy,
  keeping the recorded deposet's causality sound under retransmission.

The channel deliberately does **not** wrap application messages: the
paper's model leaves those to the application, and the controllers must
survive on their own channels (cf. DDB's self-surviving debug plane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

import numpy as np

from repro.errors import ControlChannelError, ControlChannelLostError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.kernel import Timer

__all__ = ["RetryPolicy", "ControlDelivery", "ReliableControlChannel"]

_SENT = METRICS.counter("ctl.reliable_sent")
_RETRANSMITS = METRICS.counter("ctl.retransmits")
_ACKS = METRICS.counter("ctl.acks")
_DUP_SUPPRESSED = METRICS.counter("ctl.dup_suppressed")
_GIVE_UPS = METRICS.counter("ctl.give_ups")
_RTT = METRICS.histogram("ctl.rtt")


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission tuning knobs.

    ``timeout`` should exceed one round trip (``2T`` in the paper's delay
    model) or every message is retransmitted at least once; the default
    suits ``T = 1``.  The ``k``-th retransmission fires after
    ``timeout * backoff**k``, stretched by up to ``±jitter`` (a fraction),
    so synchronised retry storms decorrelate.
    """

    timeout: float = 3.0
    backoff: float = 2.0
    jitter: float = 0.25
    max_retries: int = 8

    def __post_init__(self):
        if self.timeout <= 0:
            raise ControlChannelError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ControlChannelError(f"backoff must be >= 1, got {self.backoff}")
        if not (0.0 <= self.jitter < 1.0):
            raise ControlChannelError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_retries < 0:
            raise ControlChannelError(f"max_retries must be >= 0")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        base = self.timeout * (self.backoff ** attempt)
        if self.jitter:
            base *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return base


@dataclass(frozen=True)
class ControlDelivery:
    """What the wrapped protocol sees: one exactly-once logical delivery."""

    src: int
    dst: int
    payload: Any
    tag: Optional[str]
    delivered_at: float
    seq: int


@dataclass
class _Pending:
    src: int
    dst: int
    frame: Dict[str, Any]
    tag: Optional[str]
    attempts: int = 0
    first_sent: float = 0.0
    timer: Optional[Timer] = None
    sent_ev: Any = None
    on_give_up: Optional[Callable[["_Pending"], None]] = None


class ReliableControlChannel:
    """Exactly-once logical control messaging over lossy channels.

    One channel per run (it simulates every process's sender/receiver
    state; the per-process views never mix: sequence numbers are global
    but dedup sets are per destination).
    """

    def __init__(self, system, policy: Optional[RetryPolicy] = None,
                 seed: int = 0, *, raise_on_lost: bool = False):
        self.system = system
        self.policy = policy if policy is not None else RetryPolicy()
        #: surface exhausted retransmit budgets as
        #: :class:`ControlChannelLostError` instead of dropping silently
        #: (sends with their own ``on_give_up`` recovery hook still use it)
        self.raise_on_lost = raise_on_lost
        self.rng = np.random.default_rng(seed)
        self._next_seq = 0
        self._pending: Dict[int, _Pending] = {}
        self._seen: Dict[int, Set[int]] = {}
        #: per-run stats for reports (the METRICS registry is process-wide)
        self.counts: Dict[str, int] = {
            "sent": 0, "retransmits": 0, "acks": 0,
            "dup_suppressed": 0, "give_ups": 0,
        }
        self._deliver: Optional[Callable[[ControlDelivery], None]] = None

    def bind(self, deliver: Callable[[ControlDelivery], None]) -> None:
        """Set the protocol-level delivery callback (once, at attach)."""
        self._deliver = deliver

    @property
    def outstanding(self) -> int:
        """Logical messages awaiting an ack (each holds one live timer)."""
        return len(self._pending)

    # -- sending -----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        tag: Optional[str] = None,
        record_mode: str = "entered",
        on_give_up: Optional[Callable[[_Pending], None]] = None,
    ) -> int:
        """Ship one logical control message; returns its sequence number."""
        if self._deliver is None:
            raise ControlChannelError("bind() a delivery callback before send()")
        seq = self._next_seq
        self._next_seq += 1
        frame = {
            "kind": "data",
            "seq": seq,
            "src": src,
            "dst": dst,
            "payload": payload,
            "tag": tag,
            "src_state": self.system.recorder.current_state(src),
            "record_mode": record_mode,
        }
        pending = _Pending(
            src=src, dst=dst, frame=frame, tag=tag,
            first_sent=self.system.queue.now, on_give_up=on_give_up,
        )
        self._pending[seq] = pending
        self.counts["sent"] += 1
        _SENT.inc()
        self._transmit(pending)
        return seq

    def _transmit(self, pending: _Pending) -> None:
        seq = pending.frame["seq"]
        if TRACER.enabled:
            pending.sent_ev = TRACER.event(
                "ctl.send", proc=pending.src, dst=pending.dst, tag=pending.tag,
                src_state=pending.frame["src_state"], seq=seq,
                attempt=pending.attempts, sim_time=self.system.queue.now,
                flow=f"rctl-{seq}-{pending.attempts}",
            )
        self.system.network.send(
            pending.src, pending.dst, dict(pending.frame), self._on_frame,
            tag=pending.tag, control=True,
        )
        delay = self.policy.delay(pending.attempts, self.rng)
        pending.timer = self.system.queue.schedule(
            delay, lambda: self._on_timeout(seq)
        )

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return  # acked in the meantime
        if self.system.is_crashed(pending.src):
            # the sender (and its co-located controller) died: stop
            del self._pending[seq]
            return
        pending.attempts += 1
        if pending.attempts > self.policy.max_retries:
            del self._pending[seq]
            self.counts["give_ups"] += 1
            _GIVE_UPS.inc()
            if TRACER.enabled:
                TRACER.event(
                    "ctl.give_up", proc=pending.src, dst=pending.dst, seq=seq,
                    attempts=pending.attempts, sim_time=self.system.queue.now,
                )
            if pending.on_give_up is not None:
                pending.on_give_up(pending)
            elif self.raise_on_lost:
                raise ControlChannelLostError(
                    f"control message seq={seq} "
                    f"{pending.src}->{pending.dst} (tag={pending.tag!r}) "
                    f"lost after {pending.attempts} attempt(s): "
                    f"retransmit budget ({self.policy.max_retries}) spent",
                    seq=seq, src=pending.src, dst=pending.dst,
                    attempts=pending.attempts,
                )
            return
        self.counts["retransmits"] += 1
        _RETRANSMITS.inc()
        if TRACER.enabled:
            TRACER.event(
                "ctl.retransmit", proc=pending.src, dst=pending.dst, seq=seq,
                attempt=pending.attempts, sim_time=self.system.queue.now,
            )
        self._transmit(pending)

    # -- receiving ---------------------------------------------------------

    def _on_frame(self, delivery) -> None:
        frame = delivery.payload
        if frame["kind"] == "ack":
            self._on_ack(frame)
            return
        seq, src, dst = frame["seq"], frame["src"], frame["dst"]
        if self.system.is_crashed(dst):
            if self.system.faults is not None:
                self.system.faults.note_delivery_to_crashed(
                    src, dst, True, self.system.queue.now
                )
            return
        # ack every copy: the previous ack may itself have been lost
        self.system.network.send(
            dst, src, {"kind": "ack", "seq": seq, "src": dst, "dst": src},
            self._on_frame, tag="ctl-ack", control=True,
        )
        seen = self._seen.setdefault(dst, set())
        if seq in seen:
            self.counts["dup_suppressed"] += 1
            _DUP_SUPPRESSED.inc()
            if TRACER.enabled:
                TRACER.event(
                    "ctl.dup_suppressed", proc=dst, src=src, seq=seq,
                    sim_time=self.system.queue.now,
                )
            return
        seen.add(seq)
        pending = self._pending.get(seq)
        if TRACER.enabled:
            TRACER.event(
                "ctl.deliver", proc=dst, src=src, tag=frame["tag"], seq=seq,
                cause=pending.sent_ev if pending is not None else None,
                src_state=frame["src_state"], sim_time=self.system.queue.now,
                flow=(
                    pending.sent_ev.fields["flow"]
                    if pending is not None and pending.sent_ev is not None
                    else f"rctl-{seq}"
                ),
            )
        self.system.control_arrow(
            src, dst, frame["src_state"], mode=frame["record_mode"],
            tag=frame["tag"],
        )
        self._deliver(
            ControlDelivery(
                src=src, dst=dst, payload=frame["payload"], tag=frame["tag"],
                delivered_at=self.system.queue.now, seq=seq,
            )
        )

    def _on_ack(self, frame: Dict[str, Any]) -> None:
        pending = self._pending.pop(frame["seq"], None)
        if pending is None:
            return  # duplicate or late ack
        if pending.timer is not None:
            pending.timer.cancel()
        self.counts["acks"] += 1
        _ACKS.inc()
        _RTT.observe(self.system.queue.now - pending.first_sent)
        if TRACER.enabled:
            TRACER.event(
                "ctl.ack", proc=pending.src, dst=pending.dst,
                seq=frame["seq"], sim_time=self.system.queue.now,
            )

    def summary(self) -> Dict[str, int]:
        return dict(self.counts)
