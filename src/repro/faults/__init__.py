"""Fault injection and fault tolerance.

The paper's model assumes reliable channels and non-crashing processes;
this package removes both assumptions so the rest of the repo can be
tested against the failures a real distributed debugger meets:

* :mod:`repro.faults.plan` -- declarative, seeded :class:`FaultPlan` data
  (per-channel drop/duplicate/reorder/delay-spike, crash-at-time,
  stall-for-duration, timed partitions);
* :mod:`repro.faults.injector` -- the :class:`FaultInjector` runtime the
  network and simulator consult, with every injected fault emitted as an
  obs trace event and metrics counter;
* :mod:`repro.faults.reliable` -- the :class:`ReliableControlChannel`
  ack/retransmit wrapper (timeouts, exponential backoff with jitter,
  bounded retries, duplicate suppression by sequence number) that lets
  the on-line control plane survive its own fault plans.
"""

from repro.errors import ControlChannelLostError
from repro.faults.injector import FaultInjector
from repro.faults.plan import ChannelFaultSpec, FaultPlan, Partition
from repro.faults.reliable import (
    ControlDelivery,
    ReliableControlChannel,
    RetryPolicy,
)

__all__ = [
    "ChannelFaultSpec",
    "FaultPlan",
    "Partition",
    "FaultInjector",
    "RetryPolicy",
    "ControlDelivery",
    "ReliableControlChannel",
    "ControlChannelLostError",
]
