"""Vector clocks as immutable value objects.

These are the clocks carried by *live* processes in the discrete-event
simulator (:mod:`repro.sim`).  Trace analysis uses the batch table in
:mod:`repro.causality.relations` instead, which is far cheaper for whole
computations.

The component convention follows the paper's state-level model: component
``i`` of the clock attached to a state ``s`` is the index of the latest
state on process ``i`` that causally precedes-or-equals ``s`` (``-1`` when
no state of process ``i`` is causally below ``s``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable vector clock over ``n`` processes.

    Supports the standard operations: per-component access, ``tick`` (bump
    one's own component), ``merge`` (componentwise max, used on message
    receipt) and the causality comparisons ``happened_before`` /
    ``concurrent_with``.

    >>> a = VectorClock.zero(2).tick(0)
    >>> b = VectorClock.zero(2).tick(1).merge(a)
    >>> a.happened_before(b)
    True
    >>> b.happened_before(a)
    False
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        self._components: Tuple[int, ...] = tuple(int(c) for c in components)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        """The clock of a start state: no state observed on any process.

        The paper indexes local states from 0 (the start state |_i), so the
        neutral element is all ``-1``: "no state seen yet".
        """
        if n <= 0:
            raise ValueError(f"need at least one process, got n={n}")
        return cls((-1,) * n)

    # -- basic protocol ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes this clock spans."""
        return len(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, i: int) -> int:
        return self._components[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __repr__(self) -> str:
        return f"VectorClock({list(self._components)})"

    def as_tuple(self) -> Tuple[int, ...]:
        """The raw component tuple."""
        return self._components

    # -- clock algebra -----------------------------------------------------

    def tick(self, proc: int) -> "VectorClock":
        """Return a copy with process ``proc``'s component incremented.

        Called when process ``proc`` takes an event and enters a new local
        state.
        """
        comps = list(self._components)
        comps[proc] += 1
        return VectorClock(comps)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum -- the receive-side clock update."""
        if len(other) != len(self):
            raise ValueError(
                f"cannot merge clocks of widths {len(self)} and {len(other)}"
            )
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    # -- causality queries -------------------------------------------------

    def dominates(self, other: "VectorClock") -> bool:
        """``self >= other`` componentwise."""
        return all(a >= b for a, b in zip(self._components, other._components))

    def happened_before(self, other: "VectorClock") -> bool:
        """Strict causal precedence of the states carrying these clocks."""
        return other.dominates(self) and self._components != other._components

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock causally precedes the other."""
        return not self.happened_before(other) and not other.happened_before(self)
