"""Causality substrate: vector clocks and happened-before over local states.

The paper's model orders the *local states* of an asynchronous
message-passing computation by Lamport's happened-before relation
(transitive closure of "immediately precedes" within a process and
"remotely precedes" across a message).  This package provides:

* :class:`~repro.causality.vector_clock.VectorClock` -- a small value type
  for use by live processes in the simulator;
* :class:`~repro.causality.relations.CausalOrder` -- the dense, NumPy-backed
  state-clock table used for O(1) happened-before queries over a whole
  trace, including traces extended with control arrows.
"""

from repro.causality.vector_clock import VectorClock
from repro.causality.relations import CausalOrder, StateRef

__all__ = ["VectorClock", "CausalOrder", "StateRef"]
