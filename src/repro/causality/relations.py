"""Whole-trace happened-before: event-level causality, state-level queries.

The paper's model orders *local states*; operationally, causality lives on
*events* (the transitions between states).  The two views are off by half a
step -- ``complete(s_{i,a})`` and ``enter(s_{i,a+1})`` are the **same
event** -- and conflating them loses real cycles: a control arrow whose
source state is *entered* by the very event it transitively blocks is
acyclic on states but deadlocks operationally.  :class:`CausalOrder`
therefore:

1. builds the **event graph**: per-process event chains plus one edge per
   arrow (message or control, uniformly): ``leave(src_state) ->
   enter(dst_state)``;
2. checks acyclicity there (Kahn's algorithm) -- this is the paper's
   "control relation does not interfere with ->", and coincides with
   "replayable without deadlock";
3. derives per-state vector clocks ``V(s)[k] = max{a : s_{k,a} -> s}``
   (``->`` strict: ``s_{k,a}`` *completed* before ``s`` was *entered*),
   giving O(1) state-level queries:

   ``s_{i,a} -> s_{j,b}``  iff  ``i == j and a < b``, or
   ``i != j and a <= V(s_{j,b})[i]``.

A global state (one state per process) is *consistent* iff its states are
pairwise concurrent: ``V(cut[j])[i] < cut[i]`` for all ``i != j``.  The
strict inequality implements the paper's state-based reading: a cut holding
both a sender's pre-send state and the receiver's post-receive state cannot
occur.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.errors import MalformedTraceError

__all__ = ["StateRef", "CausalOrder", "CycleError"]


class StateRef(NamedTuple):
    """A local state identified by ``(process index, state index)``."""

    proc: int
    index: int

    def __repr__(self) -> str:  # compact, shows up a lot in debug output
        return f"s[{self.proc},{self.index}]"


class CycleError(MalformedTraceError):
    """The supplied arrows create a cycle in the event graph."""

    def __init__(self, remaining: Sequence[Tuple[int, int]]):
        self.remaining = list(remaining)
        preview = ", ".join(f"ev[{i},{e}]" for i, e in self.remaining[:8])
        super().__init__(
            f"causal relation is cyclic; {len(self.remaining)} events are on "
            f"cycles or downstream of one (e.g. {preview})"
        )


Arrow = Tuple[StateRef, StateRef]
EventRef = Tuple[int, int]  # (proc, event index); event e leaves state e


class CausalOrder:
    """O(1) happened-before queries over a (possibly extended) deposet.

    Parameters
    ----------
    state_counts:
        ``state_counts[i]`` is the number of local states of process ``i``
        (each process has at least its start state).  Process ``i`` has
        ``state_counts[i] - 1`` events.
    arrows:
        Cross-state edges ``(src, dst)`` with the uniform strict semantics
        *src completed before dst entered*: message arrows (the paper's
        *remotely precedes*) and any control arrows of an extended deposet.
        ``src`` must have a leaving event (``src.index <= m_src - 2``; a
        final state never completes) and ``dst`` an entering event
        (``dst.index >= 1``); these are the D1/D2 constraints generalised
        to control arrows.

    Raises
    ------
    CycleError
        If the event graph is cyclic -- i.e. the control relation
        *interferes* with causality / the extended computation cannot be
        executed.
    MalformedTraceError
        If an arrow references a nonexistent state or event, or points
        backwards within one process.
    """

    __slots__ = ("n", "state_counts", "_clocks", "_arrows")

    def __init__(
        self,
        state_counts: Sequence[int],
        arrows: Iterable[Arrow] = (),
    ):
        self.n = len(state_counts)
        if self.n == 0:
            raise MalformedTraceError("a computation needs at least one process")
        self.state_counts: Tuple[int, ...] = tuple(int(m) for m in state_counts)
        for i, m in enumerate(self.state_counts):
            if m < 1:
                raise MalformedTraceError(
                    f"process {i} has {m} states; every process has at least "
                    f"a start state"
                )
        self._arrows: List[Arrow] = [
            (StateRef(*a), StateRef(*b)) for a, b in arrows
        ]
        self._validate_arrows()
        #: per-process state-clock matrices, shape (m_i, n), dtype int32
        self._clocks: List[np.ndarray] = self._compute_clocks()

    # -- construction ------------------------------------------------------

    def _validate_arrows(self) -> None:
        for src, dst in self._arrows:
            for ref in (src, dst):
                if not (0 <= ref.proc < self.n):
                    raise MalformedTraceError(f"arrow endpoint {ref!r}: no such process")
                if not (0 <= ref.index < self.state_counts[ref.proc]):
                    raise MalformedTraceError(f"arrow endpoint {ref!r}: no such state")
            if src.index > self.state_counts[src.proc] - 2:
                raise MalformedTraceError(
                    f"arrow source {src!r} is a final state: it never "
                    f"completes, so the arrow could never be satisfied (D2)"
                )
            if dst.index < 1:
                raise MalformedTraceError(
                    f"arrow target {dst!r} is a start state: it is entered "
                    f"before anything can be waited for (D1)"
                )
            if src.proc == dst.proc and src.index >= dst.index:
                raise MalformedTraceError(
                    f"same-process arrow {src!r} -> {dst!r} points backwards"
                )

    def _compute_clocks(self) -> List[np.ndarray]:
        n = self.n
        counts = self.state_counts
        event_counts = [m - 1 for m in counts]

        # Event clocks: EC[i][e][k] = max event index of process k that
        # happens-before-or-equals event (i, e); -1 when none.
        ec = [np.full((max(m, 1), n), -1, dtype=np.int32) for m in event_counts]

        incoming: Dict[EventRef, List[EventRef]] = {}
        outgoing: Dict[EventRef, List[EventRef]] = {}
        indeg = [np.zeros(max(m, 1), dtype=np.int32) for m in event_counts]
        for src, dst in self._arrows:
            src_ev: EventRef = (src.proc, src.index)          # leave(src)
            dst_ev: EventRef = (dst.proc, dst.index - 1)      # enter(dst)
            if src_ev == dst_ev:
                continue  # complete(s) == enter(s+1): trivially satisfied
            incoming.setdefault(dst_ev, []).append(src_ev)
            outgoing.setdefault(src_ev, []).append(dst_ev)
            indeg[dst_ev[0]][dst_ev[1]] += 1
        for i in range(n):
            if event_counts[i] > 1:
                indeg[i][1:event_counts[i]] += 1  # in-process chain

        ready: deque[EventRef] = deque(
            (i, 0) for i in range(n) if event_counts[i] > 0 and indeg[i][0] == 0
        )
        done = 0
        total = sum(event_counts)
        while ready:
            ev = ready.popleft()
            i, e = ev
            row = ec[i][e]
            if e > 0:
                np.maximum(row, ec[i][e - 1], out=row)
            for src_ev in incoming.get(ev, ()):
                np.maximum(row, ec[src_ev[0]][src_ev[1]], out=row)
            row[i] = e
            done += 1
            if e + 1 < event_counts[i]:
                indeg[i][e + 1] -= 1
                if indeg[i][e + 1] == 0:
                    ready.append((i, e + 1))
            for dst_ev in outgoing.get(ev, ()):
                indeg[dst_ev[0]][dst_ev[1]] -= 1
                if indeg[dst_ev[0]][dst_ev[1]] == 0:
                    ready.append(dst_ev)

        if done != total:
            remaining = [
                (i, e)
                for i in range(n)
                for e in range(event_counts[i])
                if indeg[i][e] > 0
            ]
            raise CycleError(remaining)

        # State clocks: state (j, b) for b >= 1 was entered by event
        # (j, b-1); its clock is that event's clock, with the convention
        # V(s)[proc(s)] = index(s).  State (j, 0) has the zero clock.
        clocks = [np.full((m, n), -1, dtype=np.int32) for m in counts]
        for j in range(n):
            if counts[j] > 1:
                clocks[j][1:, :] = ec[j][: counts[j] - 1, :]
                # EC[j][b-1][j] = b-1 (the entering event itself); the
                # convention for the state's own component is its index.
            clocks[j][:, j] = np.arange(counts[j], dtype=np.int32)
        return clocks

    # -- queries -----------------------------------------------------------

    def clock(self, ref: StateRef | Tuple[int, int]) -> np.ndarray:
        """The state clock ``V(s)`` (read-only view)."""
        proc, index = ref
        return self._clocks[proc][index]

    def clock_matrix(self, proc: int) -> np.ndarray:
        """All clocks of one process, shape ``(m_proc, n)``."""
        return self._clocks[proc]

    def happened_before(
        self, a: StateRef | Tuple[int, int], b: StateRef | Tuple[int, int]
    ) -> bool:
        """Strict ``a -> b`` over states (a completed before b entered)."""
        (pi, ai), (pj, bj) = a, b
        if pi == pj:
            return ai < bj
        return ai <= self._clocks[pj][bj, pi]

    def happened_before_eq(
        self, a: StateRef | Tuple[int, int], b: StateRef | Tuple[int, int]
    ) -> bool:
        """Reflexive ``a ->= b`` (the paper's underlined arrow)."""
        return tuple(a) == tuple(b) or self.happened_before(a, b)

    def enters_before(
        self, a: StateRef | Tuple[int, int], b: StateRef | Tuple[int, int]
    ) -> bool:
        """``enter(a) <= enter(b)``: every execution that has entered ``b``
        has (at least) entered ``a``.

        This is the relation the off-line algorithm's ``crossable`` and
        cursor-advance conditions need: it differs from the state relation
        ``->`` by half a step, because ``complete(s_a)`` and
        ``enter(s_{a+1})`` are the same event.  Start states are entered
        from time zero, so they precede everything.
        """
        (pa, ia), (pb, ib) = a, b
        if pa == pb:
            return ia <= ib
        if ia == 0:
            return True
        # enter(a) is the completion of a's predecessor state.
        return self.happened_before((pa, ia - 1), (pb, ib))

    def concurrent(
        self, a: StateRef | Tuple[int, int], b: StateRef | Tuple[int, int]
    ) -> bool:
        """``a || b``: neither state causally precedes the other."""
        return (
            tuple(a) != tuple(b)
            and not self.happened_before(a, b)
            and not self.happened_before(b, a)
        )

    def is_consistent_cut(self, cut: Sequence[int]) -> bool:
        """Is the global state ``cut`` (one state index per process) consistent?

        ``cut`` is consistent iff its states are pairwise concurrent:
        ``V(cut[j])[i] < cut[i]`` for all ``i != j`` (strict -- see the
        module docstring).
        """
        if len(cut) != self.n:
            raise ValueError(f"cut has {len(cut)} entries for {self.n} processes")
        for j in range(self.n):
            row = self._clocks[j][cut[j]]
            for i in range(self.n):
                if i != j and row[i] >= cut[i]:
                    return False
        return True

    def extended(self, extra_arrows: Iterable[Arrow]) -> "CausalOrder":
        """A new order with additional arrows (e.g. a control relation).

        Arrows already present are skipped -- a duplicated arrow adds no
        causality but would inflate the event graph and arrow counters.
        Raises :class:`CycleError` when the extra arrows interfere with the
        existing causality -- equivalently, when the extended computation
        cannot be replayed without deadlock.
        """
        seen = set(self._arrows)
        fresh: List[Arrow] = []
        for a, b in extra_arrows:
            arrow = (StateRef(*a), StateRef(*b))
            if arrow not in seen:
                seen.add(arrow)
                fresh.append(arrow)
        return CausalOrder(self.state_counts, self._arrows + fresh)

    @property
    def arrows(self) -> List[Arrow]:
        """The cross-state arrows this order was built from (copy)."""
        return list(self._arrows)
