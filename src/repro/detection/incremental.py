"""Incremental conjunctive detection over a growing :class:`TraceStore`.

``repro watch`` streams a trace in and wants, after every record, the
answer batch detection would give on the prefix so far: *is there a
consistent global state violating the disjunctive predicate?*  Re-running
:func:`~repro.detection.conjunctive.possibly_bad` per record is
quadratic in the trace length; this module keeps the Garg-Waldecker
candidate-elimination state alive between polls instead.

Why this is sound incrementally:

* **Appends are monotone.**  A new event never adds causality between
  *existing* states, so every elimination made so far ("state ``(i, a)``
  is causally below some candidate and can be in no witness cut") stays
  valid; new states only extend the per-process candidate lists.
* **Exhaustion is "pending", not "no".**  Batch GW returns *no witness*
  when a process runs out of false candidates; a streaming process may
  produce its first false state in the next record, so the detector
  parks the elimination (the dirty queue persists) and resumes when a
  candidate appears.
* **Arrow inserts rewrite the past.**  A control or late message arrow
  adds causality between existing states, which can invalidate a found
  witness.  :class:`~repro.store.TraceStore` bumps :attr:`epoch` on such
  inserts; the detector then resets its pointers and re-eliminates
  (counted in ``detection.incremental.resets``).  Local truth values are
  never recomputed -- variables are immutable once appended.

The witness returned is the *least* violating cut, identical to the one
:func:`possibly_bad` computes on a snapshot of the same prefix (the set
of consistent violating cuts is a lattice; its bottom is unique), which
is what ``repro watch --verify`` checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.predicates.base import Predicate
from repro.predicates.disjunctive import DisjunctivePredicate, as_disjunctive
from repro.store.trace_store import TraceStore

__all__ = ["IncrementalDetector", "WatchResult"]

Cut = Tuple[int, ...]

_POLLS = METRICS.counter("detection.incremental.polls")
_SUFFIX = METRICS.counter("detection.incremental.suffix_states")
_RESETS = METRICS.counter("detection.incremental.resets")


@dataclass(frozen=True)
class WatchResult:
    """Final verdict of a watch run (see :meth:`IncrementalDetector.finalize`).

    ``witness`` is the least consistent cut violating the predicate
    (``None``: the predicate holds in every consistent global state of
    the final prefix).  ``definitely`` answers the stronger question --
    does *every* execution pass through a violating state -- via the
    batch engines on a snapshot; ``pending`` lists processes that never
    produced a false state (their disjunct "saves" the predicate).
    """

    witness: Optional[Cut]
    definitely: Optional[bool] = None
    pending: Tuple[int, ...] = field(default=())


class IncrementalDetector:
    """Poll-based *possibly(not B)* over an append-only store.

    Parameters
    ----------
    store:
        The :class:`TraceStore` being written (by streaming ingestion or
        a live recorder).  The detector only reads it.
    pred:
        The disjunctive safety predicate ``B`` (anything
        :func:`~repro.predicates.disjunctive.as_disjunctive` accepts).
        A violation is a consistent cut where **every** disjunct is
        false.

    Call :meth:`poll` whenever the store may have grown; it returns the
    current witness cut or ``None`` and only pays for the new suffix
    (plus a bounded amount of re-elimination after arrow inserts).
    """

    def __init__(self, store: TraceStore, pred: Predicate):
        self._store = store
        self._pred: DisjunctivePredicate = as_disjunctive(pred, store.n)
        self.n = store.n
        self._locals = [self._pred.local(i) for i in range(self.n)]
        #: per process: state indices where the disjunct is false, in order
        self._positions: List[List[int]] = [[] for _ in range(self.n)]
        self._scanned = [0] * self.n  # states whose truth value is known
        self._ptr = [0] * self.n      # first not-yet-eliminated candidate
        self._dirty: Deque[int] = deque(range(self.n))
        self._in_dirty = [True] * self.n
        self._epoch = store.epoch
        self._witness: Optional[Cut] = None

    @property
    def predicate(self) -> DisjunctivePredicate:
        return self._pred

    @property
    def witness(self) -> Optional[Cut]:
        """The witness from the last :meth:`poll` (no recomputation)."""
        return self._witness

    @property
    def pending_procs(self) -> Tuple[int, ...]:
        """Processes with no remaining false candidate: as long as this is
        non-empty, no violation exists in the current prefix."""
        return tuple(
            i for i in range(self.n)
            if self._ptr[i] >= len(self._positions[i])
        )

    # -- incremental steps ---------------------------------------------------

    def _reset(self) -> None:
        # Arrow inserts only *add* causality, so old eliminations are in
        # fact still sound; resetting the pointers anyway keeps the "least
        # witness" guarantee trivially aligned with the batch detector.
        _RESETS.inc()
        self._epoch = self._store.epoch
        self._ptr = [0] * self.n
        self._witness = None
        self._dirty = deque(range(self.n))
        self._in_dirty = [True] * self.n

    def _scan(self) -> None:
        """Classify states appended since the last poll."""
        counts = self._store.state_counts
        for i in range(self.n):
            m = counts[i]
            if self._scanned[i] >= m:
                continue
            positions = self._positions[i]
            was_exhausted = self._ptr[i] >= len(positions)
            local = self._locals[i]
            for a in range(self._scanned[i], m):
                if local is None or not local.holds_at(self._store, a):
                    positions.append(a)
            _SUFFIX.inc(m - self._scanned[i])
            self._scanned[i] = m
            if (
                was_exhausted
                and self._ptr[i] < len(positions)
                and not self._in_dirty[i]
            ):
                # a parked elimination can resume through this process
                self._dirty.append(i)
                self._in_dirty[i] = True

    def _eliminate(self) -> Optional[Cut]:
        positions, ptr = self._positions, self._ptr
        for i in range(self.n):
            if ptr[i] >= len(positions[i]):
                return None  # pending: process i has no false candidate yet
        dirty, in_dirty = self._dirty, self._in_dirty
        order = self._store.index
        hb = order.happened_before
        while dirty:
            i = dirty.popleft()
            in_dirty[i] = False
            advanced_any = False
            for j in range(self.n):
                if j == i:
                    continue
                while True:
                    ci, cj = positions[i][ptr[i]], positions[j][ptr[j]]
                    if hb((i, ci), (j, cj)):
                        loser = i
                    elif hb((j, cj), (i, ci)):
                        loser = j
                    else:
                        break
                    ptr[loser] += 1
                    if not in_dirty[loser]:
                        dirty.append(loser)
                        in_dirty[loser] = True
                    advanced_any = True
                    if ptr[loser] >= len(positions[loser]):
                        # Park: future states of `loser` may revive the
                        # search.  `i`'s remaining pairs have not been
                        # checked -- keep it queued.
                        if not in_dirty[i]:
                            dirty.appendleft(i)
                            in_dirty[i] = True
                        return None
            if advanced_any and not in_dirty[i]:
                dirty.append(i)  # i advanced; recheck it against everyone
                in_dirty[i] = True
        return tuple(positions[i][ptr[i]] for i in range(self.n))

    def poll(self) -> Optional[Cut]:
        """The least consistent cut violating the predicate in the current
        prefix, or ``None`` (holds so far / pending candidates)."""
        _POLLS.inc()
        if self._store.epoch != self._epoch:
            self._reset()
        if self._witness is not None:
            return self._witness  # appends cannot invalidate a witness
        self._scan()
        self._witness = self._eliminate()
        return self._witness

    # -- durable state capture -----------------------------------------------

    def snapshot(self) -> dict:
        """The detector's elimination state as a JSON-serializable dict.

        Captures everything :meth:`poll` has derived from the store so far
        (candidate positions, elimination pointers, the dirty queue, the
        current witness) so a :meth:`restore` over an equivalently-restored
        store resumes mid-stream without rescanning the prefix.  The store
        itself is *not* captured -- pair this with
        :meth:`TraceStore.freeze` (the serving checkpoint does).
        """
        return {
            "positions": [list(p) for p in self._positions],
            "scanned": list(self._scanned),
            "ptr": list(self._ptr),
            "dirty": list(self._dirty),
            "epoch": self._epoch,
            "witness": list(self._witness) if self._witness is not None else None,
        }

    @classmethod
    def restore(cls, store: TraceStore, pred: Predicate,
                state: dict) -> "IncrementalDetector":
        """Rebuild a detector over ``store`` from a :meth:`snapshot`.

        ``store`` must hold (at least) the prefix the snapshot was taken
        over and ``pred`` must be the same predicate; subsequent
        :meth:`poll` calls then behave exactly as the original's would
        have (pinned by tests/serve/test_durability.py).
        """
        det = cls(store, pred)
        det._positions = [list(p) for p in state["positions"]]
        det._scanned = list(state["scanned"])
        det._ptr = list(state["ptr"])
        det._dirty = deque(state["dirty"])
        det._in_dirty = [False] * det.n
        for i in det._dirty:
            det._in_dirty[i] = True
        det._epoch = int(state["epoch"])
        det._witness = (
            tuple(state["witness"]) if state["witness"] is not None else None
        )
        return det

    # -- finalisation --------------------------------------------------------

    def finalize(
        self, engine: str = "auto", *, with_definitely: bool = True
    ) -> WatchResult:
        """The end-of-stream verdict, upgraded with batch *definitely*.

        Takes a snapshot of the store and runs the batch engine for the
        *definitely* modality (the incremental loop answers *possibly*
        only); the ``witness`` field is this detector's own final poll.
        ``with_definitely=False`` skips the batch snapshot pass entirely
        (``definitely`` comes back ``None``) -- the serving layer uses
        this for sessions whose stores grew past the cheap-finalize size.
        """
        from repro.detection.engine import definitely

        witness = self.poll()
        pending = self.pending_procs
        df: Optional[bool] = False
        if witness is not None:
            if with_definitely:
                dep = self._store.snapshot()
                df = definitely(dep, self._pred.negated(), engine=engine)
            else:
                df = None
        return WatchResult(witness=witness, definitely=df, pending=pending)
