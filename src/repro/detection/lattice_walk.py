"""Exhaustive possibly/definitely detection by walking the cut lattice.

Ground truth for small traces; exponential in general (that is Lemma 1).

* ``possibly(pred)``  -- some consistent cut satisfies ``pred``;
* ``definitely(pred)`` -- every global sequence passes through a cut
  satisfying ``pred``, i.e. there is **no** global sequence all of whose
  cuts satisfy ``not pred``.  Global sequences may advance several
  processes at once, so this is evaluated with subset moves.
"""

from __future__ import annotations

from typing import List, Optional

from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut, CutLattice

__all__ = ["possibly_exhaustive", "definitely_exhaustive", "violating_cuts"]


def possibly_exhaustive(dep: Deposet, pred: Predicate) -> Optional[Cut]:
    """The first consistent cut (in BFS order) satisfying ``pred``."""
    lat = CutLattice(dep)
    for cut in lat.iter_consistent_cuts():
        if pred.evaluate(dep, cut):
            return cut
    return None


def definitely_exhaustive(dep: Deposet, pred: Predicate) -> bool:
    """Does every global sequence hit a cut satisfying ``pred``?"""
    lat = CutLattice(dep)
    return not lat.exists_satisfying_sequence(
        lambda cut: not pred.evaluate(dep, cut)
    )


def violating_cuts(dep: Deposet, safety: Predicate) -> List[Cut]:
    """All consistent cuts violating a safety predicate (BFS order).

    This is the "detect the bug, then look at where it can happen" step of
    the paper's Section 7 walkthrough (the global states G and H of
    Figure 4).
    """
    lat = CutLattice(dep)
    return [
        cut
        for cut in lat.iter_consistent_cuts()
        if not safety.evaluate(dep, cut)
    ]
