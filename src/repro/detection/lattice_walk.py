"""Exhaustive possibly/definitely detection by walking the cut lattice.

Ground truth for small traces; exponential in general (that is Lemma 1).

* ``possibly(pred)``  -- some consistent cut satisfies ``pred``;
* ``definitely(pred)`` -- every global sequence passes through a cut
  satisfying ``pred``, i.e. there is **no** global sequence all of whose
  cuts satisfy ``not pred``.  Global sequences may advance several
  processes at once, so this is evaluated with subset moves.

Counter contract (pinned by ``tests/detection/test_walk_counters.py``):

* ``detection.lattice_walks`` -- exactly +1 per public detection call
  (one logical walk counts once, no matter how the helpers compose);
* ``detection.lattice_states`` -- the number of **distinct** consistent
  cuts this walk evaluated.  ``definitely_exhaustive`` memoises its
  predicate evaluations so a cut generated from several parents (or the
  goal cut, evaluated up front) is counted -- and evaluated -- once.

Tracing contract: ``TRACER.enabled`` is sampled once per walk, and the
disabled path performs no per-cut tracer work at all -- no payload
materialisation, no attribute reads, no event calls.  Counter updates are
batched per walk (one ``inc`` with the visited total), so a disabled-
tracing walk's per-cut cost is the enumeration itself and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut, CutLattice

__all__ = ["possibly_exhaustive", "definitely_exhaustive", "violating_cuts"]

_LATTICE_STATES = METRICS.counter("detection.lattice_states")
_LATTICE_WALKS = METRICS.counter("detection.lattice_walks")


def _iter_counted(lat: CutLattice):
    """Iterate consistent cuts, counting (and, when on, tracing) each one.

    The tracer guard is hoisted out of the loop: when the flight recorder
    is off the per-cut body is just the yield.  The state counter is
    added once, in the ``finally`` (which also runs when the consumer
    stops early -- generators are closed on loop exit).
    """
    _LATTICE_WALKS.inc()
    visited = 0
    try:
        if TRACER.enabled:
            for cut in lat.iter_consistent_cuts():
                visited += 1
                TRACER.event("lattice.expand", cut=list(cut))
                yield cut
        else:
            for cut in lat.iter_consistent_cuts():
                visited += 1
                yield cut
    finally:
        if visited:
            _LATTICE_STATES.inc(visited)


def possibly_exhaustive(dep: Deposet, pred: Predicate) -> Optional[Cut]:
    """The first consistent cut (in enumeration order) satisfying ``pred``."""
    for cut in _iter_counted(CutLattice(dep)):
        if pred.evaluate(dep, cut):
            return cut
    return None


def definitely_exhaustive(dep: Deposet, pred: Predicate) -> bool:
    """Does every global sequence hit a cut satisfying ``pred``?"""
    lat = CutLattice(dep)
    _LATTICE_WALKS.inc()
    trace_on = TRACER.enabled
    seen: Dict[Cut, bool] = {}

    def avoids(cut: Cut) -> bool:
        # Memoised: the sequence search generates the same cut from many
        # parents (and probes the goal up front); each distinct cut is
        # evaluated -- and counted -- exactly once per walk.
        cached = seen.get(cut)
        if cached is not None:
            return cached
        if trace_on:
            TRACER.event("lattice.expand", cut=list(cut), mode="sequence")
        value = not pred.evaluate(dep, cut)
        seen[cut] = value
        return value

    try:
        return not lat.exists_satisfying_sequence(avoids)
    finally:
        if seen:
            _LATTICE_STATES.inc(len(seen))


def violating_cuts(dep: Deposet, safety: Predicate) -> List[Cut]:
    """All consistent cuts violating a safety predicate (enumeration order).

    This is the "detect the bug, then look at where it can happen" step of
    the paper's Section 7 walkthrough (the global states G and H of
    Figure 4).
    """
    lat = CutLattice(dep)
    with TRACER.span("lattice.walk", states=dep.num_states):
        return [
            cut
            for cut in _iter_counted(lat)
            if not safety.evaluate(dep, cut)
        ]
