"""Exhaustive possibly/definitely detection by walking the cut lattice.

Ground truth for small traces; exponential in general (that is Lemma 1).

* ``possibly(pred)``  -- some consistent cut satisfies ``pred``;
* ``definitely(pred)`` -- every global sequence passes through a cut
  satisfying ``pred``, i.e. there is **no** global sequence all of whose
  cuts satisfy ``not pred``.  Global sequences may advance several
  processes at once, so this is evaluated with subset moves.

Every lattice expansion (consistent cut visited) is counted in the
``detection.lattice_states`` metric and -- when the flight recorder is on
-- emitted as a ``lattice.expand`` event, so detection cost is visible in
recordings and bench snapshots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut, CutLattice

__all__ = ["possibly_exhaustive", "definitely_exhaustive", "violating_cuts"]

_LATTICE_STATES = METRICS.counter("detection.lattice_states")
_LATTICE_WALKS = METRICS.counter("detection.lattice_walks")


def _iter_counted(lat: CutLattice):
    """Iterate consistent cuts, counting (and tracing) each expansion."""
    _LATTICE_WALKS.inc()
    for cut in lat.iter_consistent_cuts():
        _LATTICE_STATES.inc()
        if TRACER.enabled:
            TRACER.event("lattice.expand", cut=list(cut))
        yield cut


def possibly_exhaustive(dep: Deposet, pred: Predicate) -> Optional[Cut]:
    """The first consistent cut (in BFS order) satisfying ``pred``."""
    lat = CutLattice(dep)
    for cut in _iter_counted(lat):
        if pred.evaluate(dep, cut):
            return cut
    return None


def definitely_exhaustive(dep: Deposet, pred: Predicate) -> bool:
    """Does every global sequence hit a cut satisfying ``pred``?"""
    lat = CutLattice(dep)
    _LATTICE_WALKS.inc()

    def avoids(cut: Cut) -> bool:
        _LATTICE_STATES.inc()
        if TRACER.enabled:
            TRACER.event("lattice.expand", cut=list(cut), mode="sequence")
        return not pred.evaluate(dep, cut)

    return not lat.exists_satisfying_sequence(avoids)


def violating_cuts(dep: Deposet, safety: Predicate) -> List[Cut]:
    """All consistent cuts violating a safety predicate (BFS order).

    This is the "detect the bug, then look at where it can happen" step of
    the paper's Section 7 walkthrough (the global states G and H of
    Figure 4).
    """
    lat = CutLattice(dep)
    with TRACER.span("lattice.walk", states=dep.num_states):
        return [
            cut
            for cut in _iter_counted(lat)
            if not safety.evaluate(dep, cut)
        ]
