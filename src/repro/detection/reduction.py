"""The SAT -> SGSD reduction of Figure 1 (Lemma 1).

For a CNF formula ``b`` over variables ``x_1..x_m``:

* each variable gets its own process with two states -- ``x`` true, then
  ``x`` false (no messages anywhere, so every cut is consistent);
* one extra process ``P_{m+1}`` runs true -> false -> true;
* the SGSD predicate is ``B = b v x_{m+1}``.

Every global sequence must at some cut have ``P_{m+1}`` in its middle
(false) state -- local states cannot be skipped -- and at that cut ``B``
degenerates to ``b`` evaluated at the variable processes' current states.
Hence a satisfying global sequence exists iff ``b`` is satisfiable, and the
witness cut's variable states decode the satisfying assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.predicates.base import Predicate
from repro.predicates.boolean import And, Not, Or
from repro.predicates.local import LocalPredicate
from repro.sat.cnf import CNF
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = ["SGSDInstance", "sat_to_sgsd", "decode_assignment"]


@dataclass(frozen=True)
class SGSDInstance:
    """The deposet/predicate pair produced by the reduction."""

    deposet: Deposet
    predicate: Predicate
    num_vars: int

    @property
    def aux_proc(self) -> int:
        """Index of the extra process ``P_{m+1}``."""
        return self.num_vars


def _literal_predicate(lit: int) -> Predicate:
    proc = abs(lit) - 1
    var_true = LocalPredicate.var_true(proc, "x")
    return var_true if lit > 0 else Not(var_true)


def cnf_predicate(cnf: CNF) -> Predicate:
    """``b`` as a global predicate over the variable processes."""
    if not cnf.clauses:
        from repro.predicates.base import TRUE

        return TRUE
    return And(*(Or(*map(_literal_predicate, clause)) if clause else _false()
                 for clause in cnf.clauses))


def _false() -> Predicate:
    from repro.predicates.base import FALSE

    return FALSE


def sat_to_sgsd(cnf: CNF) -> SGSDInstance:
    """Build the Figure 1 instance for ``cnf``."""
    m = cnf.num_vars
    states: List[List[dict]] = [
        [{"x": True}, {"x": False}] for _ in range(m)
    ]
    states.append([{"x": True}, {"x": False}, {"x": True}])
    dep = Deposet(
        states,
        proc_names=[f"x{v}" for v in range(1, m + 1)] + ["aux"],
    )
    predicate = Or(cnf_predicate(cnf), LocalPredicate.var_true(m, "x"))
    return SGSDInstance(dep, predicate, m)


def decode_assignment(
    instance: SGSDInstance, sequence: Sequence[Cut]
) -> Optional[List[bool]]:
    """Extract the satisfying assignment from a witness sequence.

    Looks for a cut where the auxiliary process sits in its middle (false)
    state; the variable processes' positions there give the assignment
    (state 0 = true, state 1 = false).  Returns ``None`` if no such cut is
    on the sequence (then the sequence cannot be a valid witness).
    """
    for cut in sequence:
        if cut[instance.aux_proc] == 1:
            return [cut[v] == 0 for v in range(instance.num_vars)]
    return None
