"""Weak conjunctive predicate detection (Garg-Waldecker).

Detects *possibly(b_1 and b_2 and ... and b_n)* where ``b_i`` is local to
process ``i``: is there a **consistent global state** in which every ``b_i``
holds?  For a disjunctive safety predicate ``B = l_1 v ... v l_n`` the "bug"
is exactly the conjunction of the negations, so this detector drives both
bug detection (Section 7 of the paper) and exact verification of controller
output: a deposet satisfies ``B`` iff this detector finds nothing.

Algorithm (candidate elimination): keep one candidate state per process --
the earliest not-yet-eliminated state satisfying ``b_i``.  While two
candidates are causally ordered, the earlier one can belong to no satisfying
consistent cut (all earlier candidates of the later process were already
eliminated), so advance it.  When all candidates are pairwise concurrent
they form a witness cut; when a process runs out of candidates, no witness
exists.  Runs in O(n^2 * F) comparisons for F false states with O(1)
happened-before queries via the state-clock table.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.intervals import local_truth_table
from repro.trace.deposet import Deposet

__all__ = ["possibly_bad", "find_conjunctive_cut"]

Cut = Tuple[int, ...]


def find_conjunctive_cut(
    dep: Deposet, conjunct_truth: Sequence[np.ndarray]
) -> Optional[Cut]:
    """A consistent cut where every per-process boolean array is true.

    ``conjunct_truth[i][a]`` gives ``b_i`` at state ``a`` of process ``i``;
    an all-true array makes process ``i`` unconstrained.

    Returns the *least* such cut (the algorithm only ever advances past
    provably-excluded states), or ``None``.
    """
    n = dep.n
    if len(conjunct_truth) != n:
        raise ValueError(f"{len(conjunct_truth)} truth arrays for {n} processes")
    order = dep.order

    # Candidate index lists: positions where b_i holds, in execution order.
    positions: List[np.ndarray] = [
        np.flatnonzero(np.asarray(t, dtype=bool)) for t in conjunct_truth
    ]
    if any(len(p) == 0 for p in positions):
        return None
    ptr = [0] * n  # ptr[i]: index into positions[i]

    def cand(i: int) -> int:
        return int(positions[i][ptr[i]])

    # Processes whose candidate changed and must be re-compared.
    dirty: deque[int] = deque(range(n))
    in_dirty = [True] * n
    while dirty:
        i = dirty.popleft()
        in_dirty[i] = False
        advanced_any = False
        for j in range(n):
            if j == i:
                continue
            # Eliminate whichever of the pair is causally below the other.
            while True:
                ci, cj = cand(i), cand(j)
                if order.happened_before((i, ci), (j, cj)):
                    loser = i
                elif order.happened_before((j, cj), (i, ci)):
                    loser = j
                else:
                    break
                ptr[loser] += 1
                if ptr[loser] >= len(positions[loser]):
                    return None
                if not in_dirty[loser]:
                    dirty.append(loser)
                    in_dirty[loser] = True
                advanced_any = True
        if advanced_any and not in_dirty[i]:
            # i itself may have advanced; recheck it against everyone.
            dirty.append(i)
            in_dirty[i] = True

    return tuple(cand(i) for i in range(n))


def possibly_bad(dep: Deposet, pred: DisjunctivePredicate) -> Optional[Cut]:
    """The least consistent global state violating the disjunctive ``pred``.

    ``None`` means every consistent global state of ``dep`` satisfies
    ``pred`` -- i.e. every global sequence satisfies it, i.e. the deposet
    *satisfies B* in the paper's sense.  Control arrows of a controlled
    deposet are honoured (detection runs over the extended causality).
    """
    truth = local_truth_table(dep, pred)
    return find_conjunctive_cut(dep, [~t for t in truth])
