"""Weak conjunctive predicate detection (Garg-Waldecker).

Detects *possibly(b_1 and b_2 and ... and b_n)* where ``b_i`` is local to
process ``i``: is there a **consistent global state** in which every ``b_i``
holds?  For a disjunctive safety predicate ``B = l_1 v ... v l_n`` the "bug"
is exactly the conjunction of the negations, so this detector drives both
bug detection (Section 7 of the paper) and exact verification of controller
output: a deposet satisfies ``B`` iff this detector finds nothing.

Algorithm (candidate elimination): keep one candidate state per process --
the earliest not-yet-eliminated state satisfying ``b_i``.  While two
candidates are causally ordered, the earlier one can belong to no satisfying
consistent cut (all earlier candidates of the later process were already
eliminated), so advance it.  When all candidates are pairwise concurrent
they form a witness cut; when a process runs out of candidates, no witness
exists.

The sweep here is the *batched* form of that elimination: each round stacks
the n candidate clocks into one matrix and advances every losing candidate
past its **elimination bound** ``max_j V(cand_j)[i]`` in a single
``searchsorted`` jump (every true state at or below the bound is excluded
by the same argument that excludes the candidate).  Rounds repeat until no
candidate moves, which is exactly pairwise concurrency.  The fixpoint is
the same unique least satisfying cut as the one-comparison-at-a-time deque
walk (pinned against a pure-Python reference in
``tests/slicing/test_kernels.py``); the numpy batching removes the
O(n^2 * F) Python-level ``happened_before`` calls that dominated profiles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.predicates.disjunctive import DisjunctivePredicate
from repro.predicates.intervals import local_truth_table
from repro.trace.deposet import Deposet

__all__ = ["possibly_bad", "find_conjunctive_cut"]

Cut = Tuple[int, ...]


def find_conjunctive_cut(
    dep: Deposet, conjunct_truth: Sequence[np.ndarray]
) -> Optional[Cut]:
    """A consistent cut where every per-process boolean array is true.

    ``conjunct_truth[i][a]`` gives ``b_i`` at state ``a`` of process ``i``;
    an all-true array makes process ``i`` unconstrained.

    Returns the *least* such cut (the algorithm only ever advances past
    provably-excluded states), or ``None``.
    """
    n = dep.n
    if len(conjunct_truth) != n:
        raise ValueError(f"{len(conjunct_truth)} truth arrays for {n} processes")
    order = dep.order
    clocks = [order.clock_matrix(i) for i in range(n)]

    # Candidate index lists: positions where b_i holds, in execution order.
    positions: List[np.ndarray] = [
        np.flatnonzero(np.asarray(t, dtype=bool)) for t in conjunct_truth
    ]
    if any(len(p) == 0 for p in positions):
        return None
    cand = np.fromiter((int(p[0]) for p in positions), dtype=np.int64, count=n)

    # Batched elimination rounds.  Soundness of the jump: if
    # ``a <= V(cand_j)[i]`` then ``(i, a) -> (j, cand_j)``; since every
    # true state of j below cand_j is already eliminated, any satisfying
    # cut has ``cut[j] >= cand_j`` and clock monotonicity rules (i, a)
    # out of it.  So every true state of i at or below
    # ``bound[i] = max_{j != i} V(cand_j)[i]`` is eliminated at once.
    while True:
        clk = np.empty((n, n), dtype=np.int64)
        for j in range(n):
            clk[j] = clocks[j][cand[j]]
        # V(cand_i)[i] == cand_i would self-eliminate; mask the diagonal.
        np.fill_diagonal(clk, -1)
        bound = clk.max(axis=0)
        losers = np.flatnonzero(cand <= bound)
        if losers.size == 0:
            # Quiescent: cand[i] > V(cand_j)[i] for all i != j -- pairwise
            # concurrency, i.e. a consistent all-true cut; minimality holds
            # because only excluded states were ever skipped.
            return tuple(int(c) for c in cand)
        for i in losers:
            k = int(np.searchsorted(positions[i], bound[i] + 1, side="left"))
            if k >= len(positions[i]):
                return None
            cand[i] = positions[i][k]


def possibly_bad(dep: Deposet, pred: DisjunctivePredicate) -> Optional[Cut]:
    """The least consistent global state violating the disjunctive ``pred``.

    ``None`` means every consistent global state of ``dep`` satisfies
    ``pred`` -- i.e. every global sequence satisfies it, i.e. the deposet
    *satisfies B* in the paper's sense.  Control arrows of a controlled
    deposet are honoured (detection runs over the extended causality).
    """
    truth = local_truth_table(dep, pred)
    return find_conjunctive_cut(dep, [~t for t in truth])
