"""Predicate detection over traced computations.

The active-debugging cycle starts by *detecting* a bug -- a global state
where a safety predicate fails.  This package provides:

* :func:`possibly_bad` -- the efficient weak-conjunctive detector
  (Garg-Waldecker style) used both for bug detection and for verifying
  controller output: for a disjunctive ``B = l_1 v ... v l_n`` it finds a
  consistent global state where *all* ``l_i`` are false, if one exists.
* :func:`possibly` / :func:`definitely` -- the engine front door:
  ``engine="auto"`` routes regular predicates to the polynomial slicing
  engine (:mod:`repro.slicing`) and everything else to the exhaustive
  walk; ``exhaustive``/``slice``/``parallel`` force a choice.
* :func:`possibly_exhaustive` / :func:`definitely_exhaustive` -- lattice
  BFS ground truth for small traces.
* :class:`IncrementalDetector` -- the streaming variant of the
  conjunctive detector: polls a growing
  :class:`~repro.store.TraceStore` and answers over the current prefix
  without per-poll rescans (``repro watch``).
* :mod:`repro.detection.sgsd` -- satisfying-global-sequence detection, the
  NP-complete problem of Lemma 1 (exhaustive, subset-move semantics).
* :mod:`repro.detection.reduction` -- the SAT -> SGSD mapping of Figure 1.
"""

from repro.detection.conjunctive import possibly_bad, find_conjunctive_cut
from repro.detection.engine import ENGINES, definitely, possibly
from repro.detection.incremental import IncrementalDetector, WatchResult
from repro.detection.lattice_walk import (
    possibly_exhaustive,
    definitely_exhaustive,
    violating_cuts,
)
from repro.detection.sgsd import sgsd, sgsd_feasible
from repro.detection.reduction import sat_to_sgsd, decode_assignment, SGSDInstance
from repro.detection.online import Violation, ViolationMonitor

__all__ = [
    "possibly_bad",
    "find_conjunctive_cut",
    "IncrementalDetector",
    "WatchResult",
    "ENGINES",
    "possibly",
    "definitely",
    "possibly_exhaustive",
    "definitely_exhaustive",
    "violating_cuts",
    "sgsd",
    "sgsd_feasible",
    "sat_to_sgsd",
    "decode_assignment",
    "SGSDInstance",
    "Violation",
    "ViolationMonitor",
]
