"""Satisfying Global Sequence Detection (SGSD) -- Lemma 1's problem.

Given a deposet and a global predicate ``B``, decide whether some global
sequence satisfies ``B`` at every one of its cuts, and produce a witness
sequence.  NP-complete for general ``B`` (the paper reduces SAT to it), so
this implementation is an exhaustive memoised search over the consistent-cut
lattice with subset moves; it is meant for small instances -- the efficient
path for disjunctive predicates is :mod:`repro.core.offline`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut, CutLattice

__all__ = ["sgsd", "sgsd_feasible"]


def sgsd(dep: Deposet, pred: Predicate, moves: str = "subset") -> Optional[List[Cut]]:
    """A global sequence satisfying ``pred`` everywhere, or ``None``.

    The returned sequence starts at ``bottom``, ends at ``top``, and every
    cut on it is consistent and satisfies ``pred``.  With the default
    ``moves="subset"`` each step advances a nonempty subset of processes by
    one state (the paper's sequence semantics); ``moves="single"`` restricts
    to one process per step, which is the class of sequences a control
    strategy can enforce (simultaneity is not implementable in an
    asynchronous system).
    """
    lat = CutLattice(dep)
    return lat.find_satisfying_sequence(
        lambda cut: pred.evaluate(dep, cut), moves=moves
    )


def sgsd_feasible(dep: Deposet, pred: Predicate, moves: str = "subset") -> bool:
    """Does a satisfying global sequence exist?  (Lemma 1's decision form.)"""
    return sgsd(dep, pred, moves=moves) is not None
