"""Engine selection for possibly/definitely detection.

One front door over the two detection implementations:

* ``exhaustive`` -- the lattice walkers in
  :mod:`repro.detection.lattice_walk`: ground truth, any predicate,
  exponential in processes;
* ``slice`` -- the polynomial slicing engine in
  :mod:`repro.slicing.detect`: regular predicates only
  (``pred.is_regular()``);
* ``parallel`` -- the slicing engine with multi-core chunk-parallel truth
  tables (:mod:`repro.slicing.parallel`): compiled-IR conjuncts are
  evaluated by worker processes over shared-memory columns, opaque
  closures fall back to fork-inherited or thread workers.  Tune with
  ``max_workers``/``chunk_states``/``backend`` kwargs;
* ``auto`` (default) -- routed through the static predicate classifier
  (:func:`repro.analysis.classifier.classify`): ``slice`` when the
  derived class is regular, else ``exhaustive``.  The classifier reuses
  the same normaliser the slicing engine accepts
  (:func:`repro.slicing.regular.regular_form`), so auto can never hand a
  non-regular predicate to ``slice`` -- soundness is pinned by
  ``tests/analysis/test_engine_routing.py``.  The fallback increments
  ``detection.slice.fallbacks`` so workloads silently dropping off the
  fast path are visible in metrics.

Explicitly requesting ``slice``/``parallel`` for a non-regular predicate
raises :class:`~repro.errors.NotRegularError` rather than silently
changing complexity class.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.metrics import METRICS
from repro.predicates.base import Predicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = ["ENGINES", "possibly", "definitely"]

ENGINES: Tuple[str, ...] = ("auto", "exhaustive", "slice", "parallel")

_SLICE_FALLBACKS = METRICS.counter("detection.slice.fallbacks")


def _resolve(pred: Predicate, engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine != "auto":
        return engine
    # Route via the classifier; lazy import keeps detection importable
    # without dragging the whole analysis subsystem in at module load.
    from repro.analysis.classifier import classify

    which = classify(pred).engine
    if which != "slice":
        _SLICE_FALLBACKS.inc()
    return which


def possibly(
    dep: Deposet, pred: Predicate, engine: str = "auto", **kwargs
) -> Optional[Cut]:
    """A consistent cut satisfying ``pred``, or ``None``.

    All engines agree on ``None``-ness; the witness cut may differ (the
    slice engine returns the lattice-least witness, the exhaustive engine
    the first in enumeration order).  ``kwargs`` pass through to the
    selected engine (e.g. ``max_workers``/``chunk_states``/``backend``
    for ``parallel``).
    """
    which = _resolve(pred, engine)
    if which == "exhaustive":
        from repro.detection.lattice_walk import possibly_exhaustive

        return possibly_exhaustive(dep, pred, **kwargs)
    if which == "slice":
        from repro.slicing.detect import possibly_slice

        return possibly_slice(dep, pred, **kwargs)
    from repro.slicing.parallel import possibly_parallel

    return possibly_parallel(dep, pred, **kwargs)


def definitely(
    dep: Deposet, pred: Predicate, engine: str = "auto", **kwargs
) -> bool:
    """Does every global sequence pass through a cut satisfying ``pred``?

    Subset-move semantics in every engine; verdicts are identical.
    """
    which = _resolve(pred, engine)
    if which == "exhaustive":
        from repro.detection.lattice_walk import definitely_exhaustive

        return definitely_exhaustive(dep, pred, **kwargs)
    if which == "slice":
        from repro.slicing.detect import definitely_slice

        return definitely_slice(dep, pred, **kwargs)
    from repro.slicing.parallel import definitely_parallel

    return definitely_parallel(dep, pred, **kwargs)
