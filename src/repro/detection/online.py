"""On-line (run-time) weak-conjunctive violation detection.

The passive half of the paper's debugging cycle, executed *live*: a
monitor observes a running system (via the simulator's
:class:`~repro.sim.system.Observer` hook), maintains vector clocks, and
detects -- while the run is still in progress -- every consistent global
state in which all local conditions are false.  This is the classic
Garg-Waldecker weak-conjunctive-predicate detector in its on-line,
checker-process form: each process contributes a queue of candidate
(false) states stamped with vector clocks; whenever two queue heads are
causally ordered the earlier one is eliminated; when the heads are pairwise
concurrent they form a violating cut.

The monitor is deliberately the mirror image of
:class:`~repro.core.online.OnlineDisjunctiveControl`: same per-process
local conditions, but *watching* instead of *blocking* -- run both to see
detection report nothing once control is active.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.causality.vector_clock import VectorClock
from repro.errors import OnlineControlError
from repro.sim.system import Observer

__all__ = ["Violation", "ViolationMonitor"]

LocalCondition = Callable[[Dict[str, Any]], bool]


@dataclass(frozen=True)
class Violation:
    """One detected violating global state."""

    cut: Tuple[int, ...]
    detected_at: float


class ViolationMonitor(Observer):
    """Detects cuts where **every** local condition is false, on-line.

    Parameters
    ----------
    conditions:
        ``conditions[i]`` is ``l_i`` over ``P_i``'s variables; a violation
        is a consistent global state with all ``l_i`` false (the negation
        of the disjunction ``l_1 v ... v l_n``).

    After (or during) a run, ``violations`` holds the disjoint witnesses
    found, in causal order; ``first`` is the least one -- it equals
    ``possibly_bad`` on the recorded trace of the same run.
    """

    def __init__(self, conditions: List[LocalCondition]):
        self.conditions = list(conditions)
        self.n = len(conditions)
        self.violations: List[Violation] = []
        self._clocks: List[VectorClock] = []
        #: clock of every past state, per process (control-merge lookups)
        self._history: List[List[VectorClock]] = [[] for _ in range(self.n)]
        self._send_clocks: Dict[int, VectorClock] = {}
        #: control-induced merges waiting for the target's next event
        self._pending_merge: List[List[VectorClock]] = [[] for _ in range(self.n)]
        self._queues: List[Deque[Tuple[int, VectorClock]]] = [
            deque() for _ in range(self.n)
        ]

    # -- wiring ----------------------------------------------------------------

    def attach(self, system) -> None:
        super().attach(system)
        if self.n != system.n:
            raise OnlineControlError(
                f"{self.n} conditions for {system.n} processes"
            )
        for i in range(self.n):
            clock = VectorClock.zero(self.n).tick(i)  # state 0's clock
            self._clocks.append(clock)
            self._history[i].append(clock)
            if not self.conditions[i](system.recorder.current_vars(i)):
                self._queues[i].append((0, clock))
        self._sweep()

    @property
    def first(self) -> Optional[Tuple[int, ...]]:
        return self.violations[0].cut if self.violations else None

    # -- observation --------------------------------------------------------------

    def on_control(self, src_proc, dst_proc, src_state) -> None:
        # "entered" semantics: the message proves enter(src_state) precedes
        # dst's next entered state, i.e. src_state's *predecessor* completed
        # before it -- merge that predecessor's clock (no content when the
        # sender was still in its start state).
        if src_state >= 1:
            self._pending_merge[dst_proc].append(
                self._history[src_proc][src_state - 1]
            )

    def on_event(self, proc, index, vars, kind, msg_uid=None) -> None:
        clock = self._clocks[proc].tick(proc)
        if kind == "receive" and msg_uid is not None:
            sender_clock = self._send_clocks.pop(msg_uid, None)
            if sender_clock is not None:
                clock = clock.merge(sender_clock)
        for merged in self._pending_merge[proc]:
            clock = clock.merge(merged)
        self._pending_merge[proc].clear()
        self._clocks[proc] = clock
        self._history[proc].append(clock)
        if kind == "send" and msg_uid is not None:
            self._send_clocks[msg_uid] = clock
        if not self.conditions[proc](vars):
            self._queues[proc].append((index, clock))
            self._sweep()

    # -- the checker ---------------------------------------------------------------

    def _heads(self) -> Optional[List[Tuple[int, VectorClock]]]:
        if any(not q for q in self._queues):
            return None
        return [q[0] for q in self._queues]

    def _sweep(self) -> None:
        """Run candidate elimination until a cut is found or a queue dries."""
        while True:
            heads = self._heads()
            if heads is None:
                return
            eliminated = False
            for i in range(self.n):
                ai, _ = heads[i]
                for j in range(self.n):
                    if i == j:
                        continue
                    _, vj = heads[j]
                    if vj[i] >= ai:  # state ai on P_i precedes head_j: drop it
                        self._queues[i].popleft()
                        eliminated = True
                        break
                if eliminated:
                    break
            if eliminated:
                continue
            # pairwise concurrent: a violating consistent global state
            cut = tuple(heads[i][0] for i in range(self.n))
            self.violations.append(
                Violation(cut=cut, detected_at=self.system.queue.now)
            )
            for q in self._queues:
                q.popleft()  # continue looking for disjoint later witnesses
