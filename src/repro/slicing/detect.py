"""Polynomial possibly/definitely detection via computation slicing.

Drop-in counterparts of the exhaustive walkers in
:mod:`repro.detection.lattice_walk`, for predicates that normalise into the
regular (conjunctive) class -- :func:`repro.slicing.regular.regular_form`
decides; outside the class both entry points raise
:class:`~repro.errors.NotRegularError` so the engine dispatcher can fall
back.

* :func:`possibly_slice` -- the least satisfying cut, straight from the
  slice's candidate elimination.  No lattice enumeration at all.
* :func:`definitely_slice` -- "every global sequence hits a satisfying
  cut", i.e. **no** subset-move path ``bottom -> top`` through
  non-satisfying cuts.  The search is pruned with the slice's extreme cuts
  ``W`` (least) and ``M`` (greatest):

  - every cut with some component ``> M_i`` is non-satisfying (``M`` upper-
    bounds all satisfying cuts) **and** can reach ``top`` through such cuts
    only: joining it with the consistent cuts of any event linearisation
    yields a single-move path to ``top`` that never leaves the zone (joins
    of consistent cuts are consistent, and components never decrease).  So
    the DFS stops with a verdict the moment it crosses above ``M`` --
    searching only the ``[bottom, M]`` box instead of the whole lattice;
  - trivially, if ``bottom`` or ``top`` satisfies, every sequence does.

Metrics (all under ``detection.slice.*``):

* ``walks``      -- +1 per public call, mirroring ``detection.lattice_walks``;
* ``states``     -- work units: one per *local* state whose conjunct was
  **actually evaluated** (truth-table build: unconstrained processes and
  the constant-false short-circuit contribute nothing) plus one per
  *global* cut the search materialised.  The serial and parallel engines
  charge identically (see :func:`_table_states`; contract pinned in
  ``tests/detection/test_walk_counters.py``).  Comparable against
  ``detection.lattice_states`` -- both count predicate-evaluation work --
  which is the E14 ratio;
* ``fallbacks``  -- +1 per :class:`NotRegularError` raised.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import NotRegularError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.predicates.base import Predicate
from repro.slicing.regular import RegularForm, regular_form
from repro.slicing.slice import ComputationSlice, compute_slice
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut, CutLattice, final_cut, initial_cut

__all__ = ["possibly_slice", "definitely_slice", "slice_of"]

_SLICE_WALKS = METRICS.counter("detection.slice.walks")
_SLICE_STATES = METRICS.counter("detection.slice.states")
_SLICE_FALLBACKS = METRICS.counter("detection.slice.fallbacks")


def _require_regular(pred: Predicate) -> RegularForm:
    form = regular_form(pred)
    if form is None:
        _SLICE_FALLBACKS.inc()
        raise NotRegularError(
            f"{pred!r} does not normalise into a conjunction of per-process "
            f"local predicates; use the exhaustive engine"
        )
    return form


def _table_states(form: RegularForm, dep: Deposet) -> int:
    """Work units of one truth-table build over ``dep``.

    One per local state whose conjunct is actually evaluated: only the
    processes named in ``form.conjuncts`` count (unconstrained rows are a
    single ``np.ones``), and a constant-false short-circuit builds no
    tables at all, so it counts zero.  Both the serial and the parallel
    driver charge exactly this.
    """
    if form.constants_false(dep):
        return 0
    counts = dep.state_counts
    return sum(counts[i] for i in form.conjuncts)


def slice_of(
    dep: Deposet,
    pred: Predicate,
    *,
    tables: Optional[Sequence[np.ndarray]] = None,
) -> ComputationSlice:
    """The computation slice of ``dep`` w.r.t. regular ``pred``.

    ``tables`` short-circuits the truth-table build (the parallel driver
    precomputes them); counted work then covers only the sweeps.
    Raises :class:`NotRegularError` outside the regular class, and
    ``ValueError`` when the predicate constrains a process ``dep`` lacks
    -- also when precomputed ``tables`` are passed, so the serial and
    parallel engines reject malformed input identically.
    """
    form = _require_regular(pred)
    form.validate_for(dep)
    if tables is None:
        tables = form.truth_tables(dep)
        _SLICE_STATES.inc(_table_states(form, dep))
    return compute_slice(dep, tables)


def possibly_slice(
    dep: Deposet,
    pred: Predicate,
    *,
    tables: Optional[Sequence[np.ndarray]] = None,
) -> Optional[Cut]:
    """The least consistent cut satisfying ``pred``, or ``None``.

    Same contract as ``possibly_exhaustive`` (a witness cut or ``None``),
    except the witness is the lattice-least one rather than the first in
    enumeration order.  Polynomial; never enumerates the lattice.
    """
    _SLICE_WALKS.inc()
    with TRACER.span("slice.possibly", states=dep.num_states):
        sl = slice_of(dep, pred, tables=tables)
        if sl.least is not None:
            _SLICE_STATES.inc(1)
            if TRACER.enabled:
                TRACER.event("slice.witness", cut=list(sl.least))
        return sl.least


def definitely_slice(
    dep: Deposet,
    pred: Predicate,
    *,
    tables: Optional[Sequence[np.ndarray]] = None,
) -> bool:
    """Does every global sequence hit a cut satisfying ``pred``?

    Subset-move semantics, identical to ``definitely_exhaustive``; the
    search space is pruned to the ``[bottom, greatest-satisfying-cut]``
    box (see module docstring for the zone argument).
    """
    _SLICE_WALKS.inc()
    with TRACER.span("slice.definitely", states=dep.num_states):
        sl = slice_of(dep, pred, tables=tables)
        return _definitely_from_slice(sl)


def _definitely_from_slice(sl: ComputationSlice) -> bool:
    dep = sl.dep
    bottom = initial_cut(dep)
    top = final_cut(dep)
    trace_on = TRACER.enabled

    if sl.empty:
        # No satisfying cut anywhere: no sequence can hit one.
        return False
    if sl.in_tables(bottom) or sl.in_tables(top):
        # Every global sequence contains bottom and top.
        _SLICE_STATES.inc(2)
        return True

    M = sl.greatest
    assert M is not None
    lat = CutLattice(dep)
    n = dep.n

    # Memoised DFS from bottom over non-satisfying consistent cuts.  A cut
    # strictly above M in some component is an escape: from there, top is
    # reachable through non-satisfying cuts only (zone argument), so an
    # avoiding sequence exists and the verdict is False.
    visited = {bottom}
    stack = [bottom]
    verdict = True
    while stack:
        cut = stack.pop()
        if trace_on:
            TRACER.event("slice.expand", cut=list(cut))
        if cut == top or any(c > M[i] for i, c in enumerate(cut)):
            verdict = False
            break
        fresh = [nxt for nxt in lat.subset_successors(cut) if nxt not in visited]
        if not fresh:
            continue
        visited.update(fresh)
        satisfied = sl.in_tables_many(fresh)
        for nxt, sat in zip(fresh, satisfied):
            if not sat:
                stack.append(nxt)
            elif trace_on:
                TRACER.event("slice.blocked", cut=list(nxt))
    _SLICE_STATES.inc(len(visited))
    return verdict
