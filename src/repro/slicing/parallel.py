"""Multi-core parallel driver for the slicing engine.

The slicing engine's dominant cost on long traces is embarrassingly
parallel: evaluating each process's local conjunct over its state sequence
(the truth tables).  This driver splits that work into per-process
*state-interval chunks*, fans the chunks out over worker processes (or
threads), and hands the assembled tables to the serial sweeps/search in
:mod:`repro.slicing.detect` -- so parallel and serial verdicts agree by
construction of everything past the tables.

Chunk protocol
--------------
Workers **return** ``(proc, start, stop, packed_bits)`` results -- a
``np.packbits`` of the chunk's truth row -- and the parent assembles the
tables from what comes back.  Nothing is communicated through shared
closure state: an earlier revision filled the tables by in-place mutation
inside a closure, which a process pool silently cannot propagate (children
mutate their own copies; the parent kept its ``np.ones`` initialisation).
The regression for that bug lives in ``tests/slicing/test_parallel_process.py``.

Backends
--------
Which worker backend runs is decided per call (``backend="auto"``):

* **serial** -- ``workers <= 1`` or a single chunk: evaluate inline, using
  the same vectorised kernels as the serial engine.
* **shm** -- the conjuncts compile to the picklable expression IR
  (:meth:`RegularForm.compiled`) and every referenced variable packs into
  a native-dtype column: the columnar ``TraceStore``/``Deposet`` arrays
  are copied once into one ``multiprocessing.shared_memory`` segment,
  workers attach zero-copy, and each task ships only
  ``(expr, proc, start, stop)``.
* **tasks** -- compiled IR but some column is object-dtype (strings,
  ``None``\\ s, mixed types): each task pickles its narrowed column chunk.
  Correct for any executor, including a caller-supplied process pool.
* **fork** -- opaque conjuncts (closures, which do not pickle) on a
  platform with ``fork``: the deposet and form are published in a module
  global just before the pool starts, so children inherit them through
  copy-on-write pages and tasks are bare ``(proc, start, stop)`` triples.
* **threads** -- opaque conjuncts and no ``fork``: the pre-existing
  thread-pool path (correct always; little wall-time gain under the GIL).

A caller-supplied ``executor`` is used as-is with returned-result tasks:
compiled predicates work on thread *and* process pools; opaque closures
work on thread pools and raise the executor's pickle error -- loudly, not
silently -- on process pools.

Chunk size defaults to whole processes when traces are short, and splits a
process's sequence into ``chunk_states``-sized intervals when long, so n=2
with 10^5 states still fans out.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.predicates.base import Predicate
from repro.predicates.expr import Expr
from repro.slicing.detect import (
    _require_regular,
    _table_states,
    definitely_slice,
    possibly_slice,
    _SLICE_STATES,
)
from repro.slicing.regular import RegularForm
from repro.store.columns import ColumnBlock
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = [
    "parallel_truth_tables",
    "possibly_parallel",
    "definitely_parallel",
    "BACKENDS",
]

_PARALLEL_CHUNKS = METRICS.counter("detection.slice.parallel_chunks")

DEFAULT_CHUNK_STATES = 256

BACKENDS = ("auto", "serial", "threads", "shm", "tasks", "fork")

ChunkJob = Tuple[int, int, int]
ChunkResult = Tuple[int, int, int, np.ndarray]


def _chunks(dep: Deposet, chunk_states: int) -> List[ChunkJob]:
    """``(proc, start, stop)`` state intervals covering the whole deposet."""
    out: List[ChunkJob] = []
    for i, m in enumerate(dep.state_counts):
        for start in range(0, m, chunk_states):
            out.append((i, start, min(start + chunk_states, m)))
    return out


# -- chunk kernels (every backend funnels through these) ---------------------


def _chunk_bits(
    dep: Deposet, form: RegularForm, proc: int, start: int, stop: int
) -> np.ndarray:
    """One chunk's truth row, in-process: IR kernel when available."""
    local = form.conjuncts[proc]
    if local.expr is not None:
        block = dep.column_block(proc, sorted(local.expr.var_names()))
        return local.expr.eval_block(block, start, stop)
    return np.fromiter(
        (local.holds_at(dep, a) for a in range(start, stop)),
        dtype=bool,
        count=stop - start,
    )


def _pack(proc: int, start: int, stop: int, bits: np.ndarray) -> ChunkResult:
    return proc, start, stop, np.packbits(bits)


def _eval_expr_chunk(
    expr: Expr, block: ColumnBlock, proc: int, start: int, stop: int
) -> ChunkResult:
    """Task for the ``tasks`` backend / caller-supplied executors.

    ``block`` is the chunk's narrowed column block (row 0 = state
    ``start``); everything in the argument tuple pickles, so this runs on
    thread and process pools alike.
    """
    return _pack(proc, start, stop, expr.eval_block(block, 0, stop - start))


def _eval_closure_chunk(
    dep: Deposet, form: RegularForm, job: ChunkJob
) -> ChunkResult:
    """Task for thread pools (and the loud-failure path of process pools
    handed opaque closures -- the lambda inside ``form`` does not pickle)."""
    proc, start, stop = job
    return _pack(proc, start, stop, _chunk_bits(dep, form, proc, start, stop))


# -- fork backend: children inherit the context through copy-on-write --------

_FORK_CTX: Optional[Tuple[Deposet, RegularForm]] = None
_FORK_LOCK = threading.Lock()


def _eval_fork_chunk(job: ChunkJob) -> ChunkResult:
    ctx = _FORK_CTX
    assert ctx is not None, "fork worker started without a published context"
    dep, form = ctx
    proc, start, stop = job
    return _pack(proc, start, stop, _chunk_bits(dep, form, proc, start, stop))


# -- shm backend: workers attach to one shared column segment ----------------

ShmLayout = List[Tuple[int, str, str, int, int]]  # (proc, var, dtype, offset, m)

_WORKER_BLOCKS: Optional[Dict[int, ColumnBlock]] = None
_WORKER_SHM = None


def _attach_shm(name: str, layout: ShmLayout, counts: Dict[int, int]) -> None:
    """Pool initializer: map the parent's column segment into this worker."""
    global _WORKER_BLOCKS, _WORKER_SHM
    from multiprocessing import shared_memory

    # Attaching registers the segment with the resource tracker again
    # (Python < 3.13 has no track=False), but the tracker is shared across
    # the process tree and its cache is a set, so the duplicate collapses;
    # the parent's unlink() balances the single entry.  Unregistering here
    # would over-remove and make the tracker log spurious KeyErrors.
    shm = shared_memory.SharedMemory(name=name)
    _WORKER_SHM = shm
    columns: Dict[int, Dict[str, np.ndarray]] = {}
    for proc, var, dtype, offset, m in layout:
        columns.setdefault(proc, {})[var] = np.ndarray(
            (m,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    _WORKER_BLOCKS = {
        proc: ColumnBlock(m=counts[proc], columns=columns.get(proc, {}))
        for proc in counts
    }


def _eval_shm_chunk(expr: Expr, proc: int, start: int, stop: int) -> ChunkResult:
    assert _WORKER_BLOCKS is not None, "shm worker started without attaching"
    return _pack(proc, start, stop, expr.eval_block(_WORKER_BLOCKS[proc], start, stop))


def _shm_segment(
    blocks: Dict[int, ColumnBlock]
) -> Tuple[Any, ShmLayout]:
    """Copy every native column into one fresh shared-memory segment."""
    from multiprocessing import shared_memory

    layout: ShmLayout = []
    offset = 0
    specs: List[Tuple[int, str, np.ndarray, int]] = []
    for proc in sorted(blocks):
        for var, col in sorted(blocks[proc].columns.items()):
            offset = -(-offset // 16) * 16  # keep every array 16-byte aligned
            specs.append((proc, var, col, offset))
            layout.append((proc, var, col.dtype.str, offset, len(col)))
            offset += col.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for proc, var, col, off in specs:
        dst = np.ndarray((len(col),), dtype=col.dtype, buffer=shm.buf, offset=off)
        dst[:] = col
    return shm, layout


# -- driver ------------------------------------------------------------------


def _assemble(
    tables: List[np.ndarray], results: Iterable[ChunkResult]
) -> List[np.ndarray]:
    for proc, start, stop, packed in results:
        tables[proc][start:stop] = np.unpackbits(
            packed, count=stop - start
        ).astype(bool)
    return tables


def _pick_backend(
    backend: str, form: RegularForm, blocks: Optional[Dict[int, ColumnBlock]]
) -> str:
    compiled = form.compiled() is not None
    if backend != "auto":
        if backend in ("shm", "tasks") and not compiled:
            raise ValueError(
                f"backend={backend!r} needs conjuncts that compile to the "
                f"expression IR; these are opaque closures"
            )
        if backend == "shm" and (
            blocks is None or not all(b.all_native for b in blocks.values())
        ):
            raise ValueError(
                "backend='shm' needs native-dtype columns; some referenced "
                "variable only packs as an object column"
            )
        if backend == "fork" and not _fork_available():
            raise ValueError("backend='fork' is unavailable on this platform")
        return backend
    if compiled:
        if blocks is not None and all(b.all_native for b in blocks.values()):
            return "shm"
        return "tasks"
    if _fork_available():
        return "fork"
    return "threads"


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def parallel_truth_tables(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
    backend: str = "auto",
) -> List[np.ndarray]:
    """Truth tables for regular ``pred``, built chunk-parallel.

    Bitwise identical to ``regular_form(pred).truth_tables(dep)``; raises
    :class:`~repro.errors.NotRegularError` outside the regular class and
    the same ``ValueError`` as the serial path on malformed predicates.
    ``backend`` picks the worker strategy (see module docstring); an
    explicit ``executor`` overrides it and receives self-contained
    result-returning tasks.
    """
    form = _require_regular(pred)
    form.validate_for(dep)
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if form.constants_false(dep):
        # Zero table work: the accounting contract charges nothing here,
        # exactly like the serial engine.
        return [np.zeros(m, dtype=bool) for m in dep.state_counts]

    tables = [np.ones(m, dtype=bool) for m in dep.state_counts]
    jobs = [
        (i, start, stop)
        for (i, start, stop) in _chunks(dep, chunk_states)
        if i in form.conjuncts
    ]
    _SLICE_STATES.inc(_table_states(form, dep))
    if not jobs:
        return tables
    _PARALLEL_CHUNKS.inc(len(jobs))

    compiled = form.compiled()
    blocks: Optional[Dict[int, ColumnBlock]] = None
    if compiled is not None:
        blocks = {
            i: dep.column_block(i, sorted(compiled[i].var_names()))
            for i in form.conjuncts
        }

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)

    with TRACER.span(
        "slice.tables", chunks=len(jobs), chunk_states=chunk_states
    ):
        if executor is not None:
            return _assemble(tables, _run_on_executor(
                executor, dep, form, compiled, blocks, jobs
            ))
        chosen = _pick_backend(backend, form, blocks)
        if chosen != "serial" and (workers <= 1 or len(jobs) <= 1):
            chosen = "serial"
        if chosen == "serial":
            results = (
                _pack(i, s, t, _chunk_bits(dep, form, i, s, t))
                for i, s, t in jobs
            )
            return _assemble(tables, list(results))
        if chosen == "threads":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return _assemble(
                    tables,
                    list(pool.map(
                        lambda job: _eval_closure_chunk(dep, form, job), jobs
                    )),
                )
        if chosen == "fork":
            import multiprocessing

            global _FORK_CTX
            ctx = multiprocessing.get_context("fork")
            with _FORK_LOCK:
                _FORK_CTX = (dep, form)
                try:
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=ctx
                    ) as pool:
                        results = list(pool.map(_eval_fork_chunk, jobs))
                finally:
                    _FORK_CTX = None
            return _assemble(tables, results)
        assert compiled is not None and blocks is not None
        if chosen == "tasks":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _eval_expr_chunk,
                        compiled[i],
                        blocks[i].narrow(start, stop),
                        i,
                        start,
                        stop,
                    )
                    for i, start, stop in jobs
                ]
                return _assemble(tables, [f.result() for f in futures])
        # chosen == "shm"
        shm, layout = _shm_segment(blocks)
        try:
            counts = {i: dep.state_counts[i] for i in blocks}
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_attach_shm,
                initargs=(shm.name, layout, counts),
            ) as pool:
                futures = [
                    pool.submit(_eval_shm_chunk, compiled[i], i, start, stop)
                    for i, start, stop in jobs
                ]
                results = [f.result() for f in futures]
        finally:
            shm.close()
            shm.unlink()
        return _assemble(tables, results)


def _run_on_executor(
    executor: Executor,
    dep: Deposet,
    form: RegularForm,
    compiled: Optional[Dict[int, Expr]],
    blocks: Optional[Dict[int, ColumnBlock]],
    jobs: List[ChunkJob],
) -> List[ChunkResult]:
    """Run the chunk tasks on a caller-supplied executor.

    Compiled conjuncts ship as (expr, column chunk) tasks -- picklable, so
    thread and process pools both work.  Opaque closures ship as closure
    tasks: fine on thread pools; a process pool raises its pickle error
    instead of silently returning wrong tables.
    """
    if compiled is not None:
        assert blocks is not None
        futures = [
            executor.submit(
                _eval_expr_chunk,
                compiled[i],
                blocks[i].narrow(start, stop),
                i,
                start,
                stop,
            )
            for i, start, stop in jobs
        ]
        return [f.result() for f in futures]
    futures = [
        executor.submit(_eval_closure_chunk, dep, form, job) for job in jobs
    ]
    return [f.result() for f in futures]


def possibly_parallel(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
    backend: str = "auto",
) -> Optional[Cut]:
    """:func:`~repro.slicing.detect.possibly_slice` with chunk-parallel
    truth tables.  Verdict and witness identical to the serial engine."""
    tables = parallel_truth_tables(
        dep,
        pred,
        max_workers=max_workers,
        chunk_states=chunk_states,
        executor=executor,
        backend=backend,
    )
    return possibly_slice(dep, pred, tables=tables)


def definitely_parallel(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
    backend: str = "auto",
) -> bool:
    """:func:`~repro.slicing.detect.definitely_slice` with chunk-parallel
    truth tables.  Verdict identical to the serial engine."""
    tables = parallel_truth_tables(
        dep,
        pred,
        max_workers=max_workers,
        chunk_states=chunk_states,
        executor=executor,
        backend=backend,
    )
    return definitely_slice(dep, pred, tables=tables)
