"""Work-splitting parallel driver for the slicing engine.

The slicing engine's dominant cost on long traces is embarrassingly
parallel: evaluating each process's local conjunct over its state sequence
(the truth tables).  This driver splits that work into per-process
*state-interval chunks* and fans them out over ``concurrent.futures``,
then hands the assembled tables to the serial sweeps/search in
:mod:`repro.slicing.detect` -- so parallel and serial verdicts agree by
construction of everything past the tables.

Executor choice: **threads**, not processes.  Local predicates are closures
(``LocalPredicate.fn`` is typically a lambda over state vars) and do not
pickle, so a process pool cannot ship them; a thread pool ships nothing.
Under the GIL, pure-Python conjuncts gain little wall time -- the value
here is the chunked work-splitting structure itself (chunks are the unit a
free-threaded build or a native-code conjunct parallelises over) and the
per-chunk accounting (``detection.slice.parallel_chunks``).

Chunk size defaults to whole processes when traces are short, and splits a
process's sequence into ``chunk_states``-sized intervals when long, so n=2
with 10^5 states still fans out.
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.predicates.base import Predicate
from repro.slicing.detect import (
    _require_regular,
    definitely_slice,
    possibly_slice,
    _SLICE_STATES,
)
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = ["parallel_truth_tables", "possibly_parallel", "definitely_parallel"]

_PARALLEL_CHUNKS = METRICS.counter("detection.slice.parallel_chunks")

DEFAULT_CHUNK_STATES = 256


def _chunks(
    dep: Deposet, chunk_states: int
) -> List[Tuple[int, int, int]]:
    """``(proc, start, stop)`` state intervals covering the whole deposet."""
    out: List[Tuple[int, int, int]] = []
    for i, m in enumerate(dep.state_counts):
        for start in range(0, m, chunk_states):
            out.append((i, start, min(start + chunk_states, m)))
    return out


def parallel_truth_tables(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
) -> List[np.ndarray]:
    """Truth tables for regular ``pred``, built chunk-parallel.

    Bitwise identical to ``regular_form(pred).truth_tables(dep)``; raises
    :class:`~repro.errors.NotRegularError` outside the regular class.  An
    explicit ``executor`` overrides the default thread pool (e.g. an
    interpreter- or process-pool for picklable conjuncts).
    """
    form = _require_regular(pred)
    from repro.trace.global_state import initial_cut

    if form.conjuncts and max(form.conjuncts) >= dep.n:
        raise ValueError(
            f"predicate constrains process {max(form.conjuncts)}, "
            f"deposet has {dep.n}"
        )
    bottom = initial_cut(dep)
    if any(not c.evaluate(dep, bottom) for c in form.constants):
        _SLICE_STATES.inc(dep.num_states)
        return [np.zeros(m, dtype=bool) for m in dep.state_counts]

    tables = [np.ones(m, dtype=bool) for m in dep.state_counts]
    jobs = [
        (i, start, stop)
        for (i, start, stop) in _chunks(dep, chunk_states)
        if i in form.conjuncts
    ]

    def fill(job: Tuple[int, int, int]) -> None:
        i, start, stop = job
        local = form.conjuncts[i]
        t = tables[i]
        for a in range(start, stop):
            t[a] = local.holds_at(dep, a)

    with TRACER.span(
        "slice.tables", chunks=len(jobs), chunk_states=chunk_states
    ):
        if jobs:
            _PARALLEL_CHUNKS.inc(len(jobs))
            if executor is not None:
                list(executor.map(fill, jobs))
            else:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    list(pool.map(fill, jobs))
    _SLICE_STATES.inc(dep.num_states)
    return tables


def possibly_parallel(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
) -> Optional[Cut]:
    """:func:`~repro.slicing.detect.possibly_slice` with chunk-parallel
    truth tables.  Verdict and witness identical to the serial engine."""
    tables = parallel_truth_tables(
        dep,
        pred,
        max_workers=max_workers,
        chunk_states=chunk_states,
        executor=executor,
    )
    return possibly_slice(dep, pred, tables=tables)


def definitely_parallel(
    dep: Deposet,
    pred: Predicate,
    *,
    max_workers: Optional[int] = None,
    chunk_states: int = DEFAULT_CHUNK_STATES,
    executor: Optional[Executor] = None,
) -> bool:
    """:func:`~repro.slicing.detect.definitely_slice` with chunk-parallel
    truth tables.  Verdict identical to the serial engine."""
    tables = parallel_truth_tables(
        dep,
        pred,
        max_workers=max_workers,
        chunk_states=chunk_states,
        executor=executor,
    )
    return definitely_slice(dep, pred, tables=tables)
