"""The computation slice of a deposet w.r.t. a regular predicate.

The *slice* (Mittal & Garg) is the smallest sublattice of the consistent-cut
lattice containing every cut that satisfies the predicate.  For a regular
predicate the satisfying cuts are closed under componentwise min/max, so the
slice is fully described by:

* the **least** satisfying cut ``W`` (meet of all satisfying cuts) -- found
  by Garg-Waldecker candidate elimination
  (:func:`repro.detection.conjunctive.find_conjunctive_cut`);
* the **greatest** satisfying cut ``M`` (join of all satisfying cuts) --
  found by :func:`greatest_satisfying_cut`, the mirrored elimination in this
  module;
* per-process truth tables restricting which states between ``W_i`` and
  ``M_i`` may appear in a cut.

All of this is polynomial in the number of *local states*, while the full
lattice is exponential in the number of processes -- that gap is what the
E14 benchmark measures.

Skip-arrow representation
-------------------------

The classic presentation represents the slice as the original computation
plus *added edges*: for every local state the predicate rules out, an edge
from its successor state back onto it.  The added edge creates a two-cycle
``(i,a) <-> (i,a+1)`` whose strongly-connected component must enter any
order ideal atomically, so the false state can never be the frontier of a
cut -- exactly "skipped".  Because these edges are cyclic **by design**,
they cannot be installed as control arrows (``Deposet.with_control`` would
rightly raise ``InterferenceError``); :meth:`ComputationSlice.skip_arrows`
therefore exposes them as data for inspection and export, not as a deposet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.causality.relations import StateRef
from repro.detection.conjunctive import find_conjunctive_cut
from repro.trace.deposet import Deposet
from repro.trace.global_state import Cut

__all__ = ["ComputationSlice", "compute_slice", "greatest_satisfying_cut"]


def greatest_satisfying_cut(
    dep: Deposet, conjunct_truth: Sequence[np.ndarray]
) -> Optional[Cut]:
    """The *greatest* consistent cut where every truth array is true.

    Mirror image of :func:`find_conjunctive_cut`: candidates start at the
    **last** true state of each process and only ever retreat.  The
    invariant is dual -- candidates are componentwise *upper* bounds on
    every satisfying cut.  When ``(i, ci) -> (j, cj)``, any consistent cut
    containing ``(j, cj)`` needs ``cut[i] > V(cj)[i] >= ci``; all true
    states of ``i`` above ``ci`` are already eliminated, so ``cj`` belongs
    to no satisfying cut and ``j`` retreats (the *destination* loses, where
    the least-cut algorithm advances the *source*).  At quiescence no pair
    is ordered, i.e. ``V(cand_j)[i] < cand_i`` for all ``i != j`` -- the
    candidates form a consistent, all-true cut that upper-bounds every
    satisfying cut: the lattice join.

    Like the least-cut sweep this runs in *batched* elimination rounds: the
    candidate row of each process is checked against every other process's
    candidate clock with one matrix comparison, and a losing process
    retreats in one jump to its last candidate position that no current
    candidate happens-before (``V(pos)[i] < cand_i`` is a prefix property
    of each clock column, so the jump target is a row count).  The fixpoint
    is the same unique greatest satisfying cut as the pairwise deque walk;
    agreement is pinned in ``tests/slicing/test_kernels.py``.
    """
    n = dep.n
    if len(conjunct_truth) != n:
        raise ValueError(f"{len(conjunct_truth)} truth arrays for {n} processes")
    order = dep.order

    positions: List[np.ndarray] = [
        np.flatnonzero(np.asarray(t, dtype=bool)) for t in conjunct_truth
    ]
    if any(len(p) == 0 for p in positions):
        return None
    # Candidate clocks restricted to true states: cp[j][k] = V(positions[j][k]);
    # each column is nondecreasing in k (clock monotonicity along a process).
    cp: List[np.ndarray] = [
        order.clock_matrix(j)[positions[j]] for j in range(n)
    ]
    ptr = [len(p) - 1 for p in positions]  # ptr[j]: index into positions[j]
    cand = np.fromiter((p[-1] for p in positions), dtype=np.int64, count=n)

    while True:
        changed = False
        for j in range(n):
            # (j, b) survives iff no (i, cand_i) -> (j, b), i.e.
            # V(b)[i] < cand_i for every i != j.  Each column test is
            # prefix-true over the candidate rows, so the surviving rows
            # of process j are exactly a prefix; keep its last row.
            sub = cp[j][: ptr[j] + 1]
            ok = sub < cand
            ok[:, j] = True  # V(b)[j] == b: a state never eliminates itself
            keep = int(ok.all(axis=1).sum())
            if keep == 0:
                return None
            if keep - 1 < ptr[j]:
                ptr[j] = keep - 1
                cand[j] = positions[j][ptr[j]]
                changed = True
        if not changed:
            # Quiescent: V(cand_j)[i] < cand_i for all i != j -- a
            # consistent all-true cut that upper-bounds every satisfying
            # cut (only excluded states were ever dropped): the join.
            return tuple(int(c) for c in cand)


@dataclass(frozen=True)
class ComputationSlice:
    """Slice of ``dep`` w.r.t. a conjunction given by per-process ``tables``.

    ``tables[i][a]`` is the predicate's conjunct for process ``i`` at local
    state ``a`` (all-true = unconstrained).  ``least``/``greatest`` are the
    extreme satisfying cuts, or both ``None`` when the slice is empty.
    """

    dep: Deposet
    tables: Tuple[np.ndarray, ...]
    least: Optional[Cut]
    greatest: Optional[Cut]

    @property
    def empty(self) -> bool:
        """True when no consistent cut satisfies the predicate."""
        return self.least is None

    def in_tables(self, cut: Sequence[int]) -> bool:
        """Componentwise truth-table membership (consistency NOT checked)."""
        return all(bool(t[c]) for t, c in zip(self.tables, cut))

    def in_tables_many(self, cuts: Sequence[Sequence[int]]) -> np.ndarray:
        """Vectorised :meth:`in_tables` over a batch of cuts.

        ``cuts`` is an ``(k, n)`` array-like of state indices; returns a
        length-``k`` boolean array.  One fancy-indexing pass per process
        instead of ``k * n`` scalar lookups -- this is the membership
        kernel the definitely-detection frontier walk batches through.
        """
        arr = np.asarray(cuts, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != len(self.tables):
            raise ValueError(
                f"cuts must have shape (k, {len(self.tables)}), got {arr.shape}"
            )
        out = np.ones(arr.shape[0], dtype=bool)
        for i, t in enumerate(self.tables):
            out &= t[arr[:, i]]
        return out

    # -- added-edge representation -----------------------------------------

    def skip_arrows(self) -> List[Tuple[StateRef, StateRef]]:
        """The slice's added edges ``(i, a+1) -> (i, a)``, one per ruled-out
        local state.

        A ruled-out *last* state gets an edge from the virtual final state
        ``StateRef(i, m_i)`` (the classic construction's appended top
        event).  These edges deliberately create two-cycles -- collapse
        semantics, see the module docstring -- so they are inspection data,
        not installable control arrows.
        """
        arrows: List[Tuple[StateRef, StateRef]] = []
        for i, t in enumerate(self.tables):
            for a in np.flatnonzero(~np.asarray(t, dtype=bool)):
                arrows.append((StateRef(i, int(a) + 1), StateRef(i, int(a))))
        return arrows

    # -- enumeration ----------------------------------------------------------

    def iter_cuts(self) -> Iterator[Cut]:
        """All satisfying consistent cuts, in lexicographic order.

        Mirrors ``CutLattice.iter_consistent_cuts`` but assigns each
        process only the *true* states inside the band
        ``[least_i, greatest_i]`` -- sound because regularity bounds every
        satisfying cut by the extreme cuts componentwise, complete because
        the pruning drops only false or out-of-band states.
        """
        if self.least is None:
            return
        order = self.dep.order
        n = self.dep.n
        lo, hi = self.least, self.greatest
        assert hi is not None
        tables = self.tables
        cut: List[int] = [0] * n

        def assign(j: int) -> Iterator[Cut]:
            if j == n:
                yield tuple(cut)
                return
            t = tables[j]
            for b in range(lo[j], hi[j] + 1):
                if not t[b]:
                    continue
                row = order.clock((j, b))
                ok = True
                for i in range(j):
                    if row[i] >= cut[i] or order.clock((i, cut[i]))[j] >= b:
                        ok = False
                        break
                if ok:
                    cut[j] = b
                    yield from assign(j + 1)

        yield from assign(0)

    def count_cuts(self) -> int:
        return sum(1 for _ in self.iter_cuts())

    # -- sizing ----------------------------------------------------------------

    @property
    def band_volume(self) -> int:
        """Number of cells in the ``[least, greatest]`` box (0 if empty) --
        an upper bound on the enumeration work per process dimension."""
        if self.least is None or self.greatest is None:
            return 0
        vol = 1
        for lo, hi in zip(self.least, self.greatest):
            vol *= hi - lo + 1
        return vol

    def __repr__(self) -> str:
        if self.empty:
            return f"ComputationSlice(n={self.dep.n}, empty)"
        return (
            f"ComputationSlice(n={self.dep.n}, least={self.least}, "
            f"greatest={self.greatest})"
        )


def compute_slice(dep: Deposet, tables: Sequence[np.ndarray]) -> ComputationSlice:
    """Build the slice of ``dep`` for the conjunction encoded by ``tables``.

    Two candidate-elimination sweeps (least, then greatest) -- polynomial
    in local states.  Control arrows of a controlled deposet are honoured:
    both sweeps and the enumeration consult ``dep.order``, the extended
    causality.
    """
    tables = tuple(np.asarray(t, dtype=bool) for t in tables)
    if len(tables) != dep.n:
        raise ValueError(f"{len(tables)} truth tables for {dep.n} processes")
    least = find_conjunctive_cut(dep, tables)
    greatest = greatest_satisfying_cut(dep, tables) if least is not None else None
    if least is not None and greatest is None:  # pragma: no cover - impossible:
        # a satisfying cut exists, so the mirrored sweep must find one too.
        raise AssertionError("least cut found but greatest sweep came up empty")
    return ComputationSlice(dep=dep, tables=tables, least=least, greatest=greatest)
