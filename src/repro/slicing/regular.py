"""Normalisation into the regular class the slicing engine covers.

Computation slicing (Mittal & Garg) is polynomial for *regular*
predicates: those whose satisfying consistent cuts are closed under the
cut lattice's meet (componentwise min) and join (componentwise max).  The
workhorse syntactic subclass -- and the one every "bug predicate" of the
paper's walkthroughs lands in -- is the **conjunctive** class::

    B  =  b_1 and b_2 and ... and b_k        (each b_i local to one process)

Closure is immediate: the componentwise min/max of two cuts picks, per
process, one of the two original states, and both are ``b_i``-true.

:func:`regular_form` recognises this class structurally.  It flattens
``And``, pushes ``Not`` through disjunctions (De Morgan: the negation of
the paper's disjunctive safety predicates is exactly a conjunction of
locals -- the "bug" predicate), folds every one-process subtree into a
single :class:`~repro.predicates.local.LocalPredicate`, and keeps
zero-process factors (constants) symbolic so they are resolved against a
concrete deposet only when truth tables are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.predicates.base import Predicate, TruePredicate
from repro.predicates.boolean import And, Not, Or
from repro.predicates.disjunctive import DisjunctivePredicate, fold_local
from repro.predicates.expr import Expr
from repro.predicates.local import LocalPredicate
from repro.trace.deposet import Deposet
from repro.trace.global_state import initial_cut

__all__ = ["RegularForm", "regular_form"]


@dataclass(frozen=True)
class RegularForm:
    """A predicate normalised to ``and_i conjunct[i]`` (one local per process).

    ``conjuncts`` maps process index to its folded local conjunct;
    processes absent from the map are unconstrained.  ``constants`` holds
    zero-process factors (``TRUE``/``FALSE`` and foldings thereof) whose
    cut-independent value is only evaluated against a concrete deposet in
    :meth:`truth_tables` -- a false constant empties the slice.
    """

    conjuncts: Dict[int, LocalPredicate]
    constants: Tuple[Predicate, ...] = ()

    def validate_for(self, dep: Deposet) -> None:
        """Raise ``ValueError`` when a conjunct names a process ``dep`` lacks.

        Called by every truth-table producer *and* by ``slice_of`` itself,
        so the serial and parallel engines reject a malformed predicate
        identically (including when precomputed tables are passed in).
        """
        if self.conjuncts and max(self.conjuncts) >= dep.n:
            raise ValueError(
                f"predicate constrains process {max(self.conjuncts)}, "
                f"deposet has {dep.n}"
            )

    def compiled(self) -> Optional[Dict[int, Expr]]:
        """The conjuncts as picklable IR, or ``None`` if any is opaque.

        A non-``None`` result is what the parallel driver ships to worker
        processes; ``None`` routes evaluation through the in-process
        closure path.
        """
        out: Dict[int, Expr] = {}
        for proc, local in self.conjuncts.items():
            if local.expr is None:
                return None
            out[proc] = local.expr
        return out

    def constants_false(self, dep: Deposet) -> bool:
        """True when a constant factor is false (the slice is empty)."""
        bottom = initial_cut(dep)
        return any(not c.evaluate(dep, bottom) for c in self.constants)

    def conjunct_table(self, dep: Deposet, proc: int) -> np.ndarray:
        """One process's truth row: vectorised when the conjunct has IR."""
        m = dep.state_counts[proc]
        local = self.conjuncts.get(proc)
        if local is None:
            return np.ones(m, dtype=bool)
        if local.expr is not None:
            block = dep.column_block(proc, sorted(local.expr.var_names()))
            return local.expr.eval_block(block, 0, m)
        return np.fromiter(
            (local.holds_at(dep, a) for a in range(m)), dtype=bool, count=m
        )

    def truth_tables(self, dep: Deposet) -> List[np.ndarray]:
        """Per-process boolean arrays: ``table[i][a]`` = conjunct_i at state a.

        Unconstrained processes get all-true rows.  A satisfying cut is
        exactly a consistent cut with every component in a true row --
        this is the slice's membership oracle.
        """
        self.validate_for(dep)
        if self.constants_false(dep):
            # A constant-false factor: no cut satisfies the conjunction.
            return [np.zeros(m, dtype=bool) for m in dep.state_counts]
        return [self.conjunct_table(dep, i) for i in range(dep.n)]

    def __repr__(self) -> str:
        parts = [f"P{i}:{c.name}" for i, c in sorted(self.conjuncts.items())]
        parts += [repr(c) for c in self.constants]
        return f"RegularForm({' & '.join(parts) or 'TRUE'})"


def _factors(pred: Predicate) -> Optional[List[Predicate]]:
    """Multiplicands of ``pred`` as a conjunction, or ``None`` if not one.

    Each returned factor touches at most one process.  ``And`` flattens;
    ``Not`` distributes over ``Or``/``DisjunctivePredicate`` (De Morgan)
    and cancels over ``Not``; anything already confined to one process
    (or none) is a factor as-is.
    """
    if isinstance(pred, And):
        out: List[Predicate] = []
        for op in pred.operands:
            sub = _factors(op)
            if sub is None:
                return None
            out.extend(sub)
        return out
    if isinstance(pred, Not):
        op = pred.operand
        if isinstance(op, Not):
            return _factors(op.operand)
        if isinstance(op, Or):
            return _factors(And(*(Not(x) for x in op.operands)))
        if isinstance(op, DisjunctivePredicate):
            # Processes without a disjunct contribute constant-false
            # disjuncts, whose negation is true -- they drop out.
            return _factors(
                And(*(Not(d) for d in op.locals_by_proc.values()))
            )
    if isinstance(pred, DisjunctivePredicate):
        locals_ = list(pred.locals_by_proc.values())
        if len(locals_) == 1:
            return [locals_[0]]  # a one-disjunct disjunction is a local
        return None
    if len(pred.procs()) <= 1:
        return [pred]
    return None


def regular_form(pred: Predicate) -> Optional[RegularForm]:
    """Normalise ``pred`` into conjunctive :class:`RegularForm`, or ``None``.

    ``None`` means the predicate is outside the recognised regular class
    and detection must fall back to the exhaustive lattice walk.
    """
    factors = _factors(pred)
    if factors is None:
        return None
    per_proc: Dict[int, List[Predicate]] = {}
    constants: List[Predicate] = []
    for f in factors:
        ps = f.procs()
        if not ps:
            if isinstance(f, TruePredicate):
                continue  # a true factor constrains nothing
            constants.append(f)
            continue
        (proc,) = ps
        per_proc.setdefault(proc, []).append(f)
    conjuncts: Dict[int, LocalPredicate] = {}
    for proc, fs in per_proc.items():
        folded = fold_local(fs[0] if len(fs) == 1 else And(*fs))
        if folded is None:  # pragma: no cover - len(procs)==1 guarantees fold
            return None
        conjuncts[proc] = folded
    return RegularForm(conjuncts=conjuncts, constants=tuple(constants))
