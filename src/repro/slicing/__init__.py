"""Computation slicing: polynomial predicate detection for regular predicates.

The exhaustive lattice walk in :mod:`repro.detection.lattice_walk` is the
ground truth but exponential (Lemma 1 territory).  For *regular* predicates
-- satisfying cuts closed under lattice meet/join, with conjunctions of
per-process locals as the syntactic core -- the *computation slice*
(Mittal & Garg) captures all satisfying cuts in a polynomial summary:
truth tables plus the least/greatest satisfying cuts, equivalently the
original computation plus skip edges.

Layers:

* :mod:`repro.slicing.regular`  -- normalisation into the regular class
  (backs ``Predicate.is_regular()``);
* :mod:`repro.slicing.slice`    -- the slice itself: bidirectional
  candidate elimination, skip arrows, satisfying-cut enumeration;
* :mod:`repro.slicing.detect`   -- ``possibly_slice`` / ``definitely_slice``,
  counterparts of the exhaustive walkers with ``detection.slice.*`` metrics;
* :mod:`repro.slicing.parallel` -- work-splitting driver chunking
  truth-table evaluation per process interval over ``concurrent.futures``.

Engine selection (auto/exhaustive/slice/parallel) lives in
:mod:`repro.detection.engine`; non-regular predicates raise
:class:`~repro.errors.NotRegularError` here and fall back there.

Nomenclature: :mod:`repro.trace.slicing` (``prefix_at``) slices a deposet
*by time* into a prefix; this package slices *by predicate*.
"""

from repro.slicing.regular import RegularForm, regular_form
from repro.slicing.slice import (
    ComputationSlice,
    compute_slice,
    greatest_satisfying_cut,
)
from repro.slicing.detect import definitely_slice, possibly_slice, slice_of
from repro.slicing.parallel import (
    definitely_parallel,
    parallel_truth_tables,
    possibly_parallel,
)

__all__ = [
    "RegularForm",
    "regular_form",
    "ComputationSlice",
    "compute_slice",
    "greatest_satisfying_cut",
    "slice_of",
    "possibly_slice",
    "definitely_slice",
    "parallel_truth_tables",
    "possibly_parallel",
    "definitely_parallel",
]
