"""The discrete-event kernel: a timestamped callback queue.

Determinism: ties in simulated time are broken by a monotonically
increasing sequence number, so two runs with the same seed execute the same
callback order.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER

__all__ = ["EventQueue", "Timer"]

#: kernel callbacks executed, aggregated once per ``run()`` drain so the
#: per-event loop stays untouched
_KERNEL_EVENTS = METRICS.counter("kernel.events")
_KERNEL_RUNS = METRICS.counter("kernel.runs")


class Timer:
    """Handle for a scheduled callback; supports lazy cancellation.

    Cancelled entries stay in the heap (removal would be O(n)) and are
    skipped when popped; the queue tracks how many are pending so
    :attr:`EventQueue.active` stays exact.
    """

    __slots__ = ("_queue", "cancelled", "fired")

    def __init__(self, queue: "EventQueue"):
        self._queue = queue
        self.cancelled = False
        self.fired = False

    @property
    def alive(self) -> bool:
        return not (self.cancelled or self.fired)

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.alive:
            self.cancelled = True
            self._queue._cancelled_pending += 1


class EventQueue:
    """A priority queue of ``(time, seq, timer, callback)`` entries."""

    __slots__ = ("now", "_heap", "_seq", "_popped", "_cancelled_pending")

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer, Callable[[], None]]] = []
        self._seq = 0
        self._popped = 0
        self._cancelled_pending = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at ``now + delay`` (delay >= 0); returns a
        cancellable :class:`Timer` handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at absolute sim time ``time`` (>= now).

        Callers that must order entries against an exact earlier timestamp
        (the FIFO channel clamp) use this instead of :meth:`schedule`:
        round-tripping through ``now + (time - now)`` can round below
        ``time`` and break the ordering ties rely on.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        timer = Timer(self)
        heapq.heappush(self._heap, (time, self._seq, timer, callback))
        self._seq += 1
        return timer

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def active(self) -> int:
        """Scheduled entries that will actually run (excludes cancelled)."""
        return len(self._heap) - self._cancelled_pending

    @property
    def events_processed(self) -> int:
        return self._popped

    def step(self) -> bool:
        """Pop and run the earliest live callback; ``False`` when empty."""
        while self._heap:
            t, _, timer, callback = heapq.heappop(self._heap)
            if timer.cancelled:
                self._cancelled_pending -= 1
                continue
            timer.fired = True
            self.now = t
            self._popped += 1
            callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None, until: Optional[float] = None) -> None:
        """Drain the queue, optionally bounded by event count or sim time."""
        start = self._popped
        span = TRACER.span("kernel.run") if TRACER.enabled else None
        try:
            if span is not None:
                span.__enter__()
            while self._heap:
                if max_events is not None and self._popped >= max_events:
                    return
                if until is not None and self._heap[0][0] > until:
                    return
                self.step()
        finally:
            processed = self._popped - start
            _KERNEL_EVENTS.inc(processed)
            _KERNEL_RUNS.inc()
            if span is not None:
                span.add(events=processed, sim_now=self.now)
                span.__exit__(None, None, None)
