"""The discrete-event kernel: a timestamped callback queue.

Determinism: ties in simulated time are broken by a monotonically
increasing sequence number, so two runs with the same seed execute the same
callback order.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER

__all__ = ["EventQueue"]

#: kernel callbacks executed, aggregated once per ``run()`` drain so the
#: per-event loop stays untouched
_KERNEL_EVENTS = METRICS.counter("kernel.events")
_KERNEL_RUNS = METRICS.counter("kernel.runs")


class EventQueue:
    """A priority queue of ``(time, seq, callback)`` entries."""

    __slots__ = ("now", "_heap", "_seq", "_popped")

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._popped = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._popped

    def step(self) -> bool:
        """Pop and run the earliest callback; ``False`` when empty."""
        if not self._heap:
            return False
        t, _, callback = heapq.heappop(self._heap)
        self.now = t
        self._popped += 1
        callback()
        return True

    def run(self, max_events: Optional[int] = None, until: Optional[float] = None) -> None:
        """Drain the queue, optionally bounded by event count or sim time."""
        start = self._popped
        span = TRACER.span("kernel.run") if TRACER.enabled else None
        try:
            if span is not None:
                span.__enter__()
            while self._heap:
                if max_events is not None and self._popped >= max_events:
                    return
                if until is not None and self._heap[0][0] > until:
                    return
                self.step()
        finally:
            processed = self._popped - start
            _KERNEL_EVENTS.inc(processed)
            _KERNEL_RUNS.inc()
            if span is not None:
                span.add(events=processed, sim_now=self.now)
                span.__exit__(None, None, None)
