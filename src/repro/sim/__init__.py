"""A deterministic discrete-event simulator for asynchronous message passing.

This is the substrate standing in for the paper's distributed testbed: ``n``
sequential processes, reliable point-to-point channels with configurable
delay, no shared memory, no global clock visible to processes.  Programs are
Python generators yielding commands (mpi4py-flavoured ``send``/``receive``
plus local events and simulated compute time); every run is reproducible
under a seed.

The simulator records each run as a :class:`~repro.trace.deposet.Deposet`
(the recorder), and exposes a *transition guard* hook -- the attachment
point for on-line predicate control: a controller may transparently block a
process's next state transition, which the process cannot distinguish from
mere slowness.
"""

from repro.sim.kernel import EventQueue
from repro.sim.network import Network
from repro.sim.recorder import TraceRecorder
from repro.sim.system import (
    System,
    ProcessContext,
    TransitionGuard,
    Observer,
    RunResult,
)

__all__ = [
    "EventQueue",
    "Network",
    "TraceRecorder",
    "System",
    "ProcessContext",
    "TransitionGuard",
    "Observer",
    "RunResult",
]
