"""Recording a simulated run as a deposet.

Every state transition of every process is captured (variable snapshot +
timestamp), application messages become *remotely precedes* arrows, and
control messages become control arrows of the extended deposet.

Control-arrow strength: a recorded control arrow must never *overstate*
causality, or verification on the recorded trace would be unsound.  Two
modes are supported:

* ``exact`` source (used by the replay engine, which sends control messages
  at the instant a process leaves the source state): arrow ``(s, t)`` with
  the strict *complete(s) < enter(t)* reading.
* ``entered`` source (used by on-line controllers, which send while merely
  *in* a state ``u``): the guaranteed causality is only
  *enter(u) < enter(t)*, recorded as the strict arrow ``(u-1, t)``
  (complete of ``u``'s predecessor = enter of ``u``); when ``u`` is the
  start state there is no causal content and the arrow is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.causality.relations import StateRef
from repro.trace.deposet import Deposet
from repro.trace.states import MessageArrow

__all__ = ["TraceRecorder"]


@dataclass
class _PendingControl:
    src_proc: int
    src_state: int  # recorded per the chosen mode (may be -1: no content)
    tag: Optional[str]


class TraceRecorder:
    """Accumulates states, messages and control arrows during a run."""

    def __init__(self, n: int, start_vars: List[Dict[str, Any]], start_time: float = 0.0):
        if len(start_vars) != n:
            raise ValueError(f"{len(start_vars)} start assignments for {n} processes")
        self.n = n
        self._states: List[List[Dict[str, Any]]] = [
            [dict(start_vars[i])] for i in range(n)
        ]
        self._timestamps: List[List[float]] = [[start_time] for _ in range(n)]
        self._messages: List[MessageArrow] = []
        self._control: List[Tuple[StateRef, StateRef]] = []
        # control messages delivered to proc j but whose target state (the
        # next state j enters) is not known yet
        self._awaiting_target: List[List[_PendingControl]] = [[] for _ in range(n)]

    # -- underlying events ---------------------------------------------------

    def current_state(self, proc: int) -> int:
        return len(self._states[proc]) - 1

    def current_vars(self, proc: int) -> Dict[str, Any]:
        return self._states[proc][-1]

    def record_event(
        self, proc: int, updates: Dict[str, Any], time: float
    ) -> StateRef:
        """The process takes an event and enters a new state."""
        new_vars = dict(self._states[proc][-1])
        new_vars.update(updates)
        self._states[proc].append(new_vars)
        self._timestamps[proc].append(time)
        entered = StateRef(proc, len(self._states[proc]) - 1)
        # resolve control arrows waiting for this process's next state
        for pending in self._awaiting_target[proc]:
            if pending.src_state >= 0:
                self._control.append(
                    (StateRef(pending.src_proc, pending.src_state), entered)
                )
        self._awaiting_target[proc].clear()
        return entered

    def record_message(
        self,
        src: StateRef,
        dst: StateRef,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> None:
        """An application message: ``src`` is the sender's state before the
        send event, ``dst`` the receiver's state after the receive event."""
        self._messages.append(MessageArrow(src, dst, payload=payload, tag=tag))

    # -- control messages -------------------------------------------------------

    def control_delivered(
        self,
        src_proc: int,
        dst_proc: int,
        src_state: int,
        mode: str = "entered",
        tag: Optional[str] = None,
    ) -> None:
        """A control message from ``src_proc`` (sent at ``src_state``)
        reached ``dst_proc``'s controller; the induced arrow targets the
        next underlying state ``dst_proc`` enters.

        ``mode="exact"``: the sender sent at the instant it *left*
        ``src_state`` (strict arrow source).  ``mode="entered"``: the sender
        sent while merely *in* ``src_state``; the sound strict source is its
        predecessor state (dropped when ``src_state`` is the start state).
        """
        if mode == "exact":
            recorded_src = src_state
        elif mode == "entered":
            recorded_src = src_state - 1
        else:
            raise ValueError(f"unknown control recording mode {mode!r}")
        self._awaiting_target[dst_proc].append(
            _PendingControl(src_proc, recorded_src, tag)
        )

    # -- finalisation --------------------------------------------------------------

    @property
    def control_arrows(self) -> List[Tuple[StateRef, StateRef]]:
        return list(self._control)

    def build(self, proc_names: Optional[List[str]] = None) -> Deposet:
        """The recorded computation as a (possibly controlled) deposet."""
        return Deposet(
            self._states,
            self._messages,
            self._control,
            proc_names=proc_names,
            timestamps=self._timestamps,
        )
