"""Recording a simulated run as a deposet.

Every state transition of every process is captured (variable snapshot +
timestamp), application messages become *remotely precedes* arrows, and
control messages become control arrows of the extended deposet.

The recorder writes into an append-only :class:`~repro.store.TraceStore`
(the storage layer), which maintains a live incremental causal index in
lockstep -- so the run is queryable while it happens, and :meth:`build`
is a cheap snapshot rather than a batch reconstruction.  Receives pass
the message into :meth:`record_event` so the arrow joins during the O(n)
append; control arrows land as downstream-cone index updates.

Control-arrow strength: a recorded control arrow must never *overstate*
causality, or verification on the recorded trace would be unsound.  Two
modes are supported:

* ``exact`` source (used by the replay engine, which sends control messages
  at the instant a process leaves the source state): arrow ``(s, t)`` with
  the strict *complete(s) < enter(t)* reading.
* ``entered`` source (used by on-line controllers, which send while merely
  *in* a state ``u``): the guaranteed causality is only
  *enter(u) < enter(t)*, recorded as the strict arrow ``(u-1, t)``
  (complete of ``u``'s predecessor = enter of ``u``); when ``u`` is the
  start state there is no causal content and the arrow is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.causality.relations import StateRef
from repro.store.trace_store import TraceStore
from repro.trace.deposet import Deposet

__all__ = ["TraceRecorder"]


@dataclass
class _PendingControl:
    src_proc: int
    src_state: int  # recorded per the chosen mode (may be -1: no content)
    tag: Optional[str]


class TraceRecorder:
    """Accumulates states, messages and control arrows during a run."""

    def __init__(self, n: int, start_vars: List[Dict[str, Any]], start_time: float = 0.0):
        if len(start_vars) != n:
            raise ValueError(f"{len(start_vars)} start assignments for {n} processes")
        self.n = n
        self._store = TraceStore(n, start_vars=start_vars, start_times=start_time)
        # control messages delivered to proc j but whose target state (the
        # next state j enters) is not known yet
        self._awaiting_target: List[List[_PendingControl]] = [[] for _ in range(n)]
        # resolved arrows whose *source* state has not completed yet (exact
        # mode can record the arrow before the sender's next event lands);
        # keyed by source process, flushed into the store on its next event
        self._awaiting_source: List[List[Tuple[StateRef, StateRef]]] = [
            [] for _ in range(n)
        ]
        #: all resolved control arrows in resolution order (the store may
        #: hold deferred ones in flush order instead)
        self._control: List[Tuple[StateRef, StateRef]] = []

    # -- underlying events ---------------------------------------------------

    @property
    def store(self) -> TraceStore:
        """The append-only trace store this recorder writes into."""
        return self._store

    def current_state(self, proc: int) -> int:
        return self._store.state_counts[proc] - 1

    def current_vars(self, proc: int) -> Dict[str, Any]:
        return self._store.latest_vars(proc)

    def record_event(
        self,
        proc: int,
        updates: Dict[str, Any],
        time: float,
        received: Optional[Tuple[StateRef, Any, Optional[str]]] = None,
    ) -> StateRef:
        """The process takes an event and enters a new state.

        For a receive event, pass ``received=(src_state, payload, tag)``:
        the message arrow is appended together with the state, keeping the
        index update O(n).
        """
        if received is not None:
            src_ref, payload, tag = received
            entered = self._store.append_state(
                proc, updates, time=time,
                received_from=src_ref, payload=payload, tag=tag,
            )
        else:
            entered = self._store.append_state(proc, updates, time=time)
        # this event completed proc's previous state: flush arrows that
        # were waiting for their source to complete
        if self._awaiting_source[proc]:
            for arrow in self._awaiting_source[proc]:
                self._store.append_control(*arrow)
            self._awaiting_source[proc].clear()
        # resolve control arrows waiting for this process's next state
        for pending in self._awaiting_target[proc]:
            if pending.src_state >= 0:
                self._add_control(
                    StateRef(pending.src_proc, pending.src_state), entered
                )
        self._awaiting_target[proc].clear()
        return entered

    def _add_control(self, src: StateRef, dst: StateRef) -> None:
        self._control.append((src, dst))
        if src.index <= self._store.state_counts[src.proc] - 2:
            self._store.append_control(src, dst)
        else:
            # exact-mode source not completed yet: the sender left the
            # state, but its next event has not been recorded.  Defer the
            # insert; it lands with the sender's next event.
            self._awaiting_source[src.proc].append((src, dst))

    def record_message(
        self,
        src: StateRef,
        dst: StateRef,
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> None:
        """An application message: ``src`` is the sender's state before the
        send event, ``dst`` the receiver's state after the receive event.

        Compatibility path for arrows attached after the receive state was
        recorded; prefer ``record_event(received=...)``, which appends the
        arrow in O(n) instead of a cone recompute.
        """
        self._store.append_message(src, dst, payload=payload, tag=tag)

    # -- control messages -------------------------------------------------------

    def control_delivered(
        self,
        src_proc: int,
        dst_proc: int,
        src_state: int,
        mode: str = "entered",
        tag: Optional[str] = None,
    ) -> None:
        """A control message from ``src_proc`` (sent at ``src_state``)
        reached ``dst_proc``'s controller; the induced arrow targets the
        next underlying state ``dst_proc`` enters.

        ``mode="exact"``: the sender sent at the instant it *left*
        ``src_state`` (strict arrow source).  ``mode="entered"``: the sender
        sent while merely *in* ``src_state``; the sound strict source is its
        predecessor state (dropped when ``src_state`` is the start state).
        """
        if mode == "exact":
            recorded_src = src_state
        elif mode == "entered":
            recorded_src = src_state - 1
        else:
            raise ValueError(f"unknown control recording mode {mode!r}")
        self._awaiting_target[dst_proc].append(
            _PendingControl(src_proc, recorded_src, tag)
        )

    # -- finalisation --------------------------------------------------------------

    @property
    def control_arrows(self) -> List[Tuple[StateRef, StateRef]]:
        return list(self._control)

    def build(self, proc_names: Optional[List[str]] = None) -> Deposet:
        """The recorded computation as a (possibly controlled) deposet.

        A snapshot view over the store: shares columns and the frozen
        causal index; no batch clock rebuild.  An arrow whose source never
        completed (the run ended right after an exact-mode send) is
        unsatisfiable, exactly as in the batch validation path: inserting
        it raises :class:`~repro.errors.MalformedTraceError` (D2).
        """
        for arrows in self._awaiting_source:
            for arrow in arrows:
                self._store.append_control(*arrow)  # raises MalformedTraceError (D2)
        return self._store.snapshot(proc_names=proc_names)
