"""The simulated distributed system: processes, programs, guards.

A *program* is a Python generator taking a :class:`ProcessContext` and
yielding commands::

    def server(ctx):
        yield ctx.compute(2.0)             # time passes, no event
        yield ctx.set(avail=False)         # local event
        yield ctx.send(1, {"op": "sync"})  # send event
        msg = yield ctx.receive()          # receive event (blocks)
        yield ctx.set(avail=True)

Every ``set``/``send``/``receive`` is one event of the underlying
computation and produces one new local state in the recorded deposet.
Before an event is applied, the system's :class:`TransitionGuard` is
consulted; a guard may defer the commit arbitrarily long -- the process
just appears slow.  This is the paper's transparent controller hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.kernel import EventQueue
from repro.sim.network import Delivery, Network
from repro.sim.recorder import TraceRecorder
from repro.trace.deposet import Deposet

_SIM_RUNS = METRICS.counter("sim.runs")
_SIM_APP_MSGS = METRICS.counter("sim.app_messages")
_SIM_CTL_MSGS = METRICS.counter("sim.control_messages")
_SIM_DEADLOCKS = METRICS.counter("sim.deadlocks")
_SIM_CRASHED_RUNS = METRICS.counter("sim.crashed_runs")

__all__ = ["System", "ProcessContext", "TransitionGuard", "Observer", "RunResult"]


# -- commands -----------------------------------------------------------------


@dataclass(frozen=True)
class _Compute:
    duration: float


@dataclass(frozen=True)
class _SetVars:
    updates: Dict[str, Any]


@dataclass(frozen=True)
class _Send:
    dst: int
    payload: Any
    tag: Optional[str]
    updates: Dict[str, Any]


@dataclass(frozen=True)
class _Receive:
    tag: Optional[str]
    updates: Dict[str, Any]


@dataclass
class _AppMessage:
    payload: Any
    tag: Optional[str]
    src_ref: tuple  # sender's state before its send event
    uid: int = -1   # per-run unique message id (for observers)


class ProcessContext:
    """Handed to each program; builds commands and exposes identity/time."""

    def __init__(self, system: "System", proc: int, rng: np.random.Generator):
        self._system = system
        self.proc = proc
        self.rng = rng

    @property
    def now(self) -> float:
        return self._system.queue.now

    @property
    def n(self) -> int:
        return self._system.n

    def vars(self) -> Dict[str, Any]:
        """The process's current variable assignment (copy)."""
        return dict(self._system.recorder.current_vars(self.proc))

    def compute(self, duration: float) -> _Compute:
        """Let simulated time pass (no event, no new state)."""
        return _Compute(float(duration))

    def set(self, **updates: Any) -> _SetVars:
        """A local event updating variables."""
        return _SetVars(updates)

    def send(
        self, dst: int, payload: Any = None, tag: Optional[str] = None, **updates: Any
    ) -> _Send:
        """A send event; variable updates apply to the sender's new state."""
        return _Send(dst, payload, tag, updates)

    def receive(self, tag: Optional[str] = None, **updates: Any) -> _Receive:
        """Block until a message (optionally matching ``tag``) arrives.

        Yields the message payload.  Variable updates apply to the
        receiver's new state.
        """
        return _Receive(tag, updates)


class Observer:
    """Passive run observer: notified *after* every committed transition.

    Unlike a :class:`TransitionGuard` (which gates transitions and of which
    a system has exactly one), any number of observers may watch a run --
    the attachment point for on-line *detection* (e.g.
    :class:`repro.detection.online.ViolationMonitor`).

    ``kind`` is ``"local"``, ``"send"`` or ``"receive"``; for the message
    kinds ``msg_uid`` identifies the message (the same uid is seen by the
    sender's and the receiver's notifications), letting observers carry
    vector clocks across messages.
    """

    system: "System"

    def attach(self, system: "System") -> None:
        self.system = system

    def on_event(
        self,
        proc: int,
        index: int,
        vars: Dict[str, Any],
        kind: str,
        msg_uid: Optional[int] = None,
    ) -> None:  # pragma: no cover - default no-op
        pass

    def on_control(
        self, src_proc: int, dst_proc: int, src_state: int
    ) -> None:  # pragma: no cover - default no-op
        """A control message sent while ``src_proc`` was *in* state
        ``src_state`` reached ``dst_proc``'s controller; the induced
        causality is *enter(src_state) before dst's next entered state*."""

    def on_run_end(self) -> None:  # pragma: no cover - default no-op
        pass


class TransitionGuard:
    """Hook consulted before every state transition.

    The default implementation commits immediately.  On-line controllers
    override :meth:`request_transition` and may hold on to ``commit`` --
    the process blocks until it is invoked (exactly once).
    """

    system: "System"

    def attach(self, system: "System") -> None:
        self.system = system

    def request_transition(
        self,
        proc: int,
        updates: Dict[str, Any],
        next_vars: Dict[str, Any],
        commit: Callable[[], None],
    ) -> None:
        commit()


@dataclass
class RunResult:
    """Outcome of :meth:`System.run`."""

    deposet: Deposet
    duration: float
    events: int
    app_messages: int
    control_messages: int
    deadlocked: bool
    blocked: Dict[int, str] = field(default_factory=dict)
    #: processes that crashed (fail-stop), with their crash sim times
    crashed: Dict[int, float] = field(default_factory=dict)
    #: injected-fault counts for this run (empty without a fault plan)
    faults: Dict[str, int] = field(default_factory=dict)


class _ProcState:
    __slots__ = (
        "gen", "inbox", "waiting_recv", "blocked_guard", "finished", "crashed",
    )

    def __init__(self, gen: Generator):
        self.gen = gen
        self.inbox: List[_AppMessage] = []
        self.waiting_recv: Optional[_Receive] = None
        self.blocked_guard = False
        self.finished = False
        self.crashed = False


class System:
    """Builds and runs one simulated computation.

    Parameters
    ----------
    programs:
        One generator function per process; called with a
        :class:`ProcessContext`.
    start_vars:
        Initial variable assignment per process.
    mean_delay / jitter:
        Channel delay model (the paper's ``T``).
    guard:
        Transition guard (on-line controller attachment point).
    seed:
        Master seed; per-process program RNGs and the network RNG are
        derived from it, so runs are reproducible.
    observers:
        Passive :class:`Observer` instances notified of every committed
        transition (on-line detection hook).
    fifo:
        Per-channel FIFO delivery (the paper's default model does not
        require it; the protocols here do not either).
    faults:
        A :class:`~repro.faults.plan.FaultPlan` (or a ready-made
        :class:`~repro.faults.injector.FaultInjector`): lossy channels,
        crashes, stalls, partitions.  ``None`` keeps the paper's fault-free
        model.
    """

    def __init__(
        self,
        programs: List[Callable[[ProcessContext], Generator]],
        start_vars: Optional[List[Dict[str, Any]]] = None,
        mean_delay: float = 1.0,
        jitter: float = 0.0,
        guard: Optional[TransitionGuard] = None,
        seed: int = 0,
        proc_names: Optional[List[str]] = None,
        observers: Optional[List[Observer]] = None,
        fifo: bool = False,
        faults: Optional[Union[FaultPlan, FaultInjector]] = None,
    ):
        self.n = len(programs)
        if self.n == 0:
            raise SimulationError("need at least one process")
        if start_vars is None:
            start_vars = [{} for _ in range(self.n)]
        if len(start_vars) != self.n:
            raise SimulationError(
                f"{len(start_vars)} start assignments for {self.n} processes"
            )
        self.queue = EventQueue()
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults = faults
        root = np.random.default_rng(seed)
        self.network = Network(
            self.queue, mean_delay=mean_delay, jitter=jitter,
            rng=np.random.default_rng(root.integers(2**63)),
            fifo=fifo,
            faults=faults,
        )
        self.recorder = TraceRecorder(self.n, [dict(v) for v in start_vars])
        self.crashed: Dict[int, float] = {}
        self._stalled_until: Dict[int, float] = {}
        self.guard = guard if guard is not None else TransitionGuard()
        self.guard.attach(self)
        self.observers: List[Observer] = list(observers or [])
        for obs in self.observers:
            obs.attach(self)
        self._msg_uid = 0
        self.proc_names = proc_names
        self._procs: List[_ProcState] = []
        self._contexts: List[ProcessContext] = []
        for i, program in enumerate(programs):
            ctx = ProcessContext(self, i, np.random.default_rng(root.integers(2**63)))
            self._contexts.append(ctx)
            self._procs.append(_ProcState(program(ctx)))
        if self.faults is not None:
            self.faults.attach(self)

    # -- driving one process ---------------------------------------------------

    def _start(self) -> None:
        for i in range(self.n):
            self.queue.schedule(0.0, lambda i=i: self._advance(i, None))

    def _advance(self, proc: int, value: Any) -> None:
        """Resume the program with ``value`` and dispatch its next command."""
        ps = self._procs[proc]
        if ps.crashed:
            return
        resume_at = self._stalled_until.get(proc)
        if resume_at is not None and resume_at > self.queue.now:
            self.queue.schedule(
                resume_at - self.queue.now, lambda: self._advance(proc, value)
            )
            return
        try:
            command = ps.gen.send(value)
        except StopIteration:
            ps.finished = True
            self.guard_on_finish(proc)
            return
        self._dispatch(proc, command)

    def guard_on_finish(self, proc: int) -> None:
        hook = getattr(self.guard, "on_process_finished", None)
        if hook is not None:
            hook(proc)

    # -- injected process faults -------------------------------------------------

    def is_crashed(self, proc: int) -> bool:
        return self._procs[proc].crashed

    def is_finished(self, proc: int) -> bool:
        return self._procs[proc].finished

    def is_stalled(self, proc: int) -> bool:
        return self._stalled_until.get(proc, 0.0) > self.queue.now

    def fault_crash(self, proc: int) -> None:
        """Fail-stop ``proc`` now: no further events, its in-flight and
        queued messages are lost, the controller is notified."""
        ps = self._procs[proc]
        if ps.crashed or ps.finished:
            return
        ps.crashed = True
        self.crashed[proc] = self.queue.now
        ps.gen.close()
        ps.inbox.clear()
        ps.waiting_recv = None
        hook = getattr(self.guard, "on_process_crashed", None)
        if hook is not None:
            hook(proc)

    def fault_stall(self, proc: int, until: float) -> None:
        """Pause ``proc`` until sim time ``until``; messages queue up and
        every deferred step resumes afterwards."""
        if self._procs[proc].crashed:
            return
        current = self._stalled_until.get(proc, 0.0)
        if until <= current:
            return
        self._stalled_until[proc] = until
        self.queue.schedule(until - self.queue.now, lambda: self._wake(proc))

    def _wake(self, proc: int) -> None:
        ps = self._procs[proc]
        if ps.crashed or self.is_stalled(proc):
            return
        self._try_deliver(proc)

    def _notify(self, proc: int, kind: str, msg_uid: Optional[int] = None) -> None:
        index = self.recorder.current_state(proc)
        vars = self.recorder.current_vars(proc)
        if TRACER.enabled:
            TRACER.event(
                "sim.event", proc=proc, kind=kind, index=index,
                sim_time=self.queue.now,
            )
        for obs in self.observers:
            obs.on_event(proc, index, vars, kind, msg_uid)

    def _dispatch(self, proc: int, command: Any) -> None:
        ps = self._procs[proc]
        if isinstance(command, _Compute):
            self.queue.schedule(command.duration, lambda: self._advance(proc, None))
        elif isinstance(command, _SetVars):
            self._guarded_event(
                proc, command.updates, lambda: self._advance(proc, None),
                after_commit=lambda: self._notify(proc, "local"),
            )
        elif isinstance(command, _Send):
            self._do_send(proc, command)
        elif isinstance(command, _Receive):
            ps.waiting_recv = command
            self._try_deliver(proc)
        else:
            raise SimulationError(
                f"process {proc} yielded {command!r}; commands come from the "
                f"ProcessContext methods"
            )

    def _guarded_event(
        self, proc: int, updates: Dict[str, Any], resume: Callable[[], None],
        after_commit: Optional[Callable[[], None]] = None,
        received: Optional[Tuple[Tuple[int, int], Any, Optional[str]]] = None,
    ) -> None:
        """Route a state transition through the guard.

        ``received`` carries the incoming message of a receive event
        ``(src_ref, payload, tag)`` so the recorder appends the message
        arrow together with the state (O(n) index extension).
        """
        ps = self._procs[proc]
        next_vars = dict(self.recorder.current_vars(proc))
        next_vars.update(updates)
        committed = [False]

        def commit() -> None:
            if committed[0]:
                raise SimulationError(f"transition of process {proc} committed twice")
            if ps.crashed:
                return  # released after the crash: the step never happens
            resume_at = self._stalled_until.get(proc)
            if resume_at is not None and resume_at > self.queue.now:
                self.queue.schedule(resume_at - self.queue.now, commit)
                return
            committed[0] = True
            ps.blocked_guard = False
            self.recorder.record_event(proc, updates, self.queue.now, received=received)
            if after_commit is not None:
                after_commit()
            self.queue.schedule(0.0, resume)

        ps.blocked_guard = True
        self.guard.request_transition(proc, dict(updates), next_vars, commit)

    def _do_send(self, proc: int, command: _Send) -> None:
        if not (0 <= command.dst < self.n):
            raise SimulationError(f"process {proc} sending to unknown process {command.dst}")
        src_ref = (proc, self.recorder.current_state(proc))
        uid = self._msg_uid
        self._msg_uid += 1

        def after_commit() -> None:
            msg = _AppMessage(command.payload, command.tag, src_ref, uid)
            self.network.send(
                proc, command.dst, msg, self._on_app_delivery, tag=command.tag,
            )
            self._notify(proc, "send", uid)

        self._guarded_event(
            proc, command.updates, lambda: self._advance(proc, None),
            after_commit=after_commit,
        )

    # -- message plumbing --------------------------------------------------------

    def _on_app_delivery(self, delivery: Delivery) -> None:
        if self._procs[delivery.dst].crashed:
            if self.faults is not None:
                self.faults.note_delivery_to_crashed(
                    delivery.src, delivery.dst, False, self.queue.now
                )
            return
        msg: _AppMessage = delivery.payload
        self._procs[delivery.dst].inbox.append(msg)
        self._try_deliver(delivery.dst)

    def _try_deliver(self, proc: int) -> None:
        ps = self._procs[proc]
        if ps.crashed or self.is_stalled(proc):
            return
        recv = ps.waiting_recv
        if recv is None or ps.blocked_guard:
            return
        for idx, msg in enumerate(ps.inbox):
            if recv.tag is None or msg.tag == recv.tag:
                ps.inbox.pop(idx)
                ps.waiting_recv = None

                def resume(m=msg) -> None:
                    self._advance(proc, m.payload)

                def after_commit(m=msg) -> None:
                    self._notify(proc, "receive", m.uid)

                self._guarded_event(
                    proc, recv.updates, resume, after_commit,
                    received=(msg.src_ref, msg.payload, msg.tag),
                )
                return

    # -- control-plane helpers (used by controllers/guards) -------------------------

    def control_arrow(
        self,
        src: int,
        dst: int,
        src_state: int,
        mode: str = "entered",
        tag: Optional[str] = None,
    ) -> None:
        """Record the control arrow a delivered control message induces and
        notify observers (shared by :meth:`send_control` and the reliable
        control channel, which must record each logical message once even
        when the transport retransmits it)."""
        self.recorder.control_delivered(src, dst, src_state, mode=mode, tag=tag)
        for obs in self.observers:
            obs.on_control(src, dst, src_state)

    def send_control(
        self,
        src: int,
        dst: int,
        payload: Any,
        deliver: Callable[[Delivery], None],
        tag: Optional[str] = None,
        record_mode: str = "entered",
    ) -> None:
        """Ship a control message and record its induced control arrow.

        Deliveries to a crashed process are dropped: the controller is
        co-located with its process, so fail-stop takes both down.
        """
        src_state = self.recorder.current_state(src)
        sent_ev = None
        if TRACER.enabled:
            sent_ev = TRACER.event(
                "ctl.send", proc=src, dst=dst, tag=tag,
                src_state=src_state, sim_time=self.queue.now,
                flow=f"ctl-{self.network.control_messages_sent}",
            )

        def on_arrival(delivery: Delivery) -> None:
            if self._procs[dst].crashed:
                if self.faults is not None:
                    self.faults.note_delivery_to_crashed(
                        src, dst, True, self.queue.now
                    )
                return
            if TRACER.enabled and sent_ev is not None:
                TRACER.event(
                    "ctl.deliver", proc=dst, cause=sent_ev, src=src, tag=tag,
                    src_state=src_state, sim_time=self.queue.now,
                    flow=sent_ev.fields["flow"],
                )
            self.control_arrow(src, dst, src_state, mode=record_mode, tag=tag)
            deliver(delivery)

        self.network.send(src, dst, payload, on_arrival, tag=tag, control=True)

    # -- running ------------------------------------------------------------------

    def run(self, max_events: int = 5_000_000, until: Optional[float] = None) -> RunResult:
        """Execute to completion (or deadlock / bounds)."""
        with TRACER.span("system.run", n=self.n):
            self._start()
            self.queue.run(max_events=max_events, until=until)
        for obs in self.observers:
            obs.on_run_end()
        blocked: Dict[int, str] = {}
        for i, ps in enumerate(self._procs):
            if ps.finished or ps.crashed:
                continue
            if ps.blocked_guard:
                blocked[i] = "blocked by controller"
            elif ps.waiting_recv is not None:
                blocked[i] = "waiting for a message"
            else:
                blocked[i] = "not scheduled"
        deadlocked = bool(blocked) and len(self.queue) == 0
        _SIM_RUNS.inc()
        _SIM_APP_MSGS.inc(self.network.app_messages_sent)
        _SIM_CTL_MSGS.inc(self.network.control_messages_sent)
        if deadlocked:
            _SIM_DEADLOCKS.inc()
        if self.crashed:
            _SIM_CRASHED_RUNS.inc()
        return RunResult(
            deposet=self.recorder.build(self.proc_names),
            duration=self.queue.now,
            events=self.queue.events_processed,
            app_messages=self.network.app_messages_sent,
            control_messages=self.network.control_messages_sent,
            deadlocked=deadlocked,
            blocked=blocked,
            crashed=dict(self.crashed),
            faults=self.faults.summary() if self.faults is not None else {},
        )
