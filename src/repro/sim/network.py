"""Reliable asynchronous channels with configurable delay.

Application messages and control messages travel on logically independent
channels (the paper's control system uses its own channels), but share the
same delay model so the on-line evaluation's ``T`` (average propagation
delay) means the same thing for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.kernel import EventQueue

__all__ = ["Delivery", "Network"]


@dataclass
class Delivery:
    """A message in flight / delivered."""

    src: int
    dst: int
    payload: Any
    tag: Optional[str]
    control: bool
    sent_at: float
    delivered_at: float = field(default=float("nan"))


class Network:
    """Point-to-point reliable channels over the event queue.

    Parameters
    ----------
    queue:
        The simulation kernel.
    mean_delay:
        The paper's ``T``.  Per-message delay is ``mean_delay`` exactly when
        ``jitter == 0``, else uniform in ``mean_delay * [1-jitter, 1+jitter]``
        (keeping the mean at ``T``).
    rng:
        Seeded generator; required when ``jitter > 0``.
    fifo:
        When true, each directed channel delivers in send order (a later
        message never overtakes an earlier one on the same ``src -> dst``
        pair; it is delayed to the earlier one's delivery time if the drawn
        delays would reorder them).  The paper's model places no ordering
        constraint, which is the default.
    """

    def __init__(
        self,
        queue: EventQueue,
        mean_delay: float = 1.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        fifo: bool = False,
    ):
        if mean_delay < 0:
            raise SimulationError(f"negative mean delay {mean_delay}")
        if not (0.0 <= jitter <= 1.0):
            raise SimulationError(f"jitter must be in [0, 1], got {jitter}")
        self.queue = queue
        self.mean_delay = mean_delay
        self.jitter = jitter
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fifo = fifo
        self._last_arrival: dict = {}
        #: statistics
        self.app_messages_sent = 0
        self.control_messages_sent = 0

    def _delay(self) -> float:
        if self.jitter == 0.0:
            return self.mean_delay
        lo = self.mean_delay * (1.0 - self.jitter)
        hi = self.mean_delay * (1.0 + self.jitter)
        return float(self.rng.uniform(lo, hi))

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        deliver: Callable[[Delivery], None],
        tag: Optional[str] = None,
        control: bool = False,
    ) -> Delivery:
        """Ship a message; ``deliver`` runs at arrival time."""
        if src == dst:
            raise SimulationError(f"process {src} sending to itself")
        delivery = Delivery(
            src=src, dst=dst, payload=payload, tag=tag, control=control,
            sent_at=self.queue.now,
        )
        if control:
            self.control_messages_sent += 1
        else:
            self.app_messages_sent += 1

        def arrive() -> None:
            delivery.delivered_at = self.queue.now
            deliver(delivery)

        delay = self._delay()
        if self.fifo:
            channel = (src, dst, control)
            arrival = max(
                self.queue.now + delay, self._last_arrival.get(channel, 0.0)
            )
            self._last_arrival[channel] = arrival
            delay = arrival - self.queue.now
        self.queue.schedule(delay, arrive)
        return delivery
