"""Asynchronous channels with configurable delay and optional fault injection.

Application messages and control messages travel on logically independent
channels (the paper's control system uses its own channels), but share the
same delay model so the on-line evaluation's ``T`` (average propagation
delay) means the same thing for both.

Channels are reliable by default.  With a
:class:`~repro.faults.injector.FaultInjector` attached, each send is routed
through the injector, which may drop, duplicate, delay-spike, hold back
(reorder), or partition-drop it -- every such decision is seeded,
deterministic, and emitted as an obs event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.kernel import EventQueue

__all__ = ["Delivery", "Network"]


@dataclass
class Delivery:
    """A message in flight / delivered.

    ``delivered_at`` is only meaningful once the message has arrived;
    reading it earlier (or on a message the fault injector dropped) raises
    :class:`~repro.errors.SimulationError` instead of silently yielding
    ``nan``.
    """

    src: int
    dst: int
    payload: Any
    tag: Optional[str]
    control: bool
    sent_at: float
    _delivered_at: float = field(default=float("nan"), repr=False)

    @property
    def delivered(self) -> bool:
        """Has this message arrived?  (``False`` for in-flight or dropped.)"""
        return not math.isnan(self._delivered_at)

    @property
    def delivered_at(self) -> float:
        if math.isnan(self._delivered_at):
            raise SimulationError(
                f"message {self.src} -> {self.dst} (tag={self.tag!r}) has "
                f"not been delivered; delivered_at is undefined"
            )
        return self._delivered_at


class Network:
    """Point-to-point channels over the event queue.

    Parameters
    ----------
    queue:
        The simulation kernel.
    mean_delay:
        The paper's ``T``.  Per-message delay is ``mean_delay`` exactly when
        ``jitter == 0``, else uniform in ``mean_delay * [1-jitter, 1+jitter]``
        (keeping the mean at ``T``).
    rng:
        Seeded generator; required when ``jitter > 0`` (randomised delays
        without a seeded generator would silently break run determinism, so
        the omission is rejected at construction time).
    fifo:
        When true, each directed channel delivers in send order (a later
        message never overtakes an earlier one on the same ``src -> dst``
        pair; it is delayed to the earlier one's delivery time if the drawn
        delays would reorder them).  The paper's model places no ordering
        constraint, which is the default.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` consulted on
        every send.
    """

    def __init__(
        self,
        queue: EventQueue,
        mean_delay: float = 1.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        fifo: bool = False,
        faults: Optional["FaultInjector"] = None,
    ):
        if mean_delay < 0:
            raise SimulationError(f"negative mean delay {mean_delay}")
        if not (0.0 <= jitter <= 1.0):
            raise SimulationError(f"jitter must be in [0, 1], got {jitter}")
        if jitter > 0.0 and rng is None:
            raise SimulationError(
                f"jitter={jitter} requires a seeded rng; pass "
                f"rng=np.random.default_rng(seed) so runs stay reproducible"
            )
        self.queue = queue
        self.mean_delay = mean_delay
        self.jitter = jitter
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fifo = fifo
        self.faults = faults
        self._last_arrival: dict = {}
        #: statistics
        self.app_messages_sent = 0
        self.control_messages_sent = 0
        self.messages_lost = 0

    def _delay(self) -> float:
        if self.jitter == 0.0:
            return self.mean_delay
        lo = self.mean_delay * (1.0 - self.jitter)
        hi = self.mean_delay * (1.0 + self.jitter)
        return float(self.rng.uniform(lo, hi))

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        deliver: Callable[[Delivery], None],
        tag: Optional[str] = None,
        control: bool = False,
    ) -> Delivery:
        """Ship a message; ``deliver`` runs at arrival time.

        With a fault injector attached the message may be dropped (the
        returned :class:`Delivery` then never reports ``delivered``),
        duplicated (``deliver`` runs once per surviving copy), or delayed
        beyond the channel's base model.
        """
        if src == dst:
            raise SimulationError(f"process {src} sending to itself")
        delivery = Delivery(
            src=src, dst=dst, payload=payload, tag=tag, control=control,
            sent_at=self.queue.now,
        )
        if control:
            self.control_messages_sent += 1
        else:
            self.app_messages_sent += 1

        if self.faults is not None:
            copies = self.faults.route(src, dst, control, self.queue.now, tag=tag)
        else:
            copies = (0.0,)
        if not copies:
            self.messages_lost += 1
            return delivery

        def arrive() -> None:
            delivery._delivered_at = self.queue.now
            deliver(delivery)

        for extra in copies:
            delay = self._delay() + extra
            if self.fifo:
                channel = (src, dst, control)
                arrival = max(
                    self.queue.now + delay, self._last_arrival.get(channel, 0.0)
                )
                self._last_arrival[channel] = arrival
                # schedule at the exact clamped arrival: converting back to
                # a delay and re-adding ``now`` can round below an earlier
                # message's arrival and reorder the channel
                self.queue.schedule_at(arrival, arrive)
            else:
                self.queue.schedule(delay, arrive)
        return delivery
