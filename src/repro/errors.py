"""Exception hierarchy for the predicate-control library.

Every error raised on purpose by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the interesting cases:

* :class:`MalformedTraceError` -- a deposet violates the model constraints
  (D1--D3 of the paper, or causality contains a cycle).
* :class:`NoControllerExistsError` -- the predicate-control algorithm proved
  the predicate infeasible for the given computation (Lemma 2 of the paper:
  an overlapping set of false-intervals exists).
* :class:`InterferenceError` -- a proposed control relation interferes with
  the computation's causality (would create a cycle in the extended
  happened-before relation), so no valid controlled deposet exists for it.
* :class:`ReplayDeadlockError` -- a controlled replay could not make
  progress; operationally this is how interference manifests at run time.
* :class:`SimulationError` -- the discrete-event substrate was driven into
  an invalid configuration (e.g. a message to an unknown process).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MalformedTraceError",
    "TruncatedStreamError",
    "UnknownTraceFormatError",
    "UnknownFreezeFormatError",
    "StorageError",
    "StorageCorruptError",
    "UnknownBranchError",
    "PredicateError",
    "NotDisjunctiveError",
    "NotRegularError",
    "NoControllerExistsError",
    "InterferenceError",
    "ReplayDeadlockError",
    "LintGateError",
    "SimulationError",
    "OnlineControlError",
    "AssumptionViolationError",
    "FaultPlanError",
    "ControlChannelError",
    "ControlChannelLostError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class MalformedTraceError(ReproError):
    """A trace/deposet violates the model constraints (D1, D2, D3, acyclicity)."""


class TruncatedStreamError(MalformedTraceError):
    """A ``repro-events/1`` stream ends mid-record (partial JSON at EOF).

    Raised by :func:`repro.trace.io.ingest_event_stream` when the *final*
    line of the file fails to parse **and** carries no trailing newline --
    the signature of a writer that crashed (or is still appending) mid
    record.  The message carries ``file:lineno`` like every other stream
    error; tail-mode consumers (``repro serve --tail``, ``repro tail
    --follow``) catch this specifically and wait for more bytes instead
    of aborting.
    """

    def __init__(self, message: str, *, lineno: int = 0):
        super().__init__(message)
        #: 1-based line number of the truncated record.
        self.lineno = lineno


class UnknownTraceFormatError(MalformedTraceError):
    """A trace file matches neither supported format.

    Raised by :func:`repro.trace.sniff_trace_format` on empty or ambiguous
    input instead of guessing; the message names both candidate formats
    (``repro-deposet/1`` and ``repro-events/1``) and what was seen.
    """


class UnknownFreezeFormatError(MalformedTraceError):
    """A ``TraceStore.freeze()`` payload declares a format this build
    cannot restore.

    Raised by :meth:`repro.store.TraceStore.restore` instead of letting an
    incompatible checkpoint fail with an opaque ``KeyError`` deep inside
    the rebuild; the message names the payload's format and the formats
    this build understands (the typed-error style of
    :func:`repro.trace.io.sniff_trace_format`).  Payloads with no
    ``format`` field are accepted as the legacy (pre-versioned) layout.
    """


class StorageError(ReproError):
    """A trace storage backend was misused or misconfigured.

    Covers backend-level protocol violations -- an unknown ``--store``
    target scheme, branching an unnamed fork point, opening a database
    created by an incompatible schema version -- as opposed to damage at
    rest (:class:`StorageCorruptError`) or model violations
    (:class:`MalformedTraceError`).
    """


class StorageCorruptError(StorageError):
    """A durable trace store failed an integrity check.

    Raised when a commit's CRC does not match its recorded operation
    batch, a page body fails its CRC, or the commit chain is broken
    (a parent id that does not exist).  Recovery refuses to guess: the
    message names the offending commit/page so forensics can start there.
    """


class UnknownBranchError(StorageError):
    """A named branch does not exist in the trace store."""


class PredicateError(ReproError):
    """A predicate was used in a way its class does not support."""


class NotDisjunctiveError(PredicateError):
    """A predicate could not be normalised to disjunctive form.

    The efficient algorithms of Sections 5-6 of the paper require
    ``B = l_1 v l_2 v ... v l_n`` with ``l_i`` local to process ``i``.
    """


class NotRegularError(PredicateError):
    """A predicate could not be normalised into the regular (conjunctive)
    class required by the polynomial slicing engine.

    Callers that can fall back should catch this and use the exhaustive
    lattice walk instead; :func:`repro.detection.possibly` with
    ``engine="auto"`` does exactly that.
    """


class NoControllerExistsError(ReproError):
    """Predicate control is infeasible for the given computation.

    Raised by the off-line algorithm (Figure 2 of the paper) when it detects
    an overlapping set of false-intervals: by Lemma 2 *every* global sequence
    of the computation passes through a global state violating ``B``, so no
    control strategy can satisfy ``B``.
    """

    def __init__(self, message: str = "No Controller Exists", *, witness=None):
        super().__init__(message)
        #: Optional overlap witness: one false-interval per process.
        self.witness = witness


class InterferenceError(ReproError):
    """A control relation interferes with causality (creates a cycle)."""

    def __init__(self, message: str = "control relation interferes with causality", *, cycle=None):
        super().__init__(message)
        #: Optional list of states forming the offending cycle.
        self.cycle = cycle


class ReplayDeadlockError(ReproError):
    """A controlled replay deadlocked (no process can take its next step)."""

    def __init__(
        self,
        message: str = "replay deadlocked",
        *,
        blocked=None,
        lost_tokens=None,
        interference=None,
    ):
        super().__init__(message)
        #: Optional mapping of process -> description of what it waits for.
        self.blocked = blocked
        #: Stalled arrows whose token was sent but never arrived (channel
        #: fault): list of (arrow id, src StateRef, dst StateRef).
        self.lost_tokens = lost_tokens or []
        #: Stalled arrows whose source state was never left (the control
        #: relation fights the computation's causality).
        self.interference = interference or []


class LintGateError(ReproError):
    """A replay was refused because lint found a disqualifying finding.

    Raised by ``repro replay`` when the input trace's control relation
    carries a C101 (interference cycle) or C104 (Lemma-2 obstruction)
    finding: the controlled re-execution would deadlock or chase a
    controller that provably does not exist.  ``--force`` overrides the
    gate.  Carries the offending findings (as dicts) for reporting.
    """

    def __init__(self, message: str, *, findings=None):
        super().__init__(message)
        #: The gate findings, as ``Finding.to_dict()`` payloads.
        self.findings = findings or []


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid configuration."""


class OnlineControlError(ReproError):
    """An on-line control strategy failed (protocol violation or deadlock)."""


class AssumptionViolationError(OnlineControlError):
    """A program violates assumption A1 or A2 required by on-line control.

    A1: a process never blocks in a state where its local predicate is false.
    A2: the local predicate holds in every final state.
    """


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (bad rates, windows, or groups)."""


class ControlChannelError(ReproError):
    """The reliable control channel was misused or misconfigured."""


class ControlChannelLostError(ControlChannelError):
    """A logical control message exhausted its retransmit budget.

    Raised (only) by :class:`~repro.faults.reliable.ReliableControlChannel`
    when ``raise_on_lost`` is set and a message gives up after
    ``max_retries`` retransmissions -- the typed alternative to silently
    dropping a logical message or requiring a per-send callback.
    Carries the message's ``seq``, endpoints, and attempt count.
    """

    def __init__(self, message: str, *, seq: int = -1, src: int = -1,
                 dst: int = -1, attempts: int = 0):
        super().__init__(message)
        self.seq = seq
        self.src = src
        self.dst = dst
        self.attempts = attempts
