"""Trace storage backends (the seam under :class:`~repro.store.TraceStore`).

``storage`` holds the *engines*; ``store`` holds the user-facing façade
and the causal index.  See :mod:`repro.storage.base` for the protocol and
the behavioral-equivalence contract every backend must meet.
"""

from repro.storage.base import (
    IndexedBackend,
    StorageBackend,
    open_backend,
    parse_store_target,
    split_store_branch,
)
from repro.storage.branches import ensure_base_trace, record_control_branch
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import (
    DEFAULT_PAGE_SIZE,
    STORE_FORMAT,
    SqliteBackend,
    chain_log,
    create_branch,
    delete_branch,
    gc_store,
    init_db,
    list_branches,
)

__all__ = [
    "StorageBackend",
    "IndexedBackend",
    "MemoryBackend",
    "SqliteBackend",
    "open_backend",
    "parse_store_target",
    "split_store_branch",
    "STORE_FORMAT",
    "DEFAULT_PAGE_SIZE",
    "init_db",
    "chain_log",
    "list_branches",
    "create_branch",
    "delete_branch",
    "gc_store",
    "ensure_base_trace",
    "record_control_branch",
]
