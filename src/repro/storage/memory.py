"""The columnar in-memory backend (the original ``TraceStore`` layout).

Per-process lists of variable dicts plus an optional timestamp column;
packed :class:`~repro.store.columns.ColumnBlock` views are cached keyed
by ``(proc, names, prefix length)`` and shared with every snapshot
(state dicts are append-only, so a block packed for one prefix stays
valid forever).

``branch(name)`` is the in-memory analogue of the SQLite backend's
copy-on-write fork: the new backend gets its own column *lists* (O(states)
pointer copies) while sharing every variable dict, message arrow, and a
clock-sharing :class:`~repro.store.index.CausalIndex` twin -- appends on
either side never touch the other.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.causality.relations import StateRef
from repro.errors import MalformedTraceError
from repro.store.columns import ColumnBlock, pack_block
from repro.store.index import CausalIndex
from repro.storage.base import IndexedBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(IndexedBackend):
    """Columnar, append-only, in-memory storage for one computation."""

    kind = "memory"

    def __init__(
        self,
        n: int,
        start_vars: Optional[Sequence[Dict[str, Any]]] = None,
        proc_names: Optional[Sequence[str]] = None,
        start_times: Optional[Sequence[float] | float] = None,
    ):
        if start_vars is not None and len(start_vars) != n:
            raise MalformedTraceError(
                f"{len(start_vars)} start assignments for {n} processes"
            )
        if start_times is not None and isinstance(start_times, (int, float)):
            start_times = [float(start_times)] * n
        if start_times is not None and len(start_times) != n:
            raise MalformedTraceError(
                f"{len(start_times)} start times for {n} processes"
            )
        super().__init__(n, proc_names=proc_names, timed=start_times is not None)
        self._vars: List[List[Dict[str, Any]]] = [
            [dict(start_vars[i]) if start_vars is not None else {}]
            for i in range(n)
        ]
        self._times: Optional[List[List[float]]] = (
            [[float(t)] for t in start_times] if start_times is not None
            else None
        )
        # Packed variable columns, keyed (proc, names, prefix length);
        # shared with every snapshot.
        self._column_cache: Dict[Tuple[int, Tuple[str, ...], int], ColumnBlock] = {}
        #: fork counter so auto-named branches stay unique
        self._branches = 0

    # -- storage primitives ---------------------------------------------------

    def _push_state(self, proc: int, vars: Dict[str, Any],
                    time: Optional[float]) -> None:
        self._vars[proc].append(vars)
        if self._times is not None:
            self._times[proc].append(
                float(time) if time is not None else self._times[proc][-1]
            )

    # -- reads ---------------------------------------------------------------

    def state_vars(self, ref: StateRef | Tuple[int, int]) -> Dict[str, Any]:
        proc, index = ref
        return self._vars[proc][index]

    def latest_vars(self, proc: int) -> Dict[str, Any]:
        return self._vars[proc][-1]

    def state_time(self, ref: StateRef | Tuple[int, int]) -> Optional[float]:
        if self._times is None:
            return None
        proc, index = ref
        return self._times[proc][index]

    def vars_prefix(self, proc: int) -> Tuple[Dict[str, Any], ...]:
        return tuple(self._vars[proc])

    def times_prefix(self, proc: int) -> Optional[Tuple[float, ...]]:
        if self._times is None:
            return None
        return tuple(self._times[proc])

    def column_block(self, proc: int, names: Sequence[str]) -> ColumnBlock:
        states = self._vars[proc]
        key = (proc, tuple(names), len(states))
        block = self._column_cache.get(key)
        if block is None:
            block = pack_block(states[: key[2]], key[1])
            self._column_cache[key] = block
        return block

    def snapshot_cache(self) -> Dict[Any, Any]:
        return self._column_cache

    # -- branching ------------------------------------------------------------

    def branch(self, name: str) -> "MemoryBackend":
        """A copy-on-write fork: shared dicts/arrows, private columns.

        The fork shares a clock matrix with this backend through
        :meth:`CausalIndex.extended`-style twinning, so neither side pays
        a rebuild; both sides copy rows only when a later arrow insert
        would touch shared ones.
        """
        self._branches += 1
        fork = MemoryBackend.__new__(MemoryBackend)
        IndexedBackend.__init__(fork, self.n, proc_names=self._names,
                                timed=self._timed)
        fork._vars = [list(col) for col in self._vars]
        fork._times = (
            [list(col) for col in self._times] if self._times is not None
            else None
        )
        fork._column_cache = dict(self._column_cache)
        fork._branches = 0
        fork._messages = list(self._messages)
        fork._control = list(self._control)
        fork._control_set = set(self._control_set)
        fork._used_events = dict(self._used_events)
        fork.epoch = self.epoch
        fork.obs = self.obs
        # A fresh appendable index over the same counts/arrows: built from
        # the live index's arrows so clocks come out identical.
        fork._index = CausalIndex(self.state_counts, self._index.arrows)
        return fork

    def __repr__(self) -> str:
        return (
            f"MemoryBackend(n={self.n}, states={self.state_counts}, "
            f"messages={len(self._messages)}, epoch={self.epoch})"
        )
